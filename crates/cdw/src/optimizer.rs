//! Rule-based logical optimizer.
//!
//! Four rewrites, applied to fixpoint-ish (one bottom-up pass each, in
//! order, which suffices for the shapes the compiler emits):
//!
//! 1. **Constant folding** — column-free subexpressions evaluate at plan
//!    time (using the session clock, so `CURRENT_DATE` folds too).
//! 2. **Predicate pushdown** — filters slide through projections, sorts,
//!    unions, and into the inner side(s) of joins.
//! 3. **Projection pruning** — scans materialize only the columns the rest
//!    of the plan consumes (a narrow `Project` is inserted over the scan).
//! 4. **Two-phase split** — `Aggregate` and `Distinct` nodes over
//!    partition-preserving inputs split into a per-partition `Partial`
//!    under a merging `Final`, so the executor can run the hash-build
//!    phase partition-parallel (see `plan::AggMode` and DESIGN.md).

use std::sync::Arc;

use sigma_sql::JoinKind;
use sigma_value::{Batch, DataType, Field, Schema};

use crate::error::CdwError;
use crate::eval::{self, EvalCtx, PhysExpr};
use crate::plan::{AggMode, Plan};

/// Run all rules over a plan.
pub fn optimize(plan: Plan, ctx: &EvalCtx) -> Result<Plan, CdwError> {
    let plan = fold_constants_plan(plan, ctx)?;
    let plan = push_down_filters(plan)?;
    let plan = prune_scan_columns(plan)?;
    Ok(split_two_phase(plan))
}

// ---------------------------------------------------------------------
// constant folding
// ---------------------------------------------------------------------

fn fold_constants_plan(plan: Plan, ctx: &EvalCtx) -> Result<Plan, CdwError> {
    map_plan_exprs(plan, &|e| fold_expr(e, ctx))
}

/// Fold a single expression if it references no columns (and isn't already
/// a literal). Folding errors are ignored — the expression stays as-is and
/// any real error surfaces at execution.
fn fold_expr(expr: PhysExpr, ctx: &EvalCtx) -> Result<PhysExpr, CdwError> {
    let folded = try_fold(&expr, ctx);
    Ok(match folded {
        Some(lit) => lit,
        None => {
            // Recurse into children so partially constant trees shrink.
            match expr {
                PhysExpr::Unary { op, expr } => PhysExpr::Unary {
                    op,
                    expr: Box::new(fold_expr(*expr, ctx)?),
                },
                PhysExpr::Binary { op, left, right } => PhysExpr::Binary {
                    op,
                    left: Box::new(fold_expr(*left, ctx)?),
                    right: Box::new(fold_expr(*right, ctx)?),
                },
                PhysExpr::Func { func, args } => PhysExpr::Func {
                    func,
                    args: args
                        .into_iter()
                        .map(|a| fold_expr(a, ctx))
                        .collect::<Result<_, _>>()?,
                },
                PhysExpr::Case {
                    operand,
                    whens,
                    else_,
                } => PhysExpr::Case {
                    operand: operand
                        .map(|o| fold_expr(*o, ctx).map(Box::new))
                        .transpose()?,
                    whens: whens
                        .into_iter()
                        .map(|(w, t)| Ok::<_, CdwError>((fold_expr(w, ctx)?, fold_expr(t, ctx)?)))
                        .collect::<Result<_, _>>()?,
                    else_: else_
                        .map(|e| fold_expr(*e, ctx).map(Box::new))
                        .transpose()?,
                },
                PhysExpr::Cast {
                    expr,
                    dtype,
                    strict,
                } => PhysExpr::Cast {
                    expr: Box::new(fold_expr(*expr, ctx)?),
                    dtype,
                    strict,
                },
                PhysExpr::InList {
                    expr,
                    list,
                    negated,
                } => PhysExpr::InList {
                    expr: Box::new(fold_expr(*expr, ctx)?),
                    list: list
                        .into_iter()
                        .map(|l| fold_expr(l, ctx))
                        .collect::<Result<_, _>>()?,
                    negated,
                },
                PhysExpr::Between {
                    expr,
                    low,
                    high,
                    negated,
                } => PhysExpr::Between {
                    expr: Box::new(fold_expr(*expr, ctx)?),
                    low: Box::new(fold_expr(*low, ctx)?),
                    high: Box::new(fold_expr(*high, ctx)?),
                    negated,
                },
                PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                    expr: Box::new(fold_expr(*expr, ctx)?),
                    negated,
                },
                PhysExpr::Like {
                    expr,
                    pattern,
                    negated,
                } => PhysExpr::Like {
                    expr: Box::new(fold_expr(*expr, ctx)?),
                    pattern: Box::new(fold_expr(*pattern, ctx)?),
                    negated,
                },
                leaf => leaf,
            }
        }
    })
}

fn try_fold(expr: &PhysExpr, ctx: &EvalCtx) -> Option<PhysExpr> {
    if matches!(expr, PhysExpr::Literal(_) | PhysExpr::Col(_)) {
        return None;
    }
    let mut cols = Vec::new();
    expr.columns_used(&mut cols);
    if !cols.is_empty() {
        return None;
    }
    let schema = Arc::new(Schema::new(vec![Field::new("$fold", DataType::Int)]));
    let batch = Batch::new(schema, vec![sigma_value::Column::from_ints(vec![0])]).ok()?;
    let col = eval::eval(expr, &batch, ctx).ok()?;
    Some(PhysExpr::Literal(col.value(0)))
}

/// Apply a rewrite to every expression embedded in the plan.
fn map_plan_exprs(
    plan: Plan,
    f: &dyn Fn(PhysExpr) -> Result<PhysExpr, CdwError>,
) -> Result<Plan, CdwError> {
    Ok(match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(map_plan_exprs(*input, f)?),
            predicate: f(predicate)?,
        },
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(map_plan_exprs(*input, f)?),
            exprs: exprs.into_iter().map(f).collect::<Result<_, _>>()?,
            schema,
        },
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode,
        } => Plan::Aggregate {
            input: Box::new(map_plan_exprs(*input, f)?),
            groups: groups.into_iter().map(f).collect::<Result<_, _>>()?,
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(f).transpose()?;
                    Ok::<_, CdwError>(a)
                })
                .collect::<Result<_, _>>()?,
            schema,
            mode,
        },
        Plan::Window {
            input,
            calls,
            schema,
        } => Plan::Window {
            input: Box::new(map_plan_exprs(*input, f)?),
            calls: calls
                .into_iter()
                .map(|mut c| {
                    c.args = c.args.into_iter().map(f).collect::<Result<_, _>>()?;
                    c.partition = c.partition.into_iter().map(f).collect::<Result<_, _>>()?;
                    c.order = c
                        .order
                        .into_iter()
                        .map(|mut o| {
                            o.expr = f(o.expr)?;
                            Ok::<_, CdwError>(o)
                        })
                        .collect::<Result<_, _>>()?;
                    Ok::<_, CdwError>(c)
                })
                .collect::<Result<_, _>>()?,
            schema,
        },
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => Plan::Join {
            left: Box::new(map_plan_exprs(*left, f)?),
            right: Box::new(map_plan_exprs(*right, f)?),
            kind,
            left_keys: left_keys.into_iter().map(f).collect::<Result<_, _>>()?,
            right_keys: right_keys.into_iter().map(f).collect::<Result<_, _>>()?,
            residual: residual.map(f).transpose()?,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(map_plan_exprs(*input, f)?),
            keys: keys
                .into_iter()
                .map(|mut k| {
                    k.expr = f(k.expr)?;
                    Ok::<_, CdwError>(k)
                })
                .collect::<Result<_, _>>()?,
        },
        Plan::Limit {
            input,
            limit,
            offset,
        } => Plan::Limit {
            input: Box::new(map_plan_exprs(*input, f)?),
            limit,
            offset,
        },
        Plan::UnionAll { inputs, schema } => Plan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(|p| map_plan_exprs(p, f))
                .collect::<Result<_, _>>()?,
            schema,
        },
        Plan::Distinct { input, mode } => Plan::Distinct {
            input: Box::new(map_plan_exprs(*input, f)?),
            mode,
        },
        leaf @ (Plan::Scan { .. } | Plan::ResultScan { .. } | Plan::Values { .. }) => leaf,
    })
}

// ---------------------------------------------------------------------
// predicate pushdown
// ---------------------------------------------------------------------

fn push_down_filters(plan: Plan) -> Result<Plan, CdwError> {
    Ok(match plan {
        Plan::Filter { input, predicate } => {
            let input = push_down_filters(*input)?;
            push_filter_into(input, predicate)?
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(push_down_filters(*input)?),
            exprs,
            schema,
        },
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode,
        } => Plan::Aggregate {
            input: Box::new(push_down_filters(*input)?),
            groups,
            aggs,
            schema,
            mode,
        },
        Plan::Window {
            input,
            calls,
            schema,
        } => Plan::Window {
            input: Box::new(push_down_filters(*input)?),
            calls,
            schema,
        },
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => Plan::Join {
            left: Box::new(push_down_filters(*left)?),
            right: Box::new(push_down_filters(*right)?),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(push_down_filters(*input)?),
            keys,
        },
        Plan::Limit {
            input,
            limit,
            offset,
        } => Plan::Limit {
            input: Box::new(push_down_filters(*input)?),
            limit,
            offset,
        },
        Plan::UnionAll { inputs, schema } => Plan::UnionAll {
            inputs: inputs
                .into_iter()
                .map(push_down_filters)
                .collect::<Result<_, _>>()?,
            schema,
        },
        Plan::Distinct { input, mode } => Plan::Distinct {
            input: Box::new(push_down_filters(*input)?),
            mode,
        },
        leaf => leaf,
    })
}

/// Push one predicate as deep as legal over the (already pushed-down) input.
fn push_filter_into(input: Plan, predicate: PhysExpr) -> Result<Plan, CdwError> {
    match input {
        // Filter(Project(x)) => Project(Filter'(x)) with the predicate
        // rewritten through the projection.
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            if let Some(rewritten) = substitute_through_projection(&predicate, &exprs) {
                let pushed = push_filter_into(*input, rewritten)?;
                Ok(Plan::Project {
                    input: Box::new(pushed),
                    exprs,
                    schema,
                })
            } else {
                Ok(Plan::Filter {
                    input: Box::new(Plan::Project {
                        input,
                        exprs,
                        schema,
                    }),
                    predicate,
                })
            }
        }
        // Filter(Sort(x)) => Sort(Filter(x)).
        Plan::Sort { input, keys } => {
            let pushed = push_filter_into(*input, predicate)?;
            Ok(Plan::Sort {
                input: Box::new(pushed),
                keys,
            })
        }
        // Filter(UnionAll(xs)) => UnionAll(Filter(x) for x in xs).
        Plan::UnionAll { inputs, schema } => {
            let inputs = inputs
                .into_iter()
                .map(|p| push_filter_into(p, predicate.clone()))
                .collect::<Result<_, _>>()?;
            Ok(Plan::UnionAll { inputs, schema })
        }
        // Filter(Join(l, r)): push side-local conjuncts into inner inputs.
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let left_width = left.schema().len();
            let mut conjuncts = Vec::new();
            split_phys_conjuncts(predicate, &mut conjuncts);
            let mut stay = Vec::new();
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            for c in conjuncts {
                let mut cols = Vec::new();
                c.columns_used(&mut cols);
                let all_left = cols.iter().all(|&i| i < left_width);
                let all_right = cols.iter().all(|&i| i >= left_width);
                // Pushing to the left is safe for inner and left joins;
                // pushing to the right only for inner joins.
                if all_left && matches!(kind, JoinKind::Inner | JoinKind::Left | JoinKind::Cross) {
                    to_left.push(c);
                } else if all_right && matches!(kind, JoinKind::Inner | JoinKind::Cross) {
                    let mut c = c;
                    c.remap_columns(&|i| i - left_width);
                    to_right.push(c);
                } else {
                    stay.push(c);
                }
            }
            let mut left = *left;
            for c in to_left {
                left = push_filter_into(left, c)?;
            }
            let mut right = *right;
            for c in to_right {
                right = push_filter_into(right, c)?;
            }
            let joined = Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            Ok(match conjoin(stay) {
                Some(p) => Plan::Filter {
                    input: Box::new(joined),
                    predicate: p,
                },
                None => joined,
            })
        }
        // Filter(Filter(x)) => Filter(x, a AND b) — merged then re-pushed.
        Plan::Filter {
            input,
            predicate: inner,
        } => {
            let merged = PhysExpr::Binary {
                op: sigma_sql::SqlBinaryOp::And,
                left: Box::new(inner),
                right: Box::new(predicate),
            };
            push_filter_into(*input, merged)
        }
        other => Ok(Plan::Filter {
            input: Box::new(other),
            predicate,
        }),
    }
}

fn conjoin(preds: Vec<PhysExpr>) -> Option<PhysExpr> {
    preds.into_iter().reduce(|a, b| PhysExpr::Binary {
        op: sigma_sql::SqlBinaryOp::And,
        left: Box::new(a),
        right: Box::new(b),
    })
}

fn split_phys_conjuncts(e: PhysExpr, out: &mut Vec<PhysExpr>) {
    if let PhysExpr::Binary {
        op: sigma_sql::SqlBinaryOp::And,
        left,
        right,
    } = e
    {
        split_phys_conjuncts(*left, out);
        split_phys_conjuncts(*right, out);
    } else {
        out.push(e);
    }
}

/// Rewrite a predicate over a projection's output to one over its input by
/// inlining the projected expressions. Returns `None` if any referenced
/// projection slot is (or contains) something non-inlinable — we only
/// inline cheap expressions to avoid recomputation.
fn substitute_through_projection(pred: &PhysExpr, exprs: &[PhysExpr]) -> Option<PhysExpr> {
    let mut used = Vec::new();
    pred.columns_used(&mut used);
    for &i in &used {
        if i >= exprs.len() {
            return None;
        }
    }
    let mut out = pred.clone();
    let mut ok = true;
    substitute_cols(&mut out, &mut |i| {
        let replacement = exprs.get(i);
        match replacement {
            Some(e) => Some(e.clone()),
            None => {
                ok = false;
                None
            }
        }
    });
    ok.then_some(out)
}

fn substitute_cols(e: &mut PhysExpr, subst: &mut impl FnMut(usize) -> Option<PhysExpr>) {
    if let PhysExpr::Col(i) = e {
        if let Some(r) = subst(*i) {
            *e = r;
        }
        return;
    }
    match e {
        PhysExpr::Literal(_) | PhysExpr::Col(_) => {}
        PhysExpr::Unary { expr, .. } => substitute_cols(expr, subst),
        PhysExpr::Binary { left, right, .. } => {
            substitute_cols(left, subst);
            substitute_cols(right, subst);
        }
        PhysExpr::Func { args, .. } => {
            for a in args {
                substitute_cols(a, subst);
            }
        }
        PhysExpr::Case {
            operand,
            whens,
            else_,
        } => {
            if let Some(o) = operand {
                substitute_cols(o, subst);
            }
            for (w, t) in whens {
                substitute_cols(w, subst);
                substitute_cols(t, subst);
            }
            if let Some(el) = else_ {
                substitute_cols(el, subst);
            }
        }
        PhysExpr::Cast { expr, .. } => substitute_cols(expr, subst),
        PhysExpr::InList { expr, list, .. } => {
            substitute_cols(expr, subst);
            for l in list {
                substitute_cols(l, subst);
            }
        }
        PhysExpr::Between {
            expr, low, high, ..
        } => {
            substitute_cols(expr, subst);
            substitute_cols(low, subst);
            substitute_cols(high, subst);
        }
        PhysExpr::IsNull { expr, .. } => substitute_cols(expr, subst),
        PhysExpr::Like { expr, pattern, .. } => {
            substitute_cols(expr, subst);
            substitute_cols(pattern, subst);
        }
    }
}

// ---------------------------------------------------------------------
// projection pruning
// ---------------------------------------------------------------------

/// Insert narrow projections directly above scans when the plan uses only
/// a subset of the scanned columns.
///
/// Contract: `prune(plan, Some(needed))` returns a plan whose output schema
/// is the original schema restricted to `needed` (sorted, deduplicated, in
/// ascending original order); the caller is responsible for remapping its
/// own column references through that order. `prune(plan, None)` leaves the
/// output schema unchanged.
fn prune_scan_columns(plan: Plan) -> Result<Plan, CdwError> {
    prune(plan, None)
}

fn normalize(needed: &mut Vec<usize>) {
    needed.sort_unstable();
    needed.dedup();
}

/// Normalize and guarantee at least one column survives: a zero-column
/// batch cannot carry a row count, so COUNT(*)-style plans keep column 0.
fn normalize_nonempty(needed: &mut Vec<usize>, width: usize) {
    normalize(needed);
    if needed.is_empty() && width > 0 {
        needed.push(0);
    }
}

/// Wrap `plan` in a projection selecting `needed` (already normalized)
/// ordinals of its output, unless that would be a no-op.
fn narrow(plan: Plan, needed: &[usize]) -> Plan {
    let schema = plan.schema();
    if needed.len() >= schema.len() {
        return plan;
    }
    let fields: Vec<Field> = needed.iter().map(|&i| schema.field(i).clone()).collect();
    let exprs: Vec<PhysExpr> = needed.iter().map(|&i| PhysExpr::Col(i)).collect();
    Plan::Project {
        input: Box::new(plan),
        exprs,
        schema: Arc::new(Schema::new(fields)),
    }
}

/// Old-ordinal -> new-ordinal map induced by a normalized needed set.
fn remap_of(needed: &[usize]) -> std::collections::HashMap<usize, usize> {
    needed
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new))
        .collect()
}

fn prune(plan: Plan, needed: Option<Vec<usize>>) -> Result<Plan, CdwError> {
    let width = plan.schema().len();
    let needed = needed.map(|mut n| {
        normalize_nonempty(&mut n, width);
        n
    });
    match plan {
        Plan::Scan { table, schema } => {
            let scan = Plan::Scan { table, schema };
            Ok(match needed {
                Some(cols) => narrow(scan, &cols),
                None => scan,
            })
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            // Keep only the projected expressions the parent needs.
            let (kept_exprs, kept_fields): (Vec<PhysExpr>, Vec<Field>) = match &needed {
                Some(cols) => cols
                    .iter()
                    .map(|&i| (exprs[i].clone(), schema.field(i).clone()))
                    .unzip(),
                None => (exprs, schema.fields().to_vec()),
            };
            let mut child_need = Vec::new();
            for e in &kept_exprs {
                e.columns_used(&mut child_need);
            }
            normalize_nonempty(&mut child_need, input.schema().len());
            let narrowed = child_need.len() < input.schema().len();
            let map = remap_of(&child_need);
            let pruned = prune(*input, Some(child_need))?;
            let mut kept_exprs = kept_exprs;
            if narrowed {
                for e in &mut kept_exprs {
                    e.remap_columns(&|i| map[&i]);
                }
            }
            Ok(Plan::Project {
                input: Box::new(pruned),
                exprs: kept_exprs,
                schema: Arc::new(Schema::new(kept_fields)),
            })
        }
        Plan::Filter { input, predicate } => {
            let width = input.schema().len();
            let mut union: Vec<usize> = match &needed {
                Some(cols) => cols.clone(),
                None => (0..width).collect(),
            };
            predicate.columns_used(&mut union);
            normalize_nonempty(&mut union, width);
            let narrowed = union.len() < width;
            let map = remap_of(&union);
            let pruned = prune(*input, Some(union.clone()))?;
            let mut predicate = predicate;
            if narrowed {
                predicate.remap_columns(&|i| map[&i]);
            }
            let filtered = Plan::Filter {
                input: Box::new(pruned),
                predicate,
            };
            // If the parent wanted fewer columns than the filter needed,
            // narrow above (positions of `needed` within `union`).
            Ok(match needed {
                Some(cols) if cols.len() < union.len() => {
                    let positions: Vec<usize> = cols
                        .iter()
                        .map(|c| union.iter().position(|u| u == c).unwrap())
                        .collect();
                    narrow(filtered, &positions)
                }
                _ => filtered,
            })
        }
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode,
        } => {
            let mut child_need = Vec::new();
            for g in &groups {
                g.columns_used(&mut child_need);
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    arg.columns_used(&mut child_need);
                }
            }
            normalize_nonempty(&mut child_need, input.schema().len());
            let narrowed = child_need.len() < input.schema().len();
            let map = remap_of(&child_need);
            let pruned = prune(*input, Some(child_need))?;
            let mut groups = groups;
            let mut aggs = aggs;
            if narrowed {
                for g in &mut groups {
                    g.remap_columns(&|i| map[&i]);
                }
                for a in &mut aggs {
                    if let Some(arg) = &mut a.arg {
                        arg.remap_columns(&|i| map[&i]);
                    }
                }
            }
            let agg = Plan::Aggregate {
                input: Box::new(pruned),
                groups,
                aggs,
                schema,
                mode,
            };
            Ok(match needed {
                Some(cols) => narrow(agg, &cols),
                None => agg,
            })
        }
        // Remaining nodes are treated as boundaries: children keep their
        // full schemas, and the parent's narrowing happens above the node.
        Plan::Window {
            input,
            calls,
            schema,
        } => {
            let w = Plan::Window {
                input: Box::new(prune(*input, None)?),
                calls,
                schema,
            };
            Ok(match needed {
                Some(cols) => narrow(w, &cols),
                None => w,
            })
        }
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let j = Plan::Join {
                left: Box::new(prune(*left, None)?),
                right: Box::new(prune(*right, None)?),
                kind,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            Ok(match needed {
                Some(cols) => narrow(j, &cols),
                None => j,
            })
        }
        Plan::Sort { input, keys } => {
            let s = Plan::Sort {
                input: Box::new(prune(*input, None)?),
                keys,
            };
            Ok(match needed {
                Some(cols) => narrow(s, &cols),
                None => s,
            })
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let l = Plan::Limit {
                input: Box::new(prune(*input, None)?),
                limit,
                offset,
            };
            Ok(match needed {
                Some(cols) => narrow(l, &cols),
                None => l,
            })
        }
        Plan::UnionAll { inputs, schema } => {
            let u = Plan::UnionAll {
                inputs: inputs
                    .into_iter()
                    .map(|p| prune(p, None))
                    .collect::<Result<_, _>>()?,
                schema,
            };
            Ok(match needed {
                Some(cols) => narrow(u, &cols),
                None => u,
            })
        }
        Plan::Distinct { input, mode } => {
            let d = Plan::Distinct {
                input: Box::new(prune(*input, None)?),
                mode,
            };
            Ok(match needed {
                Some(cols) => narrow(d, &cols),
                None => d,
            })
        }
        leaf => Ok(match needed {
            Some(cols) => narrow(leaf, &cols),
            None => leaf,
        }),
    }
}

// ---------------------------------------------------------------------
// two-phase split
// ---------------------------------------------------------------------

/// Does the executor preserve partition structure for this subtree?
///
/// Scans emit one part per storage partition; Filter/Project map over
/// parts; UnionAll concatenates its inputs' parts; a Join emits one part
/// per probe (left) partition; a partial Distinct dedups within parts.
/// Everything else collapses to a single batch, where a two-phase split
/// would only add a pointless merge pass.
fn partition_preserving(plan: &Plan) -> bool {
    match plan {
        Plan::Scan { .. } => true,
        Plan::Filter { input, .. } | Plan::Project { input, .. } => partition_preserving(input),
        Plan::UnionAll { inputs, .. } => {
            inputs.len() > 1 || inputs.iter().any(partition_preserving)
        }
        Plan::Join { left, .. } => partition_preserving(left),
        Plan::Distinct {
            input,
            mode: AggMode::Partial,
        } => partition_preserving(input),
        _ => false,
    }
}

/// Rewrite `Single` Aggregate/Distinct nodes over partition-preserving
/// inputs into `Final(Partial(input))` pairs. The split is decided purely
/// by plan shape — never by the parallelism knob — so a query runs the
/// identical plan (and produces bit-identical results) at any parallelism.
fn split_two_phase(plan: Plan) -> Plan {
    match plan {
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode: AggMode::Single,
        } => {
            let input = split_two_phase(*input);
            if partition_preserving(&input) {
                // The Final node restates the same spec as its Partial
                // child; the executor fuses the pair and evaluates the
                // child's expressions against the raw input partitions.
                Plan::Aggregate {
                    input: Box::new(Plan::Aggregate {
                        input: Box::new(input),
                        groups: groups.clone(),
                        aggs: aggs.clone(),
                        schema: schema.clone(),
                        mode: AggMode::Partial,
                    }),
                    groups,
                    aggs,
                    schema,
                    mode: AggMode::Final,
                }
            } else {
                Plan::Aggregate {
                    input: Box::new(input),
                    groups,
                    aggs,
                    schema,
                    mode: AggMode::Single,
                }
            }
        }
        Plan::Distinct {
            input,
            mode: AggMode::Single,
        } => {
            let input = split_two_phase(*input);
            if partition_preserving(&input) {
                Plan::Distinct {
                    input: Box::new(Plan::Distinct {
                        input: Box::new(input),
                        mode: AggMode::Partial,
                    }),
                    mode: AggMode::Final,
                }
            } else {
                Plan::Distinct {
                    input: Box::new(input),
                    mode: AggMode::Single,
                }
            }
        }
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode,
        } => Plan::Aggregate {
            input: Box::new(split_two_phase(*input)),
            groups,
            aggs,
            schema,
            mode,
        },
        Plan::Distinct { input, mode } => Plan::Distinct {
            input: Box::new(split_two_phase(*input)),
            mode,
        },
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(split_two_phase(*input)),
            predicate,
        },
        Plan::Project {
            input,
            exprs,
            schema,
        } => Plan::Project {
            input: Box::new(split_two_phase(*input)),
            exprs,
            schema,
        },
        Plan::Window {
            input,
            calls,
            schema,
        } => Plan::Window {
            input: Box::new(split_two_phase(*input)),
            calls,
            schema,
        },
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => Plan::Join {
            left: Box::new(split_two_phase(*left)),
            right: Box::new(split_two_phase(*right)),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(split_two_phase(*input)),
            keys,
        },
        Plan::Limit {
            input,
            limit,
            offset,
        } => Plan::Limit {
            input: Box::new(split_two_phase(*input)),
            limit,
            offset,
        },
        Plan::UnionAll { inputs, schema } => Plan::UnionAll {
            inputs: inputs.into_iter().map(split_two_phase).collect(),
            schema,
        },
        leaf @ (Plan::Scan { .. } | Plan::ResultScan { .. } | Plan::Values { .. }) => leaf,
    }
}

// ---------------------------------------------------------------------
// pipeline decomposition (EXPLAIN PIPELINES)
// ---------------------------------------------------------------------

/// Render the morsel-pipeline decomposition of an (optimized) plan: which
/// Filter/Project chains fuse into per-morsel pipelines, where each
/// pipeline's source and sink sit, and which operators break the flow
/// (see [`Plan::is_pipeline_breaker`]). This mirrors exactly what the
/// executor's morsel path does — the text is derived from the same
/// `stream_chain` decomposition it executes.
pub fn explain_pipelines(plan: &Plan) -> String {
    let mut out = String::new();
    explain_pipelines_into(plan, 0, &mut out);
    out
}

/// Execution granularity annotation: operators the executor's morsel
/// path processes morsel-at-a-time (probes of every join kind, sort run
/// generation, window partitions, fused/spilling two-phase aggregation)
/// vs the ones that still work partition-at-a-time or on one collapsed
/// batch (limit, distinct, single-phase aggregation).
fn granularity(plan: &Plan) -> &'static str {
    match plan {
        Plan::Filter { .. }
        | Plan::Project { .. }
        | Plan::Join { .. }
        | Plan::Sort { .. }
        | Plan::Window { .. } => "morsel",
        Plan::Aggregate {
            mode: AggMode::Final,
            input,
            ..
        } if matches!(
            input.as_ref(),
            Plan::Aggregate {
                mode: AggMode::Partial,
                ..
            }
        ) =>
        {
            "morsel"
        }
        _ => "partition",
    }
}

/// This node's own EXPLAIN label (first line of the subtree rendering).
fn node_label(plan: &Plan) -> String {
    plan.explain()
        .lines()
        .next()
        .unwrap_or_default()
        .trim_start()
        .to_string()
}

/// One pipeline's operators in execution order:
/// `source => stage => ... [=> sink]`.
fn pipeline_line(source: &Plan, chain: &[&Plan], sink: Option<&Plan>) -> String {
    let mut parts = vec![node_label(source)];
    for node in chain.iter().rev() {
        parts.push(node_label(node));
    }
    if let Some(s) = sink {
        parts.push(format!("{} [sink]", node_label(s)));
    }
    parts.join(" => ")
}

fn indent_by(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn explain_pipelines_into(plan: &Plan, depth: usize, out: &mut String) {
    // A Final-over-Partial aggregate pair: the Final merge breaks the
    // flow; the Partial is the sink of the pipeline covering the chain
    // below it.
    if let Plan::Aggregate {
        input,
        mode: AggMode::Final,
        ..
    } = plan
    {
        if let Plan::Aggregate {
            input: pinput,
            mode: AggMode::Partial,
            ..
        } = input.as_ref()
        {
            indent_by(out, depth);
            out.push_str(&format!(
                "break: {} [{}]\n",
                node_label(plan),
                granularity(plan)
            ));
            let (chain, source) = pinput.stream_chain();
            indent_by(out, depth + 1);
            out.push_str(&format!(
                "pipeline: {} [morsel]\n",
                pipeline_line(source, &chain, Some(input))
            ));
            explain_pipelines_into(source, depth + 2, out);
            return;
        }
    }
    // A maximal streaming chain is one fused pipeline.
    if plan.is_streaming_stage() {
        let (chain, source) = plan.stream_chain();
        indent_by(out, depth);
        out.push_str(&format!(
            "pipeline: {} [morsel]\n",
            pipeline_line(source, &chain, None)
        ));
        explain_pipelines_into(source, depth + 1, out);
        return;
    }
    match plan {
        Plan::Scan { .. } | Plan::ResultScan { .. } | Plan::Values { .. } => {
            indent_by(out, depth);
            out.push_str(&format!("source: {}\n", node_label(plan)));
        }
        Plan::Join { left, right, .. } => {
            indent_by(out, depth);
            out.push_str(&format!(
                "break: {} [build: right, probe: left] [{}]\n",
                node_label(plan),
                granularity(plan)
            ));
            explain_pipelines_into(left, depth + 1, out);
            explain_pipelines_into(right, depth + 1, out);
        }
        Plan::UnionAll { inputs, .. } => {
            // Pass-through: the union keeps every input's partitions.
            indent_by(out, depth);
            out.push_str(&format!(
                "pass: {} [{}]\n",
                node_label(plan),
                granularity(plan)
            ));
            for input in inputs {
                explain_pipelines_into(input, depth + 1, out);
            }
        }
        Plan::Distinct {
            input,
            mode: AggMode::Partial,
        } => {
            indent_by(out, depth);
            out.push_str(&format!(
                "pass: {} [{}]\n",
                node_label(plan),
                granularity(plan)
            ));
            explain_pipelines_into(input, depth + 1, out);
        }
        Plan::Aggregate { input, .. }
        | Plan::Window { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Distinct { input, .. } => {
            indent_by(out, depth);
            out.push_str(&format!(
                "break: {} [{}]\n",
                node_label(plan),
                granularity(plan)
            ));
            explain_pipelines_into(input, depth + 1, out);
        }
        // Streaming nodes were handled above.
        Plan::Filter { .. } | Plan::Project { .. } => unreachable!("handled by stream_chain"),
    }
}
