//! Window function execution.
//!
//! Partitions are hash-built, each partition sorted by the window ordering,
//! then every call produces one value per row (placed back at the original
//! row positions). `IGNORE NULLS` is supported for the navigation functions
//! — the engine feature behind the paper's `FillDown` formula.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use sigma_sql::{FrameBound, WindowFrame};
use sigma_value::{hash, sort, Batch, Column, ColumnBuilder, DataType, Value};

use crate::error::CdwError;
use crate::eval::{eval, CompiledExpr, EvalCtx};
use crate::exec::scheduler::run_stealing;
use crate::exec::{timed, ExecCtx};
use crate::plan::{AggFunc, WinFunc, WindowCall};

/// Compute one window call over a batch, returning the appended column.
/// `eval_ns` accumulates the nanoseconds spent evaluating the call's
/// partition / order / argument expressions (per-operator stats).
pub fn compute_window(
    call: &WindowCall,
    batch: &Batch,
    out_type: DataType,
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<Column, CdwError> {
    let rows = batch.num_rows();
    // Evaluate partition / order / argument expressions once.
    type Cols = (Vec<Column>, Vec<Column>, Vec<Column>);
    let (part_cols, order_cols, arg_cols): Cols = timed(eval_ns, || {
        let part_cols: Vec<Column> = call
            .partition
            .iter()
            .map(|p| eval(p, batch, ctx))
            .collect::<Result<_, _>>()?;
        let order_cols: Vec<Column> = call
            .order
            .iter()
            .map(|o| eval(&o.expr, batch, ctx))
            .collect::<Result<_, _>>()?;
        let arg_cols: Vec<Column> = call
            .args
            .iter()
            .map(|a| eval(a, batch, ctx))
            .collect::<Result<_, _>>()?;
        Ok::<_, CdwError>((part_cols, order_cols, arg_cols))
    })?;

    // Build partitions preserving first-seen order.
    let mut partitions: Vec<Vec<usize>> = Vec::new();
    if part_cols.is_empty() {
        partitions.push((0..rows).collect());
    } else {
        let refs: Vec<&Column> = part_cols.iter().collect();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut key = Vec::new();
        for row in 0..rows {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            let next = partitions.len();
            let slot = *index.entry(key.clone()).or_insert(next);
            if slot == partitions.len() {
                partitions.push(Vec::new());
            }
            partitions[slot].push(row);
        }
    }

    // Sort rows within each partition by the window ordering.
    let sort_keys: Vec<sort::SortKey> = call
        .order
        .iter()
        .map(|o| sort::SortKey {
            descending: o.descending,
            nulls_last: o.nulls_last.unwrap_or(o.descending),
        })
        .collect();
    let order_refs: Vec<&Column> = order_cols.iter().collect();
    for p in &mut partitions {
        if !order_refs.is_empty() {
            sort::sort_subset(&order_refs, &sort_keys, p);
        }
    }

    let mut out: Vec<Value> = vec![Value::Null; rows];
    for part in &partitions {
        compute_partition(
            call,
            part,
            &arg_cols,
            &order_refs,
            &sort_keys,
            &mut |row, v| out[row] = v,
        )?;
    }
    let mut b = ColumnBuilder::new(out_type, rows);
    for v in out {
        b.push(v).map_err(CdwError::from)?;
    }
    Ok(b.finish())
}

/// Morsel-driven [`compute_window`]: the same partition semantics, with
/// both hot phases parallelized.
///
/// * **Expression evaluation** (partition / order / argument columns)
///   runs per morsel on the work-stealing scheduler; the per-morsel
///   columns concatenate to the same whole-batch columns one evaluation
///   pass produces (elementwise kernels).
/// * **Partition-key groups** build per morsel; merging the per-morsel
///   groups *sequentially in morsel order* reproduces the whole-batch
///   first-seen partition order, and each partition's row list stays
///   ascending (morsels are ascending disjoint ranges).
/// * **Per-partition sort + compute** runs partition-parallel, LPT-seeded
///   by each partition's byte share so the one giant partition of a
///   skewed input starts first. Workers return `(row, value)` pairs that
///   scatter into disjoint row sets, so write order is irrelevant; every
///   value is produced by the identical [`compute_partition`] sequence
///   the static path runs.
pub fn compute_window_morsel(
    call: &WindowCall,
    batch: &Batch,
    out_type: DataType,
    ctx: &ExecCtx,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Column, CdwError> {
    let rows = batch.num_rows();
    let mrows = crate::exec::pipeline::morsel_rows_for_batches(ctx, std::iter::once(batch));
    let types: Vec<DataType> = batch.schema().fields().iter().map(|f| f.dtype).collect();
    let cpart: Vec<CompiledExpr> = call
        .partition
        .iter()
        .map(|p| CompiledExpr::compile(p, &types))
        .collect::<Result<_, _>>()?;
    let corder: Vec<CompiledExpr> = call
        .order
        .iter()
        .map(|o| CompiledExpr::compile(&o.expr, &types))
        .collect::<Result<_, _>>()?;
    let carg: Vec<CompiledExpr> = call
        .args
        .iter()
        .map(|a| CompiledExpr::compile(a, &types))
        .collect::<Result<_, _>>()?;

    let mut chunks: Vec<std::ops::Range<usize>> = Vec::with_capacity(rows.div_ceil(mrows).max(1));
    let mut start = 0;
    while start < rows {
        let end = (start + mrows).min(rows);
        chunks.push(start..end);
        start = end;
    }
    morsels_out.fetch_add(chunks.len(), Ordering::Relaxed);

    /// One morsel's evaluated columns plus its first-seen partition-key
    /// groups (global row ids).
    struct ChunkEval {
        order: Vec<Column>,
        args: Vec<Column>,
        groups: Vec<(Vec<u8>, Vec<usize>)>,
    }
    let total_bytes = batch.byte_size();
    let evaled: Vec<ChunkEval> = run_stealing(
        ctx.parallelism,
        chunks,
        |r| crate::exec::pipeline::byte_cost(r.len(), total_bytes, rows),
        |r| {
            let base = r.start;
            let len = r.len();
            let sel: Option<Vec<usize>> = if r.start == 0 && r.end == rows {
                None
            } else {
                Some(r.collect())
            };
            let sel = sel.as_deref();
            type Cols = (Vec<Column>, Vec<Column>, Vec<Column>);
            let (part, order, args): Cols = timed(eval_ns, || {
                let part = cpart
                    .iter()
                    .map(|e| e.eval(batch, sel, &ctx.eval))
                    .collect::<Result<Vec<_>, _>>()?;
                let order = corder
                    .iter()
                    .map(|e| e.eval(batch, sel, &ctx.eval))
                    .collect::<Result<Vec<_>, _>>()?;
                let args = carg
                    .iter()
                    .map(|e| e.eval(batch, sel, &ctx.eval))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok::<_, CdwError>((part, order, args))
            })?;
            let mut groups: Vec<(Vec<u8>, Vec<usize>)> = Vec::new();
            if !part.is_empty() {
                let refs: Vec<&Column> = part.iter().collect();
                let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
                let mut key = Vec::new();
                for i in 0..len {
                    key.clear();
                    hash::encode_key(&refs, i, &mut key);
                    let next = groups.len();
                    let slot = *index.entry(key.clone()).or_insert(next);
                    if slot == groups.len() {
                        groups.push((key.clone(), Vec::new()));
                    }
                    groups[slot].1.push(base + i);
                }
            }
            Ok(ChunkEval {
                order,
                args,
                groups,
            })
        },
        &ctx.sched,
    )?;

    // Merge per-morsel partition groups sequentially in morsel order —
    // the whole-batch first-seen order, with ascending row lists.
    let partitions: Vec<Vec<usize>> = if cpart.is_empty() {
        vec![(0..rows).collect()]
    } else {
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut parts: Vec<Vec<usize>> = Vec::new();
        for ce in &evaled {
            for (key, grows) in &ce.groups {
                let next = parts.len();
                let slot = *index.entry(key.clone()).or_insert(next);
                if slot == parts.len() {
                    parts.push(Vec::new());
                }
                parts[slot].extend(grows);
            }
        }
        parts
    };

    // Concatenate per-morsel order/argument columns to whole-batch ones.
    let mut order_cols: Vec<Column> = Vec::with_capacity(corder.len());
    for k in 0..corder.len() {
        let refs: Vec<&Column> = evaled.iter().map(|ce| &ce.order[k]).collect();
        order_cols.push(Column::concat(&refs).map_err(CdwError::from)?);
    }
    let mut arg_cols: Vec<Column> = Vec::with_capacity(carg.len());
    for k in 0..carg.len() {
        let refs: Vec<&Column> = evaled.iter().map(|ce| &ce.args[k]).collect();
        arg_cols.push(Column::concat(&refs).map_err(CdwError::from)?);
    }

    let sort_keys: Vec<sort::SortKey> = call
        .order
        .iter()
        .map(|o| sort::SortKey {
            descending: o.descending,
            nulls_last: o.nulls_last.unwrap_or(o.descending),
        })
        .collect();
    let order_refs: Vec<&Column> = order_cols.iter().collect();
    let outputs: Vec<Vec<(usize, Value)>> = run_stealing(
        ctx.parallelism,
        partitions,
        |p| crate::exec::pipeline::byte_cost(p.len(), total_bytes, rows),
        |mut p| {
            if !order_refs.is_empty() {
                sort::sort_subset(&order_refs, &sort_keys, &mut p);
            }
            let mut vals: Vec<(usize, Value)> = Vec::with_capacity(p.len());
            compute_partition(
                call,
                &p,
                &arg_cols,
                &order_refs,
                &sort_keys,
                &mut |row, v| vals.push((row, v)),
            )?;
            Ok(vals)
        },
        &ctx.sched,
    )?;
    let mut out: Vec<Value> = vec![Value::Null; rows];
    for vals in outputs {
        for (row, v) in vals {
            out[row] = v;
        }
    }
    let mut b = ColumnBuilder::new(out_type, rows);
    for v in out {
        b.push(v).map_err(CdwError::from)?;
    }
    Ok(b.finish())
}

/// Effective ROWS frame for a call: explicit, else running when ordered,
/// else the whole partition.
fn effective_frame(call: &WindowCall) -> WindowFrame {
    call.frame.unwrap_or({
        if call.order.is_empty() {
            WindowFrame {
                start: FrameBound::UnboundedPreceding,
                end: FrameBound::UnboundedFollowing,
            }
        } else {
            WindowFrame {
                start: FrameBound::UnboundedPreceding,
                end: FrameBound::CurrentRow,
            }
        }
    })
}

fn frame_range(frame: &WindowFrame, i: usize, n: usize) -> (usize, usize) {
    let start = match frame.start {
        FrameBound::UnboundedPreceding => 0,
        FrameBound::Preceding(k) => i.saturating_sub(k as usize),
        FrameBound::CurrentRow => i,
        FrameBound::Following(k) => (i + k as usize).min(n),
        FrameBound::UnboundedFollowing => n,
    };
    let end = match frame.end {
        FrameBound::UnboundedPreceding => 0,
        FrameBound::Preceding(k) => (i + 1).saturating_sub(k as usize),
        FrameBound::CurrentRow => i + 1,
        FrameBound::Following(k) => (i + 1 + k as usize).min(n),
        FrameBound::UnboundedFollowing => n,
    };
    (start.min(n), end.min(n).max(start.min(n)))
}

fn compute_partition(
    call: &WindowCall,
    part: &[usize],
    arg_cols: &[Column],
    order_refs: &[&Column],
    sort_keys: &[sort::SortKey],
    emit: &mut dyn FnMut(usize, Value),
) -> Result<(), CdwError> {
    let n = part.len();
    let arg = |slot: usize, pos: usize| -> Value { arg_cols[slot].value(part[pos]) };
    match &call.func {
        WinFunc::RowNumber => {
            for (i, &row) in part.iter().enumerate() {
                emit(row, Value::Int(i as i64 + 1));
            }
        }
        WinFunc::Rank | WinFunc::DenseRank => {
            let dense = matches!(call.func, WinFunc::DenseRank);
            let mut rank = 0i64;
            let mut dense_rank = 0i64;
            for (i, &row) in part.iter().enumerate() {
                let is_peer = i > 0
                    && sort::compare_rows(order_refs, sort_keys, part[i - 1], part[i])
                        == std::cmp::Ordering::Equal;
                if !is_peer {
                    rank = i as i64 + 1;
                    dense_rank += 1;
                }
                emit(row, Value::Int(if dense { dense_rank } else { rank }));
            }
        }
        WinFunc::Ntile => {
            let buckets = call
                .args
                .first()
                .and_then(|_| arg_cols[0].value(part[0]).as_i64())
                .unwrap_or(1)
                .max(1) as usize;
            // SQL NTILE: first (n % buckets) buckets get one extra row.
            let base = n / buckets;
            let extra = n % buckets;
            let mut i = 0usize;
            for b in 0..buckets {
                let size = base + usize::from(b < extra);
                for _ in 0..size {
                    if i < n {
                        emit(part[i], Value::Int(b as i64 + 1));
                        i += 1;
                    }
                }
            }
        }
        WinFunc::Lag | WinFunc::Lead => {
            let offset = if call.args.len() > 1 {
                arg_cols[1].value(part[0]).as_i64().unwrap_or(1)
            } else {
                1
            };
            for (i, &row) in part.iter().enumerate() {
                let target = if matches!(call.func, WinFunc::Lag) {
                    i as i64 - offset
                } else {
                    i as i64 + offset
                };
                let v = if call.ignore_nulls {
                    // Nth non-null value before/after the current row.
                    let mut remaining = offset.max(0);
                    let mut found = Value::Null;
                    if matches!(call.func, WinFunc::Lag) {
                        for j in (0..i).rev() {
                            if !arg(0, j).is_null() {
                                remaining -= 1;
                                if remaining == 0 {
                                    found = arg(0, j);
                                    break;
                                }
                            }
                        }
                    } else {
                        for j in i + 1..n {
                            if !arg(0, j).is_null() {
                                remaining -= 1;
                                if remaining == 0 {
                                    found = arg(0, j);
                                    break;
                                }
                            }
                        }
                    }
                    found
                } else if target >= 0 && (target as usize) < n {
                    arg(0, target as usize)
                } else {
                    Value::Null
                };
                let v = if v.is_null() && call.args.len() > 2 {
                    arg(2, i)
                } else {
                    v
                };
                emit(row, v);
            }
        }
        WinFunc::FirstValue | WinFunc::LastValue | WinFunc::NthValue => {
            let frame = effective_frame(call);
            for (i, &row) in part.iter().enumerate() {
                let (s, e) = frame_range(&frame, i, n);
                let v = match call.func {
                    WinFunc::FirstValue => {
                        if call.ignore_nulls {
                            (s..e).map(|j| arg(0, j)).find(|v| !v.is_null())
                        } else {
                            (s < e).then(|| arg(0, s))
                        }
                    }
                    WinFunc::LastValue => {
                        if call.ignore_nulls {
                            (s..e).rev().map(|j| arg(0, j)).find(|v| !v.is_null())
                        } else {
                            (s < e).then(|| arg(0, e - 1))
                        }
                    }
                    WinFunc::NthValue => {
                        let k = arg_cols[1].value(row).as_i64().unwrap_or(1).max(1) as usize;
                        if call.ignore_nulls {
                            (s..e)
                                .map(|j| arg(0, j))
                                .filter(|v| !v.is_null())
                                .nth(k - 1)
                        } else {
                            (s + k <= e).then(|| arg(0, s + k - 1))
                        }
                    }
                    _ => unreachable!(),
                };
                emit(row, v.unwrap_or(Value::Null));
            }
        }
        WinFunc::Agg(f) => {
            let frame = effective_frame(call);
            let running = frame.start == FrameBound::UnboundedPreceding
                && frame.end == FrameBound::CurrentRow;
            if running
                && matches!(
                    f,
                    AggFunc::Sum | AggFunc::Avg | AggFunc::Count | AggFunc::CountStar
                )
            {
                // Incremental running accumulation.
                let mut sum = 0.0f64;
                let mut isum = 0i64;
                let mut count = 0i64;
                let mut any = false;
                let is_int = arg_cols
                    .first()
                    .map(|c| c.dtype() == DataType::Int)
                    .unwrap_or(false);
                for (i, &row) in part.iter().enumerate() {
                    if matches!(f, AggFunc::CountStar) {
                        count += 1;
                    } else {
                        let v = arg(0, i);
                        if !v.is_null() {
                            count += 1;
                            any = true;
                            if let Some(x) = v.as_f64() {
                                sum += x;
                            }
                            if let Some(x) = v.as_i64() {
                                isum += x;
                            }
                        }
                    }
                    emit(
                        row,
                        match f {
                            AggFunc::Count | AggFunc::CountStar => Value::Int(count),
                            AggFunc::Sum => {
                                if !any {
                                    Value::Null
                                } else if is_int {
                                    Value::Int(isum)
                                } else {
                                    Value::Float(sum)
                                }
                            }
                            AggFunc::Avg => {
                                if count == 0 {
                                    Value::Null
                                } else {
                                    Value::Float(sum / count as f64)
                                }
                            }
                            _ => unreachable!(),
                        },
                    );
                }
            } else {
                // General frame: recompute per row.
                for (i, &row) in part.iter().enumerate() {
                    let (s, e) = frame_range(&frame, i, n);
                    // Preserve Int-ness of SUM over Int columns (matches
                    // the planner's output type).
                    let mut state =
                        crate::exec::AggState::new_for(f, arg_cols.first().map(|c| c.dtype()));
                    for j in s..e {
                        if matches!(f, AggFunc::CountStar) {
                            state.update(&Value::Int(1));
                        } else {
                            state.update(&arg(0, j));
                        }
                    }
                    emit(row, state.finish());
                }
            }
        }
    }
    Ok(())
}
