//! Physical scalar expressions and their vectorized evaluator.
//!
//! `PhysExpr` references input columns by ordinal; the planner resolves all
//! names before execution. Evaluation is column-at-a-time with fast paths
//! for numeric arithmetic and comparisons; everything else goes through the
//! scalar [`Value`] kernels, which keeps the (long) SQL function tail
//! simple and obviously correct.
//!
//! Error isolation: following the spreadsheet affordance the paper calls
//! out ("isolation of errors"), cell-level domain errors — division by
//! zero, bad casts of dirty data, invalid dates — evaluate to NULL rather
//! than failing the whole query. Structural errors (unknown columns, type
//! confusion the planner should have caught) still fail loudly.

use std::cmp::Ordering;

use sigma_value::{calendar, calendar::DateUnit, Batch, Column, ColumnBuilder, DataType, Value};

use crate::error::CdwError;

/// Scalar functions executed by the engine (generic-dialect spellings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    Abs,
    Round,
    Floor,
    Ceil,
    Sqrt,
    Exp,
    Ln,
    Log,
    Power,
    Mod,
    Sign,
    Greatest,
    Least,
    Concat,
    Upper,
    Lower,
    Trim,
    LTrim,
    RTrim,
    Length,
    Left,
    Right,
    Substring,
    Contains,
    StartsWith,
    EndsWith,
    Replace,
    SplitPart,
    Lpad,
    Rpad,
    Repeat,
    Coalesce,
    Nullif,
    DateTrunc,
    DatePart,
    DateAdd,
    DateDiff,
    MakeDate,
    CurrentDate,
    CurrentTimestamp,
}

impl ScalarFunc {
    /// Resolve a generic-dialect SQL function name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        use ScalarFunc::*;
        Some(match name.to_ascii_uppercase().as_str() {
            "ABS" => Abs,
            "ROUND" => Round,
            "FLOOR" => Floor,
            "CEIL" | "CEILING" => Ceil,
            "SQRT" => Sqrt,
            "EXP" => Exp,
            "LN" => Ln,
            "LOG" => Log,
            "POWER" | "POW" => Power,
            "MOD" => Mod,
            "SIGN" => Sign,
            "GREATEST" => Greatest,
            "LEAST" => Least,
            "CONCAT" => Concat,
            "UPPER" => Upper,
            "LOWER" => Lower,
            "TRIM" => Trim,
            "LTRIM" => LTrim,
            "RTRIM" => RTrim,
            "LENGTH" | "LEN" => Length,
            "LEFT" => Left,
            "RIGHT" => Right,
            "SUBSTRING" | "SUBSTR" => Substring,
            "CONTAINS" => Contains,
            "STARTS_WITH" | "STARTSWITH" => StartsWith,
            "ENDS_WITH" | "ENDSWITH" => EndsWith,
            "REPLACE" => Replace,
            "SPLIT_PART" => SplitPart,
            "LPAD" => Lpad,
            "RPAD" => Rpad,
            "REPEAT" => Repeat,
            "COALESCE" | "IFNULL" | "NVL" => Coalesce,
            "NULLIF" => Nullif,
            "DATE_TRUNC" => DateTrunc,
            "DATE_PART" => DatePart,
            "DATEADD" | "DATE_ADD" => DateAdd,
            "DATEDIFF" | "DATE_DIFF" => DateDiff,
            "MAKE_DATE" | "DATE_FROM_PARTS" => MakeDate,
            "CURRENT_DATE" => CurrentDate,
            "CURRENT_TIMESTAMP" | "NOW" => CurrentTimestamp,
            _ => return None,
        })
    }
}

/// Binary operators at the physical level (same set as the SQL AST).
pub use sigma_sql::SqlBinaryOp as BinOp;
pub use sigma_sql::SqlUnaryOp as UnOp;

/// A fully resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysExpr {
    Literal(Value),
    /// Input column ordinal.
    Col(usize),
    Unary {
        op: UnOp,
        expr: Box<PhysExpr>,
    },
    Binary {
        op: BinOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    Func {
        func: ScalarFunc,
        args: Vec<PhysExpr>,
    },
    Case {
        operand: Option<Box<PhysExpr>>,
        whens: Vec<(PhysExpr, PhysExpr)>,
        else_: Option<Box<PhysExpr>>,
    },
    Cast {
        expr: Box<PhysExpr>,
        dtype: DataType,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Between {
        expr: Box<PhysExpr>,
        low: Box<PhysExpr>,
        high: Box<PhysExpr>,
        negated: bool,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
}

impl PhysExpr {
    pub fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    /// Collect referenced column ordinals.
    pub fn columns_used(&self, out: &mut Vec<usize>) {
        match self {
            PhysExpr::Literal(_) => {}
            PhysExpr::Col(i) => out.push(*i),
            PhysExpr::Unary { expr, .. } => expr.columns_used(out),
            PhysExpr::Binary { left, right, .. } => {
                left.columns_used(out);
                right.columns_used(out);
            }
            PhysExpr::Func { args, .. } => {
                for a in args {
                    a.columns_used(out);
                }
            }
            PhysExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    o.columns_used(out);
                }
                for (w, t) in whens {
                    w.columns_used(out);
                    t.columns_used(out);
                }
                if let Some(e) = else_ {
                    e.columns_used(out);
                }
            }
            PhysExpr::Cast { expr, .. } => expr.columns_used(out),
            PhysExpr::InList { expr, list, .. } => {
                expr.columns_used(out);
                for l in list {
                    l.columns_used(out);
                }
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => {
                expr.columns_used(out);
                low.columns_used(out);
                high.columns_used(out);
            }
            PhysExpr::IsNull { expr, .. } => expr.columns_used(out),
            PhysExpr::Like { expr, pattern, .. } => {
                expr.columns_used(out);
                pattern.columns_used(out);
            }
        }
    }

    /// Rewrite column ordinals through a mapping (projection pruning).
    pub fn remap_columns(&mut self, map: &dyn Fn(usize) -> usize) {
        match self {
            PhysExpr::Literal(_) => {}
            PhysExpr::Col(i) => *i = map(*i),
            PhysExpr::Unary { expr, .. } => expr.remap_columns(map),
            PhysExpr::Binary { left, right, .. } => {
                left.remap_columns(map);
                right.remap_columns(map);
            }
            PhysExpr::Func { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
            PhysExpr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    o.remap_columns(map);
                }
                for (w, t) in whens {
                    w.remap_columns(map);
                    t.remap_columns(map);
                }
                if let Some(e) = else_ {
                    e.remap_columns(map);
                }
            }
            PhysExpr::Cast { expr, .. } => expr.remap_columns(map),
            PhysExpr::InList { expr, list, .. } => {
                expr.remap_columns(map);
                for l in list {
                    l.remap_columns(map);
                }
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => {
                expr.remap_columns(map);
                low.remap_columns(map);
                high.remap_columns(map);
            }
            PhysExpr::IsNull { expr, .. } => expr.remap_columns(map),
            PhysExpr::Like { expr, pattern, .. } => {
                expr.remap_columns(map);
                pattern.remap_columns(map);
            }
        }
    }
}

/// Evaluation context: the session clock, so `CURRENT_DATE` is
/// deterministic and testable.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    /// Session "now" in microseconds since the epoch.
    pub now_micros: i64,
}

impl Default for EvalCtx {
    fn default() -> Self {
        // 2020-06-01 00:00:00 UTC: inside the paper's 1987-2020 dataset.
        EvalCtx {
            now_micros: calendar::days_from_civil(2020, 6, 1) as i64 * calendar::MICROS_PER_DAY,
        }
    }
}

// ---------------------------------------------------------------------
// type inference
// ---------------------------------------------------------------------

/// Infer the output type of an expression over the given input types.
/// `None` means "unknown / all-null" and defaults to Text at column-build
/// time.
pub fn infer_type(expr: &PhysExpr, input: &[DataType]) -> Result<Option<DataType>, CdwError> {
    use PhysExpr::*;
    match expr {
        Literal(v) => Ok(v.dtype()),
        Col(i) => input
            .get(*i)
            .copied()
            .map(Some)
            .ok_or_else(|| CdwError::plan(format!("column ordinal {i} out of range"))),
        Unary { op, expr } => {
            let t = infer_type(expr, input)?;
            Ok(match op {
                UnOp::Neg => t.or(Some(DataType::Float)),
                UnOp::Not => Some(DataType::Bool),
            })
        }
        Binary { op, left, right } => {
            let lt = infer_type(left, input)?;
            let rt = infer_type(right, input)?;
            Ok(binary_type(*op, lt, rt))
        }
        Func { func, args } => {
            let tys: Vec<Option<DataType>> = args
                .iter()
                .map(|a| infer_type(a, input))
                .collect::<Result<_, _>>()?;
            Ok(func_type(*func, &tys))
        }
        Case { whens, else_, .. } => {
            let mut acc: Option<DataType> = None;
            for (_, t) in whens {
                acc = unify_opt(acc, infer_type(t, input)?);
            }
            if let Some(e) = else_ {
                acc = unify_opt(acc, infer_type(e, input)?);
            }
            Ok(acc)
        }
        Cast { dtype, .. } => Ok(Some(*dtype)),
        InList { .. } | Between { .. } | IsNull { .. } | Like { .. } => Ok(Some(DataType::Bool)),
    }
}

fn unify_opt(a: Option<DataType>, b: Option<DataType>) -> Option<DataType> {
    match (a, b) {
        (None, t) | (t, None) => t,
        (Some(x), Some(y)) => x.unify(y).or(Some(DataType::Text)),
    }
}

fn binary_type(op: BinOp, lt: Option<DataType>, rt: Option<DataType>) -> Option<DataType> {
    use BinOp::*;
    match op {
        Add | Sub => match (lt, rt) {
            (Some(d), Some(DataType::Int)) if d.is_temporal() => Some(d),
            (Some(DataType::Int), Some(d)) if d.is_temporal() => Some(d),
            (Some(a), Some(b)) if a.is_temporal() && b.is_temporal() => Some(DataType::Int),
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Mul | Mod => match (lt, rt) {
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Div => Some(DataType::Float),
        Concat => Some(DataType::Text),
        Eq | NotEq | Lt | LtEq | Gt | GtEq | And | Or => Some(DataType::Bool),
    }
}

fn func_type(func: ScalarFunc, tys: &[Option<DataType>]) -> Option<DataType> {
    use ScalarFunc::*;
    match func {
        Abs | Round => tys[0].or(Some(DataType::Float)),
        Floor | Ceil | Sign | Length | DatePart | DateDiff => Some(DataType::Int),
        Sqrt | Exp | Ln | Log | Power => Some(DataType::Float),
        Mod => match (tys[0], tys.get(1).copied().flatten()) {
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Greatest | Least | Coalesce => {
            let mut acc = None;
            for &t in tys {
                acc = unify_opt(acc, t);
            }
            acc
        }
        Nullif => tys[0],
        Concat | Upper | Lower | Trim | LTrim | RTrim | Left | Right | Substring | Replace
        | SplitPart | Lpad | Rpad | Repeat => Some(DataType::Text),
        Contains | StartsWith | EndsWith => Some(DataType::Bool),
        DateTrunc => tys[1].or(Some(DataType::Date)),
        DateAdd => tys[2].or(Some(DataType::Date)),
        MakeDate | CurrentDate => Some(DataType::Date),
        CurrentTimestamp => Some(DataType::Timestamp),
    }
}

// ---------------------------------------------------------------------
// evaluation
// ---------------------------------------------------------------------

/// Evaluate an expression over a batch, producing one column.
pub fn eval(expr: &PhysExpr, batch: &Batch, ctx: &EvalCtx) -> Result<Column, CdwError> {
    let rows = batch.num_rows();
    let input_types: Vec<DataType> = batch.schema().fields().iter().map(|f| f.dtype).collect();
    let out_type = infer_type(expr, &input_types)?.unwrap_or(DataType::Text);
    match expr {
        PhysExpr::Col(i) => {
            let col = batch.column(*i);
            return Ok(col.clone());
        }
        PhysExpr::Literal(v) => {
            let mut b = ColumnBuilder::new(out_type, rows);
            for _ in 0..rows {
                b.push(v.clone()).map_err(CdwError::from)?;
            }
            return Ok(b.finish());
        }
        // Fast path: numeric binary ops over two evaluated columns.
        PhysExpr::Binary { op, left, right } => {
            let l = eval(left, batch, ctx)?;
            let r = eval(right, batch, ctx)?;
            return eval_binary_columns(*op, &l, &r, out_type);
        }
        _ => {}
    }
    // General path: evaluate sub-expressions to columns, then combine
    // row-wise.
    let mut b = ColumnBuilder::new(out_type, rows);
    match expr {
        PhysExpr::Unary { op, expr } => {
            let c = eval(expr, batch, ctx)?;
            for i in 0..rows {
                b.push(eval_unary_value(*op, c.value(i))?)
                    .map_err(CdwError::from)?;
            }
        }
        PhysExpr::Func { func, args } => {
            let cols: Vec<Column> = args
                .iter()
                .map(|a| eval(a, batch, ctx))
                .collect::<Result<_, _>>()?;
            let mut argv: Vec<Value> = Vec::with_capacity(cols.len());
            for i in 0..rows {
                argv.clear();
                argv.extend(cols.iter().map(|c| c.value(i)));
                b.push(eval_func_value(*func, &argv, ctx)?)
                    .map_err(CdwError::from)?;
            }
            if rows == 0 && cols.is_empty() {
                // zero-arg funcs over empty batches: nothing to do
            }
        }
        PhysExpr::Case {
            operand,
            whens,
            else_,
        } => {
            let op_col = operand.as_ref().map(|o| eval(o, batch, ctx)).transpose()?;
            let when_cols: Vec<(Column, Column)> = whens
                .iter()
                .map(|(w, t)| Ok::<_, CdwError>((eval(w, batch, ctx)?, eval(t, batch, ctx)?)))
                .collect::<Result<_, _>>()?;
            let else_col = else_.as_ref().map(|e| eval(e, batch, ctx)).transpose()?;
            for i in 0..rows {
                let mut result = Value::Null;
                let mut matched = false;
                for (w, t) in &when_cols {
                    let hit = match &op_col {
                        Some(op) => {
                            let ov = op.value(i);
                            let wv = w.value(i);
                            !ov.is_null() && !wv.is_null() && ov.sql_eq(&wv)
                        }
                        None => w.value(i) == Value::Bool(true),
                    };
                    if hit {
                        result = t.value(i);
                        matched = true;
                        break;
                    }
                }
                if !matched {
                    if let Some(e) = &else_col {
                        result = e.value(i);
                    }
                }
                b.push(result).map_err(CdwError::from)?;
            }
        }
        PhysExpr::Cast { expr, dtype } => {
            let c = eval(expr, batch, ctx)?;
            for i in 0..rows {
                // Dirty-cast isolation: unparseable cells become NULL.
                let v = sigma_value::column::cast_value(c.value(i), *dtype).unwrap_or(Value::Null);
                b.push(v).map_err(CdwError::from)?;
            }
        }
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => {
            let c = eval(expr, batch, ctx)?;
            let list_cols: Vec<Column> = list
                .iter()
                .map(|l| eval(l, batch, ctx))
                .collect::<Result<_, _>>()?;
            for i in 0..rows {
                let v = c.value(i);
                if v.is_null() {
                    b.push_null();
                    continue;
                }
                let mut found = false;
                let mut saw_null = false;
                for lc in &list_cols {
                    let lv = lc.value(i);
                    if lv.is_null() {
                        saw_null = true;
                    } else if v.sql_eq(&lv) {
                        found = true;
                        break;
                    }
                }
                let out = if found {
                    Some(!negated)
                } else if saw_null {
                    None
                } else {
                    Some(*negated)
                };
                match out {
                    Some(x) => b.push(Value::Bool(x)).map_err(CdwError::from)?,
                    None => b.push_null(),
                }
            }
        }
        PhysExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let c = eval(expr, batch, ctx)?;
            let lo = eval(low, batch, ctx)?;
            let hi = eval(high, batch, ctx)?;
            for i in 0..rows {
                let (v, l, h) = (c.value(i), lo.value(i), hi.value(i));
                if v.is_null() || l.is_null() || h.is_null() {
                    b.push_null();
                    continue;
                }
                let inside =
                    v.total_cmp(&l) != Ordering::Less && v.total_cmp(&h) != Ordering::Greater;
                b.push(Value::Bool(inside != *negated))
                    .map_err(CdwError::from)?;
            }
        }
        PhysExpr::IsNull { expr, negated } => {
            let c = eval(expr, batch, ctx)?;
            for i in 0..rows {
                b.push(Value::Bool(c.is_null(i) != *negated))
                    .map_err(CdwError::from)?;
            }
        }
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let c = eval(expr, batch, ctx)?;
            let p = eval(pattern, batch, ctx)?;
            for i in 0..rows {
                let (v, pv) = (c.value(i), p.value(i));
                match (v.as_text(), pv.as_text()) {
                    (Some(s), Some(pat)) => {
                        b.push(Value::Bool(like_match(s, pat) != *negated))
                            .map_err(CdwError::from)?;
                    }
                    _ => b.push_null(),
                }
            }
        }
        PhysExpr::Literal(_) | PhysExpr::Col(_) | PhysExpr::Binary { .. } => unreachable!(),
    }
    Ok(b.finish())
}

/// SQL LIKE with `%` and `_` wildcards (no escape syntax).
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative wildcard matching with backtracking on the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star, mut star_si) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = pi;
            star_si = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            star_si += 1;
            si = star_si;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

fn eval_unary_value(op: UnOp, v: Value) -> Result<Value, CdwError> {
    Ok(match op {
        UnOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            other => return Err(CdwError::exec(format!("cannot negate {}", other.render()))),
        },
        UnOp::Not => match v {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => {
                return Err(CdwError::exec(format!(
                    "NOT of non-boolean {}",
                    other.render()
                )))
            }
        },
    })
}

/// Columnar binary evaluation with fast paths for Int/Float slices.
fn eval_binary_columns(
    op: BinOp,
    l: &Column,
    r: &Column,
    out_type: DataType,
) -> Result<Column, CdwError> {
    let rows = l.len();
    // Fast path: Int op Int arithmetic with no nulls.
    if l.null_count() == 0 && r.null_count() == 0 {
        if let (Some(a), Some(b)) = (l.ints(), r.ints()) {
            match op {
                BinOp::Add => {
                    return Ok(Column::from_ints(
                        a.iter().zip(b).map(|(x, y)| x.wrapping_add(*y)).collect(),
                    ))
                }
                BinOp::Sub => {
                    return Ok(Column::from_ints(
                        a.iter().zip(b).map(|(x, y)| x.wrapping_sub(*y)).collect(),
                    ))
                }
                BinOp::Mul => {
                    return Ok(Column::from_ints(
                        a.iter().zip(b).map(|(x, y)| x.wrapping_mul(*y)).collect(),
                    ))
                }
                BinOp::Lt => {
                    return Ok(Column::from_bools(
                        a.iter().zip(b).map(|(x, y)| x < y).collect(),
                    ))
                }
                BinOp::Gt => {
                    return Ok(Column::from_bools(
                        a.iter().zip(b).map(|(x, y)| x > y).collect(),
                    ))
                }
                BinOp::Eq => {
                    return Ok(Column::from_bools(
                        a.iter().zip(b).map(|(x, y)| x == y).collect(),
                    ))
                }
                _ => {}
            }
        }
        if let (Some(a), Some(b)) = (l.floats(), r.floats()) {
            match op {
                BinOp::Add => {
                    return Ok(Column::from_floats(
                        a.iter().zip(b).map(|(x, y)| x + y).collect(),
                    ))
                }
                BinOp::Sub => {
                    return Ok(Column::from_floats(
                        a.iter().zip(b).map(|(x, y)| x - y).collect(),
                    ))
                }
                BinOp::Mul => {
                    return Ok(Column::from_floats(
                        a.iter().zip(b).map(|(x, y)| x * y).collect(),
                    ))
                }
                _ => {}
            }
        }
    }
    let mut builder = ColumnBuilder::new(out_type, rows);
    for i in 0..rows {
        builder
            .push(eval_binary_value(op, l.value(i), r.value(i))?)
            .map_err(CdwError::from)?;
    }
    Ok(builder.finish())
}

/// Scalar binary kernel with SQL null semantics (three-valued logic for
/// AND/OR; null-propagating otherwise).
pub fn eval_binary_value(op: BinOp, l: Value, r: Value) -> Result<Value, CdwError> {
    use BinOp::*;
    // AND/OR have non-strict null handling.
    match op {
        And => {
            return Ok(match (l.as_bool(), r.as_bool(), l.is_null(), r.is_null()) {
                (Some(false), _, _, _) | (_, Some(false), _, _) => Value::Bool(false),
                (Some(true), Some(true), _, _) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Or => {
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub => {
            // Temporal arithmetic in days.
            match (&l, &r, op) {
                (Value::Date(d), Value::Int(n), Add) => return Ok(Value::Date(d + *n as i32)),
                (Value::Date(d), Value::Int(n), Sub) => return Ok(Value::Date(d - *n as i32)),
                (Value::Int(n), Value::Date(d), Add) => return Ok(Value::Date(d + *n as i32)),
                (Value::Timestamp(t), Value::Int(n), Add) => {
                    return Ok(Value::Timestamp(t + *n * calendar::MICROS_PER_DAY))
                }
                (Value::Timestamp(t), Value::Int(n), Sub) => {
                    return Ok(Value::Timestamp(t - *n * calendar::MICROS_PER_DAY))
                }
                (a, b, Sub)
                    if a.dtype().is_some_and(|d| d.is_temporal())
                        && b.dtype().is_some_and(|d| d.is_temporal()) =>
                {
                    let days = (a.as_micros().unwrap() - b.as_micros().unwrap())
                        / calendar::MICROS_PER_DAY;
                    return Ok(Value::Int(days));
                }
                _ => {}
            }
            numeric_arith(op, &l, &r)
        }
        Mul => numeric_arith(op, &l, &r),
        Div => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => {
                if b == 0.0 {
                    Ok(Value::Null) // cell-level error isolation
                } else {
                    Ok(Value::Float(a / b))
                }
            }
            _ => Err(type_err("/", &l, &r)),
        },
        Mod => match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => {
                if *b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a.rem_euclid(*b)))
                }
            }
            _ => match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => {
                    if b == 0.0 {
                        Ok(Value::Null)
                    } else {
                        Ok(Value::Float(a.rem_euclid(b)))
                    }
                }
                _ => Err(type_err("%", &l, &r)),
            },
        },
        Concat => Ok(Value::Text(format!("{}{}", l.render(), r.render()))),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if !comparable(&l, &r) {
                return Err(type_err(op.symbol(), &l, &r));
            }
            let ord = l.total_cmp(&r);
            let out = match op {
                Eq => ord == Ordering::Equal,
                NotEq => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                LtEq => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                GtEq => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(out))
        }
        And | Or => unreachable!(),
    }
}

fn comparable(l: &Value, r: &Value) -> bool {
    match (l.dtype(), r.dtype()) {
        (Some(a), Some(b)) => a.unify(b).is_some(),
        _ => true,
    }
}

fn type_err(op: &str, l: &Value, r: &Value) -> CdwError {
    CdwError::exec(format!(
        "cannot apply {op} to {} and {}",
        l.dtype().map_or("NULL".into(), |d| d.to_string()),
        r.dtype().map_or("NULL".into(), |d| d.to_string())
    ))
}

fn numeric_arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, CdwError> {
    use BinOp::*;
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(Value::Int(match op {
            Add => a.wrapping_add(*b),
            Sub => a.wrapping_sub(*b),
            Mul => a.wrapping_mul(*b),
            _ => unreachable!(),
        })),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => Ok(Value::Float(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                _ => unreachable!(),
            })),
            _ => Err(type_err(op.symbol(), l, r)),
        },
    }
}

/// Scalar function kernel over one row of argument values.
pub fn eval_func_value(func: ScalarFunc, args: &[Value], ctx: &EvalCtx) -> Result<Value, CdwError> {
    use ScalarFunc::*;
    // Null-propagating functions bail early; the exceptions handle nulls
    // themselves.
    let null_tolerant = matches!(
        func,
        Coalesce | Nullif | Concat | CurrentDate | CurrentTimestamp
    );
    if !null_tolerant && args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    let num = |i: usize| args[i].as_f64().ok_or_else(|| arg_err(func, i, &args[i]));
    let int = |i: usize| args[i].as_i64().ok_or_else(|| arg_err(func, i, &args[i]));
    let text = |i: usize| {
        args[i]
            .as_text()
            .map(str::to_owned)
            .ok_or_else(|| arg_err(func, i, &args[i]))
    };
    let unit = |i: usize| -> Result<DateUnit, CdwError> {
        let s = args[i]
            .as_text()
            .ok_or_else(|| arg_err(func, i, &args[i]))?;
        DateUnit::parse(s).ok_or_else(|| CdwError::exec(format!("unknown date unit {s:?}")))
    };
    Ok(match func {
        Abs => match &args[0] {
            Value::Int(i) => Value::Int(i.wrapping_abs()),
            _ => Value::Float(num(0)?.abs()),
        },
        Round => {
            let digits = if args.len() > 1 { int(1)? } else { 0 };
            let factor = 10f64.powi(digits as i32);
            match &args[0] {
                Value::Int(i) if digits >= 0 => Value::Int(*i),
                _ => Value::Float((num(0)? * factor).round() / factor),
            }
        }
        Floor => Value::Int(num(0)?.floor() as i64),
        Ceil => Value::Int(num(0)?.ceil() as i64),
        Sqrt => {
            let x = num(0)?;
            if x < 0.0 {
                Value::Null
            } else {
                Value::Float(x.sqrt())
            }
        }
        Exp => Value::Float(num(0)?.exp()),
        Ln => {
            let x = num(0)?;
            if x <= 0.0 {
                Value::Null
            } else {
                Value::Float(x.ln())
            }
        }
        Log => {
            let x = num(0)?;
            let base = if args.len() > 1 { num(1)? } else { 10.0 };
            if x <= 0.0 || base <= 0.0 || base == 1.0 {
                Value::Null
            } else {
                Value::Float(x.log(base))
            }
        }
        Power => Value::Float(num(0)?.powf(num(1)?)),
        Mod => eval_binary_value(BinOp::Mod, args[0].clone(), args[1].clone())?,
        Sign => Value::Int(match num(0)? {
            x if x > 0.0 => 1,
            x if x < 0.0 => -1,
            _ => 0,
        }),
        Greatest => args
            .iter()
            .cloned()
            .max_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
        Least => args
            .iter()
            .cloned()
            .min_by(|a, b| a.total_cmp(b))
            .unwrap_or(Value::Null),
        Concat => {
            let mut s = String::new();
            for a in args {
                s.push_str(&a.render());
            }
            Value::Text(s)
        }
        Upper => Value::Text(text(0)?.to_uppercase()),
        Lower => Value::Text(text(0)?.to_lowercase()),
        Trim => Value::Text(text(0)?.trim().to_string()),
        LTrim => Value::Text(text(0)?.trim_start().to_string()),
        RTrim => Value::Text(text(0)?.trim_end().to_string()),
        Length => Value::Int(text(0)?.chars().count() as i64),
        Left => {
            let s = text(0)?;
            let n = int(1)?.max(0) as usize;
            Value::Text(s.chars().take(n).collect())
        }
        Right => {
            let s = text(0)?;
            let n = int(1)?.max(0) as usize;
            let len = s.chars().count();
            Value::Text(s.chars().skip(len.saturating_sub(n)).collect())
        }
        Substring => {
            let s = text(0)?;
            let start = int(1)?;
            let len = int(2)?.max(0) as usize;
            let skip = (start.max(1) - 1) as usize;
            Value::Text(s.chars().skip(skip).take(len).collect())
        }
        Contains => Value::Bool(text(0)?.contains(&text(1)?)),
        StartsWith => Value::Bool(text(0)?.starts_with(&text(1)?)),
        EndsWith => Value::Bool(text(0)?.ends_with(&text(1)?)),
        Replace => Value::Text(text(0)?.replace(&text(1)?, &text(2)?)),
        SplitPart => {
            let s = text(0)?;
            let delim = text(1)?;
            let n = int(2)?;
            if delim.is_empty() || n < 1 {
                Value::Null
            } else {
                s.split(&delim)
                    .nth((n - 1) as usize)
                    .map(|p| Value::Text(p.to_string()))
                    .unwrap_or(Value::Null)
            }
        }
        Lpad | Rpad => {
            let s = text(0)?;
            let target = int(1)?.max(0) as usize;
            let pad = if args.len() > 2 {
                text(2)?
            } else {
                " ".to_string()
            };
            let len = s.chars().count();
            if len >= target || pad.is_empty() {
                Value::Text(s.chars().take(target).collect())
            } else {
                let fill: String = pad.chars().cycle().take(target - len).collect();
                if func == Lpad {
                    Value::Text(format!("{fill}{s}"))
                } else {
                    Value::Text(format!("{s}{fill}"))
                }
            }
        }
        Repeat => {
            let s = text(0)?;
            let n = int(1)?.clamp(0, 10_000) as usize;
            Value::Text(s.repeat(n))
        }
        Coalesce => args
            .iter()
            .find(|a| !a.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        Nullif => {
            if !args[0].is_null() && !args[1].is_null() && args[0].sql_eq(&args[1]) {
                Value::Null
            } else {
                args[0].clone()
            }
        }
        DateTrunc => {
            let u = unit(0)?;
            match &args[1] {
                Value::Date(d) => Value::Date(calendar::trunc_date(*d, u)),
                Value::Timestamp(t) => Value::Timestamp(calendar::trunc_timestamp(*t, u)),
                other => return Err(arg_err(func, 1, other)),
            }
        }
        DatePart => {
            let u = unit(0)?;
            match &args[1] {
                Value::Date(d) => Value::Int(calendar::date_part(*d, u)),
                Value::Timestamp(t) => Value::Int(calendar::timestamp_part(*t, u)),
                other => return Err(arg_err(func, 1, other)),
            }
        }
        DateAdd => {
            let u = unit(0)?;
            let n = int(1)?;
            match &args[2] {
                Value::Date(d) => Value::Date(calendar::date_add(*d, u, n)),
                Value::Timestamp(t) => Value::Timestamp(calendar::timestamp_add(*t, u, n)),
                other => return Err(arg_err(func, 2, other)),
            }
        }
        DateDiff => {
            let u = unit(0)?;
            match (&args[1], &args[2]) {
                (Value::Date(a), Value::Date(b)) => Value::Int(calendar::date_diff(*a, *b, u)),
                (a, b) => {
                    let (am, bm) = (a.as_micros(), b.as_micros());
                    match (am, bm) {
                        (Some(am), Some(bm)) => Value::Int(calendar::timestamp_diff(am, bm, u)),
                        _ => return Err(arg_err(func, 1, a)),
                    }
                }
            }
        }
        MakeDate => {
            let (y, m, d) = (int(0)? as i32, int(1)?, int(2)?);
            if !(1..=12).contains(&m) {
                Value::Null
            } else {
                let m = m as u32;
                if d < 1 || d as u32 > calendar::last_day_of_month(y, m) {
                    Value::Null
                } else {
                    Value::Date(calendar::days_from_civil(y, m, d as u32))
                }
            }
        }
        CurrentDate => Value::Date((ctx.now_micros / calendar::MICROS_PER_DAY) as i32),
        CurrentTimestamp => Value::Timestamp(ctx.now_micros),
    })
}

fn arg_err(func: ScalarFunc, i: usize, v: &Value) -> CdwError {
    CdwError::exec(format!(
        "{func:?}: argument {i} has unexpected type {}",
        v.dtype().map_or("NULL".into(), |d| d.to_string())
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Field, Schema};
    use std::sync::Arc;

    fn batch() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("t", DataType::Text),
            Field::new("f", DataType::Float),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_opt_ints(vec![Some(10), None, Some(30)]),
                Column::from_texts(vec!["alpha".into(), "Beta".into(), "x,y".into()]),
                Column::from_floats(vec![1.5, 2.5, -3.0]),
            ],
        )
        .unwrap()
    }

    fn ev(e: &PhysExpr) -> Column {
        eval(e, &batch(), &EvalCtx::default()).unwrap()
    }

    #[test]
    fn arithmetic_fast_path_and_nulls() {
        let e = PhysExpr::Binary {
            op: BinOp::Add,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::Col(1)),
        };
        let c = ev(&e);
        assert_eq!(c.value(0), Value::Int(11));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.value(2), Value::Int(33));
    }

    #[test]
    fn division_by_zero_isolates() {
        let e = PhysExpr::Binary {
            op: BinOp::Div,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::lit(0i64)),
        };
        let c = ev(&e);
        assert!(c.is_null(0));
    }

    #[test]
    fn three_valued_logic() {
        // null AND false = false; null AND true = null; null OR true = true.
        let null = PhysExpr::Literal(Value::Null);
        let f = PhysExpr::lit(false);
        let t = PhysExpr::lit(true);
        let and_nf = PhysExpr::Binary {
            op: BinOp::And,
            left: Box::new(null.clone()),
            right: Box::new(f),
        };
        assert_eq!(ev(&and_nf).value(0), Value::Bool(false));
        let and_nt = PhysExpr::Binary {
            op: BinOp::And,
            left: Box::new(null.clone()),
            right: Box::new(t.clone()),
        };
        assert!(ev(&and_nt).is_null(0));
        let or_nt = PhysExpr::Binary {
            op: BinOp::Or,
            left: Box::new(null),
            right: Box::new(t),
        };
        assert_eq!(ev(&or_nt).value(0), Value::Bool(true));
    }

    #[test]
    fn string_functions() {
        let upper = PhysExpr::Func {
            func: ScalarFunc::Upper,
            args: vec![PhysExpr::Col(2)],
        };
        assert_eq!(ev(&upper).value(0), Value::Text("ALPHA".into()));
        let left = PhysExpr::Func {
            func: ScalarFunc::Left,
            args: vec![PhysExpr::Col(2), PhysExpr::lit(2i64)],
        };
        assert_eq!(ev(&left).value(1), Value::Text("Be".into()));
        let split = PhysExpr::Func {
            func: ScalarFunc::SplitPart,
            args: vec![PhysExpr::Col(2), PhysExpr::lit(","), PhysExpr::lit(2i64)],
        };
        assert_eq!(ev(&split).value(2), Value::Text("y".into()));
        assert!(ev(&split).is_null(0)); // "alpha" has no second field
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("alpha", "al%"));
        assert!(like_match("alpha", "%pha"));
        assert!(like_match("alpha", "a_pha"));
        assert!(!like_match("alpha", "beta%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn date_functions() {
        let d = calendar::days_from_civil(2019, 8, 17);
        let trunc = PhysExpr::Func {
            func: ScalarFunc::DateTrunc,
            args: vec![PhysExpr::lit("quarter"), PhysExpr::Literal(Value::Date(d))],
        };
        let c = ev(&trunc);
        assert_eq!(
            c.value(0),
            Value::Date(calendar::days_from_civil(2019, 7, 1))
        );
        let bad = PhysExpr::Func {
            func: ScalarFunc::MakeDate,
            args: vec![
                PhysExpr::lit(2021i64),
                PhysExpr::lit(2i64),
                PhysExpr::lit(29i64),
            ],
        };
        assert!(ev(&bad).is_null(0));
    }

    #[test]
    fn cast_isolation() {
        let c = PhysExpr::Cast {
            expr: Box::new(PhysExpr::Col(2)),
            dtype: DataType::Int,
        };
        // None of "alpha"/"Beta"/"x,y" parse as ints -> NULLs, not errors.
        let out = ev(&c);
        assert_eq!(out.null_count(), 3);
    }

    #[test]
    fn case_simple_and_searched() {
        let searched = PhysExpr::Case {
            operand: None,
            whens: vec![(
                PhysExpr::Binary {
                    op: BinOp::Gt,
                    left: Box::new(PhysExpr::Col(0)),
                    right: Box::new(PhysExpr::lit(1i64)),
                },
                PhysExpr::lit("big"),
            )],
            else_: Some(Box::new(PhysExpr::lit("small"))),
        };
        let c = ev(&searched);
        assert_eq!(c.value(0), Value::Text("small".into()));
        assert_eq!(c.value(2), Value::Text("big".into()));
        let simple = PhysExpr::Case {
            operand: Some(Box::new(PhysExpr::Col(0))),
            whens: vec![(PhysExpr::lit(2i64), PhysExpr::lit("two"))],
            else_: None,
        };
        let c2 = ev(&simple);
        assert!(c2.is_null(0));
        assert_eq!(c2.value(1), Value::Text("two".into()));
    }

    #[test]
    fn in_list_three_valued() {
        // 1 IN (1, NULL) = true; 2 IN (1, NULL) = NULL; 2 IN (1, 3) = false.
        let mk = |v: i64, list: Vec<PhysExpr>| PhysExpr::InList {
            expr: Box::new(PhysExpr::lit(v)),
            list,
            negated: false,
        };
        let t = mk(1, vec![PhysExpr::lit(1i64), PhysExpr::Literal(Value::Null)]);
        assert_eq!(ev(&t).value(0), Value::Bool(true));
        let n = mk(2, vec![PhysExpr::lit(1i64), PhysExpr::Literal(Value::Null)]);
        assert!(ev(&n).is_null(0));
        let f = mk(2, vec![PhysExpr::lit(1i64), PhysExpr::lit(3i64)]);
        assert_eq!(ev(&f).value(0), Value::Bool(false));
    }

    #[test]
    fn type_inference_matches_eval() {
        let input = [
            DataType::Int,
            DataType::Int,
            DataType::Text,
            DataType::Float,
        ];
        let div = PhysExpr::Binary {
            op: BinOp::Div,
            left: Box::new(PhysExpr::Col(0)),
            right: Box::new(PhysExpr::Col(1)),
        };
        assert_eq!(infer_type(&div, &input).unwrap(), Some(DataType::Float));
        assert_eq!(ev(&div).dtype(), DataType::Float);
        let concat = PhysExpr::Binary {
            op: BinOp::Concat,
            left: Box::new(PhysExpr::Col(2)),
            right: Box::new(PhysExpr::Col(0)),
        };
        assert_eq!(ev(&concat).value(0), Value::Text("alpha1".into()));
    }

    #[test]
    fn current_date_uses_session_clock() {
        let e = PhysExpr::Func {
            func: ScalarFunc::CurrentDate,
            args: vec![],
        };
        let c = eval(&e, &batch(), &EvalCtx::default()).unwrap();
        assert_eq!(
            c.value(0),
            Value::Date(calendar::days_from_civil(2020, 6, 1))
        );
    }
}
