//! The warehouse facade: parse → plan → optimize → execute, plus DDL/DML,
//! persisted result sets, and the configuration knobs experiments sweep.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use sigma_sql::{parse_statement, Dialect, Query, Statement};
use sigma_value::{Batch, Value};

use crate::catalog::{Catalog, TableStats};
use crate::error::CdwError;
use crate::eval::{self, EvalCtx, PhysExpr};
use crate::exec::{execute, ExecCtx, ExecStats, OpStats};
use crate::optimizer::optimize;
use crate::plan::Plan;
use crate::planner::Planner;
use crate::storage::DEFAULT_PARTITION_ROWS;

/// Warehouse configuration.
#[derive(Debug, Clone)]
pub struct WarehouseConfig {
    /// Worker threads for partition-parallel stages.
    pub parallelism: usize,
    /// Simulated per-query compute startup latency (models the cloud
    /// warehouse's dispatch overhead; 0 for raw engine benchmarks).
    pub query_overhead: Duration,
    /// Session clock for CURRENT_DATE / CURRENT_TIMESTAMP.
    pub now_micros: i64,
    /// How many recent result sets to keep addressable via RESULT_SCAN.
    pub max_persisted_results: usize,
    /// Per-operator execution memory budget in bytes (`None` =
    /// unbounded). When an aggregation hash table, sort run, or hash-join
    /// build side would exceed it, the operator runs out-of-core via
    /// spill files — with bit-identical results (see
    /// [`crate::exec::ExecMemoryTracker`]).
    pub memory_budget: Option<usize>,
    /// Morsel height for pipelined execution (`None` = the static
    /// partition-at-a-time executor, the oracle baseline). Results are
    /// bit-identical either way; the morsel path only changes how work
    /// is scheduled.
    pub morsel_rows: Option<usize>,
    /// Derive each pipeline's morsel height from its input shape (bytes
    /// per row, thread count, largest partition) instead of the fixed
    /// `morsel_rows` value. On by default; calling
    /// [`Warehouse::set_morsel_rows`] switches to the explicit setting so
    /// the equivalence and spill oracles can sweep fixed sizes.
    pub adaptive_morsels: bool,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            parallelism: 1,
            query_overhead: Duration::ZERO,
            now_micros: EvalCtx::default().now_micros,
            max_persisted_results: 256,
            memory_budget: None,
            morsel_rows: Some(crate::exec::DEFAULT_MORSEL_ROWS),
            adaptive_morsels: true,
        }
    }
}

/// One executed query's outcome.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Warehouse-assigned id; pass to `RESULT_SCAN('<id>')` to re-fetch.
    pub query_id: String,
    pub batch: Batch,
    pub rows_scanned: usize,
    pub partitions_scanned: usize,
    pub elapsed: Duration,
    /// Number of rows affected, for DML (0 for queries).
    pub rows_affected: usize,
    /// Per-operator breakdown (rows in/out, partitions, elapsed) in plan
    /// pre-order; empty for DDL/DML. Render via [`Warehouse::explain_analyze`]
    /// or inspect directly for time attribution.
    pub operators: Vec<OpStats>,
    /// Bytes this query wrote to spill files (0 when every operator fit
    /// the memory budget, always 0 when unbudgeted).
    pub spilled_bytes: usize,
    /// Spill rounds taken (aggregation/join bucket passes + sort runs).
    pub spill_rounds: usize,
}

/// An in-process cloud data warehouse.
pub struct Warehouse {
    catalog: RwLock<Catalog>,
    /// Persisted result sets by query id (LRU-capped: re-fetching a result
    /// via [`Warehouse::persisted_result`] or [`Warehouse::touch_result`]
    /// promotes it, so results that stage caching keeps re-serving via
    /// `RESULT_SCAN` are not evicted in insertion order).
    results: RwLock<HashMap<String, Batch>>,
    retention: RwLock<sigma_value::lru::LruIndex<String>>,
    next_query_id: AtomicU64,
    config: RwLock<WarehouseConfig>,
    /// Total queries executed (for experiment bookkeeping).
    queries_executed: AtomicU64,
}

impl Default for Warehouse {
    fn default() -> Self {
        Warehouse::new(WarehouseConfig::default())
    }
}

impl Warehouse {
    pub fn new(config: WarehouseConfig) -> Warehouse {
        Warehouse {
            catalog: RwLock::new(Catalog::new()),
            results: RwLock::new(HashMap::new()),
            retention: RwLock::new(sigma_value::lru::LruIndex::new()),
            next_query_id: AtomicU64::new(1),
            config: RwLock::new(config),
            queries_executed: AtomicU64::new(0),
        }
    }

    /// The dialect this warehouse parses (the generic superset).
    pub fn dialect(&self) -> Dialect {
        Dialect::generic()
    }

    pub fn config(&self) -> WarehouseConfig {
        self.config.read().clone()
    }

    pub fn set_parallelism(&self, parallelism: usize) {
        self.config.write().parallelism = parallelism.max(1);
    }

    /// Set the per-operator execution memory budget (`None` = unbounded).
    /// Operators whose state would exceed it spill to disk; results stay
    /// bit-identical at any budget.
    pub fn set_memory_budget(&self, budget: Option<usize>) {
        self.config.write().memory_budget = budget;
    }

    /// The configured per-operator memory budget.
    pub fn memory_budget(&self) -> Option<usize> {
        self.config.read().memory_budget
    }

    /// Set the morsel height for pipelined execution (`None` switches to
    /// the static partition-at-a-time executor). Results are bit-identical
    /// either way.
    pub fn set_morsel_rows(&self, morsel_rows: Option<usize>) {
        let mut config = self.config.write();
        config.morsel_rows = morsel_rows.map(|m| m.max(1));
        // An explicit height (or the static executor) is a request for
        // exactly that schedule — stop deriving per-pipeline sizes.
        config.adaptive_morsels = false;
    }

    /// Re-enable (or disable) per-pipeline adaptive morsel sizing.
    pub fn set_adaptive_morsels(&self, adaptive: bool) {
        self.config.write().adaptive_morsels = adaptive;
    }

    /// The configured morsel height (`None` = static execution).
    pub fn morsel_rows(&self) -> Option<usize> {
        self.config.read().morsel_rows
    }

    pub fn set_query_overhead(&self, overhead: Duration) {
        self.config.write().query_overhead = overhead;
    }

    /// Number of queries executed since startup (experiment counters).
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed.load(Ordering::Relaxed)
    }

    /// Register a table directly from a batch (bulk load path).
    pub fn load_table(&self, name: &str, batch: Batch) -> Result<(), CdwError> {
        self.catalog
            .write()
            .create_table_from_batch(name, batch, true)
    }

    /// Register a table with an explicit partition size (tests and benches
    /// use this to exercise partition-parallel execution on small data).
    pub fn load_table_partitioned(
        &self,
        name: &str,
        batch: Batch,
        partition_rows: usize,
    ) -> Result<(), CdwError> {
        self.catalog
            .write()
            .create_table_from_batch_partitioned(name, batch, true, partition_rows)
    }

    /// Register a table from explicit partitions. Unlike
    /// [`load_table_partitioned`](Self::load_table_partitioned)'s uniform
    /// split, the caller controls each partition's size — the skew tests
    /// feed one giant partition next to empty and single-row ones to
    /// exercise the work-stealing scheduler's worst cases.
    pub fn load_table_parts(&self, name: &str, parts: Vec<Batch>) -> Result<(), CdwError> {
        self.catalog
            .write()
            .create_table_from_parts(name, parts, true)
    }

    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().table_names()
    }

    pub fn table_stats(&self, name: &str) -> Result<TableStats, CdwError> {
        self.catalog.read().stats(name)
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains(name)
    }

    /// Schema of a stored table.
    pub fn table_schema(&self, name: &str) -> Option<std::sync::Arc<sigma_value::Schema>> {
        self.catalog
            .read()
            .get(name)
            .ok()
            .map(|t| t.schema().clone())
    }

    /// Output schema of a query, derived by planning it (used by the
    /// service to type raw-SQL workbook sources without executing them).
    pub fn query_schema(&self, sql: &str) -> Result<std::sync::Arc<sigma_value::Schema>, CdwError> {
        Ok(self.plan_sql(sql)?.schema())
    }

    /// Fetch a persisted result set by query id (the query-directory
    /// cache's re-fetch path). A hit promotes the result to
    /// most-recently-used so stage results under active reuse stay
    /// addressable.
    pub fn persisted_result(&self, query_id: &str) -> Option<Batch> {
        let hit = self.results.read().get(query_id).cloned();
        if hit.is_some() {
            self.retention.write().touch(query_id);
        }
        hit
    }

    /// Whether a result set is still addressable via `RESULT_SCAN`,
    /// promoting it if so (the stage cache's liveness probe — no batch
    /// clone).
    pub fn touch_result(&self, query_id: &str) -> bool {
        if !self.results.read().contains_key(query_id) {
            return false;
        }
        self.retention.write().touch(query_id)
    }

    /// Execute one SQL statement.
    pub fn execute_sql(&self, sql: &str) -> Result<ResultSet, CdwError> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute an already parsed statement.
    pub fn execute_statement(&self, stmt: &Statement) -> Result<ResultSet, CdwError> {
        let started = Instant::now();
        let config = self.config();
        if !config.query_overhead.is_zero() {
            std::thread::sleep(config.query_overhead);
        }
        self.queries_executed.fetch_add(1, Ordering::Relaxed);
        let mut stats = ExecStats::default();
        let outcome = match stmt {
            Statement::Query(q) => {
                let batch = self.run_query(q, &mut stats)?;
                let query_id = self.persist_result(batch.clone());
                ResultSet {
                    query_id,
                    batch,
                    rows_scanned: stats.rows_scanned,
                    partitions_scanned: stats.partitions_scanned,
                    elapsed: started.elapsed(),
                    rows_affected: 0,
                    operators: std::mem::take(&mut stats.operators),
                    spilled_bytes: stats.spilled_bytes,
                    spill_rounds: stats.spill_rounds,
                }
            }
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let fields = columns
                    .iter()
                    .map(|(n, t)| sigma_value::Field::new(n.clone(), *t))
                    .collect();
                self.catalog.write().create_table(
                    &name.to_dotted(),
                    std::sync::Arc::new(sigma_value::Schema::new(fields)),
                    *if_not_exists,
                )?;
                self.empty_result(started)
            }
            Statement::CreateTableAs {
                name,
                query,
                or_replace,
            } => {
                let batch = self.run_query(query, &mut stats)?;
                let rows = batch.num_rows();
                self.catalog.write().create_table_from_batch(
                    &name.to_dotted(),
                    batch,
                    *or_replace,
                )?;
                ResultSet {
                    rows_affected: rows,
                    spilled_bytes: stats.spilled_bytes,
                    spill_rounds: stats.spill_rounds,
                    ..self.empty_result(started)
                }
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => {
                let batch = self.run_query(source, &mut stats)?;
                let rows = batch.num_rows();
                let mut catalog = self.catalog.write();
                let stored = catalog.get_mut(&table.to_dotted())?;
                let batch = align_insert(stored.schema(), columns.as_deref(), batch)?;
                stored.append(batch)?;
                ResultSet {
                    rows_affected: rows,
                    spilled_bytes: stats.spilled_bytes,
                    spill_rounds: stats.spill_rounds,
                    ..self.empty_result(started)
                }
            }
            Statement::Update {
                table,
                assignments,
                selection,
            } => {
                let rows = self.run_update(&table.to_dotted(), assignments, selection.as_ref())?;
                ResultSet {
                    rows_affected: rows,
                    ..self.empty_result(started)
                }
            }
            Statement::Delete { table, selection } => {
                let rows = self.run_delete(&table.to_dotted(), selection.as_ref())?;
                ResultSet {
                    rows_affected: rows,
                    ..self.empty_result(started)
                }
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog
                    .write()
                    .drop_table(&name.to_dotted(), *if_exists)?;
                self.empty_result(started)
            }
        };
        Ok(ResultSet {
            elapsed: started.elapsed(),
            ..outcome
        })
    }

    /// Execute a query and render the per-operator breakdown as an
    /// EXPLAIN ANALYZE-style tree (rows in/out, partitions, elapsed per
    /// operator) so time can be attributed within the plan.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, CdwError> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(CdwError::plan("EXPLAIN ANALYZE supports only queries"));
        };
        let mut stats = ExecStats::default();
        self.run_query(&q, &mut stats)?;
        Ok(stats.render())
    }

    /// Render the morsel-pipeline decomposition of a query's optimized
    /// plan (EXPLAIN PIPELINES-style) without executing it: fused
    /// Filter/Project chains, pipeline sources/sinks, and breakers.
    pub fn explain_pipelines(&self, sql: &str) -> Result<String, CdwError> {
        Ok(crate::optimizer::explain_pipelines(&self.plan_sql(sql)?))
    }

    /// Plan (without executing) — exposed for EXPLAIN-style tooling/tests.
    pub fn plan_sql(&self, sql: &str) -> Result<Plan, CdwError> {
        let stmt = parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(CdwError::plan("EXPLAIN supports only queries"));
        };
        let catalog = self.catalog.read();
        let results = self.results.read();
        let planner = Planner::new(&catalog, &results);
        let plan = planner.plan_query(&q)?;
        optimize(plan, &self.eval_ctx())
    }

    fn eval_ctx(&self) -> EvalCtx {
        EvalCtx {
            now_micros: self.config.read().now_micros,
        }
    }

    fn run_query(&self, q: &Query, stats: &mut ExecStats) -> Result<Batch, CdwError> {
        let catalog = self.catalog.read();
        let results = self.results.read();
        let planner = Planner::new(&catalog, &results);
        let plan = planner.plan_query(q)?;
        let plan = optimize(plan, &self.eval_ctx())?;
        let config = self.config.read().clone();
        let ctx = ExecCtx {
            catalog: &catalog,
            results: &results,
            eval: self.eval_ctx(),
            parallelism: config.parallelism,
            morsel_rows: config.morsel_rows,
            adaptive_morsels: config.adaptive_morsels,
            memory: crate::exec::ExecMemoryTracker::new(config.memory_budget),
            sched: crate::exec::scheduler::SchedCounters::default(),
        };
        execute(&plan, &ctx, stats)
    }

    fn run_update(
        &self,
        table: &str,
        assignments: &[(String, sigma_sql::SqlExpr)],
        selection: Option<&sigma_sql::SqlExpr>,
    ) -> Result<usize, CdwError> {
        let mut catalog = self.catalog.write();
        let results = self.results.read();
        // Resolve assignment expressions against the table schema.
        let schema = catalog.get(table)?.schema().clone();
        let full = catalog.get(table)?.to_batch();
        let planner = Planner::new(&catalog, &results);
        let scope_resolve = |e: &sigma_sql::SqlExpr| -> Result<PhysExpr, CdwError> {
            resolve_against_schema(&planner, e, &schema, table)
        };
        let ctx = self.eval_ctx();
        let mask: Vec<bool> = match selection {
            Some(sel) => {
                let pred = scope_resolve(sel)?;
                let col = eval::eval(&pred, &full, &ctx)?;
                (0..full.num_rows())
                    .map(|i| col.value(i) == Value::Bool(true))
                    .collect()
            }
            None => vec![true; full.num_rows()],
        };
        let affected = mask.iter().filter(|&&b| b).count();
        let mut new_columns = Vec::with_capacity(full.num_columns());
        for (ci, field) in schema.fields().iter().enumerate() {
            let target = assignments
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(&field.name));
            match target {
                None => new_columns.push(full.column(ci).clone()),
                Some((_, expr)) => {
                    let phys = scope_resolve(expr)?;
                    let evaluated = eval::eval(&phys, &full, &ctx)?;
                    let evaluated = evaluated.cast(field.dtype)?;
                    let mut b = sigma_value::ColumnBuilder::new(field.dtype, full.num_rows());
                    for (i, &replace) in mask.iter().enumerate().take(full.num_rows()) {
                        let v = if replace {
                            evaluated.value(i)
                        } else {
                            full.column(ci).value(i)
                        };
                        b.push(v).map_err(CdwError::from)?;
                    }
                    new_columns.push(b.finish());
                }
            }
        }
        let rebuilt = Batch::new(schema, new_columns)?;
        catalog
            .get_mut(table)?
            .replace_all(rebuilt, DEFAULT_PARTITION_ROWS);
        Ok(affected)
    }

    fn run_delete(
        &self,
        table: &str,
        selection: Option<&sigma_sql::SqlExpr>,
    ) -> Result<usize, CdwError> {
        let mut catalog = self.catalog.write();
        let results = self.results.read();
        let schema = catalog.get(table)?.schema().clone();
        let full = catalog.get(table)?.to_batch();
        let planner = Planner::new(&catalog, &results);
        let ctx = self.eval_ctx();
        let keep: Vec<bool> = match selection {
            Some(sel) => {
                let pred = resolve_against_schema(&planner, sel, &schema, table)?;
                let col = eval::eval(&pred, &full, &ctx)?;
                (0..full.num_rows())
                    .map(|i| col.value(i) != Value::Bool(true))
                    .collect()
            }
            None => vec![false; full.num_rows()],
        };
        let deleted = keep.iter().filter(|&&k| !k).count();
        let remaining = full.filter(&keep);
        catalog
            .get_mut(table)?
            .replace_all(remaining, DEFAULT_PARTITION_ROWS);
        Ok(deleted)
    }

    fn empty_result(&self, started: Instant) -> ResultSet {
        ResultSet {
            query_id: self.fresh_query_id(),
            batch: Batch::empty(std::sync::Arc::new(sigma_value::Schema::empty())),
            rows_scanned: 0,
            partitions_scanned: 0,
            elapsed: started.elapsed(),
            rows_affected: 0,
            operators: Vec::new(),
            spilled_bytes: 0,
            spill_rounds: 0,
        }
    }

    fn fresh_query_id(&self) -> String {
        format!("q-{}", self.next_query_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Install a batch as an ephemeral persisted result, addressable via
    /// `RESULT_SCAN('<id>')` exactly like an executed query's result —
    /// without executing anything. The browser tier uses this to expose
    /// locally cached stage results to residual-suffix execution. Subject
    /// to the same LRU retention as executed results; pair with
    /// [`Warehouse::evict_result`] for prompt cleanup.
    pub fn install_result(&self, batch: Batch) -> String {
        self.persist_result(batch)
    }

    /// Drop a persisted result by query id (ephemeral-table cleanup).
    /// Returns whether it was present.
    pub fn evict_result(&self, query_id: &str) -> bool {
        let mut results = self.results.write();
        let mut retention = self.retention.write();
        retention.remove(query_id);
        results.remove(query_id).is_some()
    }

    fn persist_result(&self, batch: Batch) -> String {
        let id = self.fresh_query_id();
        let max = self.config.read().max_persisted_results;
        let mut results = self.results.write();
        let mut retention = self.retention.write();
        results.insert(id.clone(), batch);
        retention.insert(id.clone());
        while results.len() > max {
            let Some(evicted) = retention.evict_oldest() else {
                break;
            };
            results.remove(&evicted);
        }
        id
    }
}

/// Resolve an expression against a single table's schema (UPDATE/DELETE).
/// Shares the single-relation resolver with the delta kernels.
fn resolve_against_schema(
    planner: &Planner<'_>,
    expr: &sigma_sql::SqlExpr,
    schema: &std::sync::Arc<sigma_value::Schema>,
    table: &str,
) -> Result<PhysExpr, CdwError> {
    let _ = planner;
    crate::delta::resolve_expr(expr, schema, table)
}

/// Align an INSERT source batch to the table schema, handling an explicit
/// column list (missing columns become NULL) and Int->Float/Date->Timestamp
/// widening.
fn align_insert(
    schema: &std::sync::Arc<sigma_value::Schema>,
    columns: Option<&[String]>,
    batch: Batch,
) -> Result<Batch, CdwError> {
    let mut out_cols = Vec::with_capacity(schema.len());
    match columns {
        None => {
            if batch.num_columns() != schema.len() {
                return Err(CdwError::exec(format!(
                    "INSERT has {} columns, table expects {}",
                    batch.num_columns(),
                    schema.len()
                )));
            }
            for (i, field) in schema.fields().iter().enumerate() {
                out_cols.push(batch.column(i).cast(field.dtype)?);
            }
        }
        Some(cols) => {
            if batch.num_columns() != cols.len() {
                return Err(CdwError::exec(format!(
                    "INSERT names {} columns but supplies {}",
                    cols.len(),
                    batch.num_columns()
                )));
            }
            for field in schema.fields() {
                let src = cols
                    .iter()
                    .position(|c| c.eq_ignore_ascii_case(&field.name));
                match src {
                    Some(i) => out_cols.push(batch.column(i).cast(field.dtype)?),
                    None => {
                        out_cols.push(sigma_value::Column::nulls(field.dtype, batch.num_rows()))
                    }
                }
            }
        }
    }
    Batch::new(schema.clone(), out_cols).map_err(CdwError::from)
}
