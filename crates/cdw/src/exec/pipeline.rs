//! Push-based morsel pipelines over the selection-vector kernels.
//!
//! A physical plan decomposes into pipelines broken only at the operators
//! that must see their whole input (sort, merging aggregate/distinct,
//! window, limit, and a join's build side — see
//! [`Plan::is_pipeline_breaker`]). Inside a pipeline, the maximal
//! Filter/Project chain ([`Plan::stream_chain`]) compiles once and runs
//! **fused per morsel**: each fixed-size slice of a source partition
//! flows through every stage while hot, filters refining a selection
//! vector over the shared partition batch without copying.
//!
//! Morsels are distributed by the LPT-seeded work-stealing scheduler
//! ([`super::scheduler`]), so one oversized partition no longer serializes
//! a query: its morsels spread across all workers.
//!
//! ## Why stealing can't change results
//!
//! Execution order is free; *merge* order is pinned. Every morsel is
//! tagged by `(partition, morsel index)` at creation, results land in
//! per-morsel slots, and outputs regroup per partition in morsel order —
//! a pure function of the input, independent of which worker ran what
//! when. Three sinks consume morsels:
//!
//! * **Collect** (generic consumers): a partition's morsel outputs merge
//!   back into one part per source partition — filter chains by
//!   concatenating the (disjoint, ascending) per-morsel selections over
//!   the original batch, projected chains by concatenating the dense
//!   morsel batches. Downstream operators therefore see the *identical
//!   partition structure* the materializing executor produces, which the
//!   two-phase aggregate merge relies on for bit-identical floats.
//! * **Fused partial aggregation**: group/argument expressions evaluate
//!   per morsel in parallel, but each partition's pre-evaluated morsels
//!   fold *sequentially in morsel order* into one group table — the same
//!   row-visit order (and therefore the same FP accumulation sequence)
//!   as one whole-partition pass. Partials still merge in
//!   partition-index order.
//! * **Join probe** (INNER/CROSS): left-partition morsels probe the
//!   shared build table independently; per-partition outputs
//!   re-concatenate in morsel order, exactly the left-row-ascending
//!   order a whole-partition probe emits. LEFT/FULL probes stay
//!   partition-granular because they append unmatched left rows per
//!   probe unit.
//!
//! Spilling operators are pipeline breakers: under a memory budget the
//! fused aggregation path regroups to partition parts and defers to the
//! budgeted (possibly out-of-core) code, byte-for-byte as before.

use super::scheduler::run_stealing;
use super::*;

/// Default morsel height. Big enough to amortize per-morsel dispatch and
/// keep the vectorized kernels in their efficient range, small enough
/// that a skewed partition splits into many stealable units (a 4 MB
/// partition of 64-bit values yields ~128 morsels).
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

fn morsel_rows(ctx: &ExecCtx) -> usize {
    ctx.morsel_rows.unwrap_or(DEFAULT_MORSEL_ROWS).max(1)
}

/// One fixed-size unit of pipeline work: a slice of one source
/// partition's surviving rows, borrowing the partition batch from the
/// coordinator (no per-morsel copy).
struct Morsel<'a> {
    batch: &'a Batch,
    rows: MorselRows<'a>,
}

enum MorselRows<'a> {
    /// Dense batch rows `start..end` (source part had no selection).
    Range(std::ops::Range<usize>),
    /// A slice of the source part's selection vector (original-batch
    /// coordinates).
    Chunk(&'a [usize]),
}

impl Morsel<'_> {
    fn len(&self) -> usize {
        match &self.rows {
            MorselRows::Range(r) => r.len(),
            MorselRows::Chunk(c) => c.len(),
        }
    }

    /// Initial selection state: `None` iff the morsel covers the whole
    /// batch densely, so single-morsel partitions take the same
    /// no-selection kernel path as the materializing executor.
    fn initial_sel(&self) -> Option<Vec<usize>> {
        match &self.rows {
            MorselRows::Range(r) if r.start == 0 && r.end == self.batch.num_rows() => None,
            MorselRows::Range(r) => Some(r.clone().collect()),
            MorselRows::Chunk(c) => Some(c.to_vec()),
        }
    }
}

/// Split source parts into morsels, partition-major. Also returns the
/// morsel count per partition for regrouping. Every partition emits at
/// least one morsel — empty partitions must stay represented so the
/// output keeps the source partition structure.
fn morselize(parts: &[Part], morsel_rows: usize) -> (Vec<Morsel<'_>>, Vec<usize>) {
    let morsel_rows = morsel_rows.max(1);
    let mut morsels = Vec::new();
    let mut counts = Vec::with_capacity(parts.len());
    for part in parts {
        let before = morsels.len();
        match part.sel() {
            Some([]) => morsels.push(Morsel {
                batch: &part.batch,
                rows: MorselRows::Chunk(&[]),
            }),
            Some(sel) => {
                for chunk in sel.chunks(morsel_rows) {
                    morsels.push(Morsel {
                        batch: &part.batch,
                        rows: MorselRows::Chunk(chunk),
                    });
                }
            }
            None => {
                let rows = part.batch.num_rows();
                let mut start = 0;
                loop {
                    let end = (start + morsel_rows).min(rows);
                    morsels.push(Morsel {
                        batch: &part.batch,
                        rows: MorselRows::Range(start..end),
                    });
                    start = end;
                    if start >= rows {
                        break;
                    }
                }
            }
        }
        counts.push(morsels.len() - before);
    }
    (morsels, counts)
}

/// One compiled streaming stage.
enum Stage {
    Filter(CompiledExpr),
    Project {
        exprs: Vec<CompiledExpr>,
        schema: Arc<Schema>,
    },
}

/// Per-stage counters, accumulated concurrently by morsel workers.
#[derive(Default)]
struct StageCounters {
    rows_out: AtomicUsize,
    eval_ns: AtomicU64,
}

/// A Filter/Project chain compiled once for fused per-morsel execution.
/// `stages` is in execution order — source side first, the reverse of
/// the top-down plan order `Plan::stream_chain` returns.
struct CompiledChain {
    stages: Vec<Stage>,
    counters: Vec<StageCounters>,
}

fn compile_chain(chain: &[&Plan]) -> Result<CompiledChain, CdwError> {
    let mut stages = Vec::with_capacity(chain.len());
    for node in chain.iter().rev() {
        stages.push(match node {
            Plan::Filter { input, predicate } => {
                Stage::Filter(CompiledExpr::compile(predicate, &input_types(input))?)
            }
            Plan::Project {
                input,
                exprs,
                schema,
            } => Stage::Project {
                exprs: exprs
                    .iter()
                    .map(|e| CompiledExpr::compile(e, &input_types(input)))
                    .collect::<Result<_, _>>()?,
                schema: schema.clone(),
            },
            other => {
                return Err(CdwError::exec(format!(
                    "not a streaming stage: {}",
                    op_label(other)
                )))
            }
        });
    }
    let counters = (0..stages.len())
        .map(|_| StageCounters::default())
        .collect();
    Ok(CompiledChain { stages, counters })
}

/// A morsel mid-pipeline: either still a selection over the source
/// partition batch (original coordinates — filters refine it without
/// copying) or an owned dense batch once a Project materialized.
enum MorselState<'a> {
    Source {
        batch: &'a Batch,
        sel: Option<Vec<usize>>,
    },
    Owned(Part),
}

impl MorselState<'_> {
    fn rows(&self) -> usize {
        match self {
            MorselState::Source { batch, sel } => sel.as_ref().map_or(batch.num_rows(), Vec::len),
            MorselState::Owned(p) => p.rows(),
        }
    }

    fn batch_and_sel(&self) -> (&Batch, Option<&[usize]>) {
        match self {
            MorselState::Source { batch, sel } => (batch, sel.as_deref()),
            MorselState::Owned(p) => (&p.batch, p.sel()),
        }
    }
}

/// Run one morsel through every stage of the chain while hot.
fn apply_stages<'a>(
    chain: &CompiledChain,
    m: &Morsel<'a>,
    ctx: &ExecCtx,
) -> Result<MorselState<'a>, CdwError> {
    let mut state = MorselState::Source {
        batch: m.batch,
        sel: m.initial_sel(),
    };
    for (stage, counters) in chain.stages.iter().zip(&chain.counters) {
        state = match stage {
            Stage::Filter(pred) => {
                let keep = {
                    let (batch, sel) = state.batch_and_sel();
                    let mask = timed(&counters.eval_ns, || pred.eval(batch, sel, &ctx.eval))?;
                    truthy_indices(&mask, sel)
                };
                counters.rows_out.fetch_add(keep.len(), Ordering::Relaxed);
                match state {
                    MorselState::Source { batch, .. } => MorselState::Source {
                        batch,
                        sel: Some(keep),
                    },
                    MorselState::Owned(p) => MorselState::Owned(Part {
                        batch: p.batch,
                        sel: Some(keep),
                    }),
                }
            }
            Stage::Project { exprs, schema } => {
                let (batch, sel) = state.batch_and_sel();
                let cols: Vec<Column> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| {
                        let col = timed(&counters.eval_ns, || e.eval(batch, sel, &ctx.eval))?;
                        coerce_column(col, f.dtype)
                    })
                    .collect::<Result<_, _>>()?;
                let out = Part::new(Batch::new(schema.clone(), cols)?);
                counters.rows_out.fetch_add(out.rows(), Ordering::Relaxed);
                MorselState::Owned(out)
            }
        };
    }
    Ok(state)
}

/// Owned per-morsel chain output (borrows on the source parts released).
enum OutData {
    /// Refined selection over the source partition batch.
    Sel(Vec<usize>),
    /// Owned dense (possibly re-filtered) batch.
    Part(Part),
}

/// Merge one partition's morsel outputs (in morsel order) back into one
/// part with the same shape the materializing executor produces:
/// filter-only chains keep the original batch plus the concatenated
/// selection, projected chains concatenate the dense morsel batches.
fn merge_partition(source: Part, mut outs: Vec<OutData>) -> Result<Part, CdwError> {
    if outs.len() == 1 {
        return Ok(match outs.pop().expect("one output") {
            OutData::Sel(sel) => Part {
                batch: source.batch,
                sel: Some(sel),
            },
            OutData::Part(p) => p,
        });
    }
    match outs.first() {
        Some(OutData::Sel(_)) | None => {
            // Morsels cover disjoint ascending row ranges, so their
            // selections concatenate into one ascending selection.
            let mut sel = Vec::new();
            for o in outs {
                match o {
                    OutData::Sel(s) => sel.extend(s),
                    OutData::Part(_) => unreachable!("chain output representation is uniform"),
                }
            }
            Ok(Part {
                batch: source.batch,
                sel: Some(sel),
            })
        }
        Some(OutData::Part(_)) => {
            let batches: Vec<Batch> = outs
                .into_iter()
                .map(|o| match o {
                    OutData::Part(p) => p.materialize(),
                    OutData::Sel(_) => unreachable!("chain output representation is uniform"),
                })
                .collect();
            let refs: Vec<&Batch> = batches.iter().collect();
            Ok(Part::new(Batch::concat(&refs)?))
        }
    }
}

/// Execute the maximal streaming chain rooted at `plan` as one fused
/// morsel pipeline, returning one part per source partition.
///
/// Called from the executor's Filter/Project arm: the caller's wrapper
/// already pushed `plan`'s own stats entry (fed through `eval_ns` /
/// `morsels_out`); entries for the deeper chain nodes are pushed here in
/// pre-order, then the source executes below them — the identical stats
/// tree the operator-at-a-time executor records.
pub(super) fn execute_chain(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Vec<Part>, CdwError> {
    let (chain, source) = plan.stream_chain();
    let inner_slots: Vec<usize> = chain[1..]
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let slot = stats.operators.len();
            stats
                .operators
                .push(OpStats::started(op_label(node), depth + 1 + i));
            slot
        })
        .collect();
    let started = Instant::now();
    let parts = execute_parts(source, ctx, stats, depth + chain.len())?;
    let nparts = parts.len();
    let compiled = compile_chain(&chain)?;

    let outs: Vec<OutData> = {
        let (morsels, counts) = morselize(&parts, morsel_rows(ctx));
        morsels_out.fetch_add(morsels.len(), Ordering::Relaxed);
        debug_assert_eq!(counts.len(), nparts);
        run_stealing(
            ctx.parallelism,
            morsels,
            |m| m.len().max(1),
            |m| apply_stages(&compiled, &m, ctx),
        )?
        .into_iter()
        .map(|state| match state {
            MorselState::Source { batch, sel } => {
                OutData::Sel(sel.unwrap_or_else(|| (0..batch.num_rows()).collect()))
            }
            MorselState::Owned(p) => OutData::Part(p),
        })
        .collect()
    };

    let (_, counts) = morselize(&parts, morsel_rows(ctx));
    let nmorsels: usize = counts.iter().sum();
    let mut out_parts = Vec::with_capacity(nparts);
    let mut it = outs.into_iter();
    for (part, count) in parts.into_iter().zip(counts) {
        let group: Vec<OutData> = it.by_ref().take(count).collect();
        out_parts.push(merge_partition(part, group)?);
    }

    // Inner chain nodes' stats. Stage `s` (execution order) is chain node
    // `k-1-s` (top-down order); the top node's counters feed the caller's
    // entry via `eval_ns`.
    let k = compiled.stages.len();
    let elapsed = started.elapsed();
    for (j, slot) in inner_slots.iter().enumerate() {
        let c = &compiled.counters[k - 2 - j];
        let op = &mut stats.operators[*slot];
        op.rows_out = c.rows_out.load(Ordering::Relaxed);
        op.partitions = nparts;
        op.elapsed = elapsed;
        op.eval_ns = c.eval_ns.load(Ordering::Relaxed);
        op.morsels = nmorsels;
    }
    eval_ns.fetch_add(
        compiled.counters[k - 1].eval_ns.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
    Ok(out_parts)
}

/// Result of the fused Partial half of a two-phase aggregate.
pub(super) struct FusedPartial {
    /// One group table per source partition (merge in index order).
    pub tables: Vec<GroupTable>,
    pub partitions: usize,
    pub morsels: usize,
}

/// Run the Partial half of a fused two-phase aggregate as a morsel
/// pipeline: the chain stages *and* the group/argument expressions — the
/// expensive vectorized work — evaluate per morsel in parallel, then each
/// partition's pre-evaluated morsels fold sequentially in morsel order
/// into one group table. The fold visits rows in exactly the order one
/// whole-partition pass would, so every FP accumulation (`AVG` partial
/// sums, Welford updates) is the same operation sequence the
/// materializing executor performs; partitions fold in parallel and merge
/// in partition-index order as before. Only reached without a memory
/// budget — budgeted aggregation regroups to partition parts and takes
/// the (possibly spilling) legacy path byte-for-byte.
pub(super) fn execute_fused_partial(
    pinput: &Plan,
    cagg: &CompiledAggExprs,
    aggs: &[AggCall],
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
    eval_ns: &AtomicU64,
) -> Result<FusedPartial, CdwError> {
    let (chain, source) = pinput.stream_chain();
    let inner_slots: Vec<usize> = chain
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let slot = stats.operators.len();
            stats
                .operators
                .push(OpStats::started(op_label(node), depth + i));
            slot
        })
        .collect();
    let started = Instant::now();
    let parts = execute_parts(source, ctx, stats, depth + chain.len())?;
    let nparts = parts.len();
    let compiled = compile_chain(&chain)?;

    /// One morsel's pre-evaluated aggregation inputs.
    struct EvaledMorsel {
        groups: Vec<Column>,
        args: Vec<Option<Column>>,
        rows: usize,
    }
    let (morsels, counts) = morselize(&parts, morsel_rows(ctx));
    let nmorsels = morsels.len();
    let evaled: Vec<EvaledMorsel> = run_stealing(
        ctx.parallelism,
        morsels,
        |m| m.len().max(1),
        |m| {
            let state = apply_stages(&compiled, &m, ctx)?;
            let rows = state.rows();
            let (batch, sel) = state.batch_and_sel();
            let (groups, args) =
                timed(eval_ns, || eval_group_arg_cols(batch, sel, cagg, &ctx.eval))?;
            Ok(EvaledMorsel { groups, args, rows })
        },
    )?;
    let chain_elapsed = started.elapsed();

    // Chain node stats (all pushed here — the Partial's own entry is the
    // caller's).
    let k = compiled.stages.len();
    for (j, slot) in inner_slots.iter().enumerate() {
        let c = &compiled.counters[k - 1 - j];
        let op = &mut stats.operators[*slot];
        op.rows_out = c.rows_out.load(Ordering::Relaxed);
        op.partitions = nparts;
        op.elapsed = chain_elapsed;
        op.eval_ns = c.eval_ns.load(Ordering::Relaxed);
        op.morsels = nmorsels;
    }

    // Sequential per-partition fold in morsel order, partitions in
    // parallel.
    let mut grouped: Vec<Vec<EvaledMorsel>> = Vec::with_capacity(nparts);
    let mut it = evaled.into_iter();
    for count in counts {
        grouped.push(it.by_ref().take(count).collect());
    }
    let global = cagg.groups.is_empty();
    let tables: Vec<GroupTable> = run_stealing(
        ctx.parallelism,
        grouped,
        |ms| ms.iter().map(|m| m.rows).sum::<usize>().max(1),
        |ms| {
            let mut table = GroupTable::new();
            let mut firsts = Vec::new();
            let mut base = 0usize;
            for m in ms {
                accumulate_into(
                    &mut table,
                    &mut firsts,
                    base,
                    &m.groups,
                    &m.args,
                    aggs,
                    m.rows,
                    global,
                );
                base += m.rows;
            }
            Ok(table)
        },
    )?;
    Ok(FusedPartial {
        tables,
        partitions: nparts,
        morsels: nmorsels,
    })
}

/// Morselized probe for INNER/CROSS hash joins: each left partition
/// splits into dense row-range morsels probed independently (stealing
/// absorbs a skewed build of probe work), and per-partition outputs
/// re-concatenate in morsel order — exactly the left-row-ascending order
/// a whole-partition probe emits, so downstream operators see the same
/// one-output-part-per-left-partition structure. LEFT/FULL probes stay
/// partition-granular in the caller: they append unmatched left rows
/// after each probe unit's matches, an order morsel splitting would
/// change.
#[allow(clippy::too_many_arguments)]
pub(super) fn morsel_probe(
    lparts: &[Batch],
    right: &Batch,
    build: &JoinBuild,
    kind: JoinKind,
    left_keys: &[CompiledExpr],
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &ExecCtx,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Vec<(Batch, Vec<usize>)>, CdwError> {
    let mrows = morsel_rows(ctx);
    struct ProbeMorsel<'a> {
        batch: &'a Batch,
        /// `None` = probe the whole partition batch (no slice copy).
        range: Option<std::ops::Range<usize>>,
    }
    let mut morsels = Vec::new();
    let mut counts = Vec::with_capacity(lparts.len());
    for lb in lparts {
        let before = morsels.len();
        let rows = lb.num_rows();
        if rows <= mrows {
            morsels.push(ProbeMorsel {
                batch: lb,
                range: None,
            });
        } else {
            let mut start = 0;
            while start < rows {
                let end = (start + mrows).min(rows);
                morsels.push(ProbeMorsel {
                    batch: lb,
                    range: Some(start..end),
                });
                start = end;
            }
        }
        counts.push(morsels.len() - before);
    }
    morsels_out.fetch_add(morsels.len(), Ordering::Relaxed);

    let probes = run_stealing(
        ctx.parallelism,
        morsels,
        |m| {
            m.range
                .as_ref()
                .map_or(m.batch.num_rows(), |r| r.len())
                .max(1)
        },
        |m| {
            let sliced;
            let lb = match &m.range {
                Some(r) => {
                    sliced = m.batch.slice(r.start, r.len());
                    &sliced
                }
                None => m.batch,
            };
            probe_partition(
                lb, right, build, kind, left_keys, residual, schema, &ctx.eval, eval_ns,
            )
        },
    )?;

    let mut out = Vec::with_capacity(lparts.len());
    let mut it = probes.into_iter();
    for count in counts {
        let mut group: Vec<(Batch, Vec<usize>)> = it.by_ref().take(count).collect();
        if group.len() == 1 {
            out.push(group.pop().expect("one probe output"));
        } else {
            let mut matched = Vec::new();
            let batches: Vec<Batch> = group
                .into_iter()
                .map(|(b, m)| {
                    matched.extend(m);
                    b
                })
                .collect();
            let refs: Vec<&Batch> = batches.iter().collect();
            out.push((Batch::concat(&refs)?, matched));
        }
    }
    Ok(out)
}
