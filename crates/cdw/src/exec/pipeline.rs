//! Push-based morsel pipelines over the selection-vector kernels.
//!
//! A physical plan decomposes into pipelines broken only at the operators
//! that must see their whole input (sort, merging aggregate/distinct,
//! window, limit, and a join's build side — see
//! [`Plan::is_pipeline_breaker`]). Inside a pipeline, the maximal
//! Filter/Project chain ([`Plan::stream_chain`]) compiles once and runs
//! **fused per morsel**: each fixed-size slice of a source partition
//! flows through every stage while hot, filters refining a selection
//! vector over the shared partition batch without copying.
//!
//! Morsels are distributed by the LPT-seeded work-stealing scheduler
//! ([`super::scheduler`]), so one oversized partition no longer serializes
//! a query: its morsels spread across all workers.
//!
//! ## Why stealing can't change results
//!
//! Execution order is free; *merge* order is pinned. Every morsel is
//! tagged by `(partition, morsel index)` at creation, results land in
//! per-morsel slots, and outputs regroup per partition in morsel order —
//! a pure function of the input, independent of which worker ran what
//! when. Three sinks consume morsels:
//!
//! * **Collect** (generic consumers): a partition's morsel outputs merge
//!   back into one part per source partition — filter chains by
//!   concatenating the (disjoint, ascending) per-morsel selections over
//!   the original batch, projected chains by concatenating the dense
//!   morsel batches. Downstream operators therefore see the *identical
//!   partition structure* the materializing executor produces, which the
//!   two-phase aggregate merge relies on for bit-identical floats.
//! * **Fused partial aggregation**: group/argument expressions evaluate
//!   per morsel in parallel, but each partition's pre-evaluated morsels
//!   fold *sequentially in morsel order* into one group table — the same
//!   row-visit order (and therefore the same FP accumulation sequence)
//!   as one whole-partition pass. Partials still merge in
//!   partition-index order.
//! * **Join probe** (every kind): left-partition morsels probe the
//!   shared build table independently; per-partition outputs
//!   re-concatenate in morsel order, exactly the left-row-ascending
//!   order a whole-partition probe emits. LEFT/FULL morsels keep their
//!   null-extended unmatched tails separate so the regroup emits all of
//!   a partition's matches first, then its tails, both in morsel order
//!   (see [`morsel_probe`]).
//!
//! Sort and window morselize through [`morsel_sort`] and
//! [`crate::window::compute_window_morsel`]: per-morsel key/expression
//! evaluation in parallel, then stable k-way merges / partition-parallel
//! compute pinned to the static path's `(keys, row id)` total order.
//!
//! Under a memory budget the sinks spill **per pipeline** instead of
//! regrouping to partition-granular operators: budgeted aggregation
//! routes and spills bucket records per morsel
//! ([`morsel_spilled_aggregate`]), budgeted sorts generate their
//! budget-derived runs on parallel workers, and the Grace join's key
//! evaluation and bucket passes distribute via the same scheduler — all
//! bit-identical to the static out-of-core code.

use super::scheduler::run_stealing;
use super::*;

/// Default morsel height. Big enough to amortize per-morsel dispatch and
/// keep the vectorized kernels in their efficient range, small enough
/// that a skewed partition splits into many stealable units (a 4 MB
/// partition of 64-bit values yields ~128 morsels).
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Floor for adaptively derived morsel heights: below this the
/// per-morsel dispatch and selection bookkeeping dominate the kernel
/// work.
pub const MIN_MORSEL_ROWS: usize = 256;
/// Ceiling for adaptively derived morsel heights: above this a skewed
/// partition yields too few stealable units to balance.
pub const MAX_MORSEL_ROWS: usize = 64 * 1024;
/// Bytes one adaptive morsel should cover — roughly cache-resident for
/// a handful of columns, amortizing dispatch without evicting the
/// working set between fused stages.
pub const MORSEL_TARGET_BYTES: usize = 256 * 1024;

/// Fixed morsel height from the context (the `morsel_rows = Some(n)`
/// oracle-sweep setting, or the default).
fn fixed_morsel_rows(ctx: &ExecCtx) -> usize {
    ctx.morsel_rows.unwrap_or(DEFAULT_MORSEL_ROWS).max(1)
}

/// Derive a morsel height for one pipeline from its input shape: small
/// enough that [`MORSEL_TARGET_BYTES`] of input fit in one morsel *and*
/// that the largest partition splits into at least four stealable units
/// per worker (so one oversized partition cannot serialize the tail of
/// a query), clamped to `[MIN_MORSEL_ROWS, MAX_MORSEL_ROWS]`. Purely a
/// scheduling choice: every sink merges per-morsel outputs in morsel
/// order, so results are bit-identical at any height (the equivalence
/// oracles sweep explicit sizes to prove it).
pub(crate) fn adaptive_morsel_rows(
    parallelism: usize,
    total_rows: usize,
    total_bytes: usize,
    largest_rows: usize,
) -> usize {
    let bytes_per_row = (total_bytes / total_rows.max(1)).max(1);
    let by_bytes = (MORSEL_TARGET_BYTES / bytes_per_row).max(1);
    let by_split = largest_rows.div_ceil(4 * parallelism.max(1)).max(1);
    by_bytes
        .min(by_split)
        .clamp(MIN_MORSEL_ROWS, MAX_MORSEL_ROWS)
}

/// Morsel height for a pipeline whose source is `parts` (surviving rows
/// and byte estimates per partition).
fn morsel_rows_for_parts(ctx: &ExecCtx, parts: &[Part]) -> usize {
    if !ctx.adaptive_morsels {
        return fixed_morsel_rows(ctx);
    }
    let total_rows: usize = parts.iter().map(Part::rows).sum();
    let total_bytes: usize = parts.iter().map(Part::est_bytes).sum();
    let largest = parts.iter().map(Part::rows).max().unwrap_or(0);
    adaptive_morsel_rows(ctx.parallelism, total_rows, total_bytes, largest)
}

/// Morsel height for a pipeline over whole-batch partitions (probe
/// sides, sort/window inputs).
pub(crate) fn morsel_rows_for_batches<'a>(
    ctx: &ExecCtx,
    batches: impl IntoIterator<Item = &'a Batch>,
) -> usize {
    if !ctx.adaptive_morsels {
        return fixed_morsel_rows(ctx);
    }
    let (mut rows, mut bytes, mut largest) = (0usize, 0usize, 0usize);
    for b in batches {
        let r = b.num_rows();
        rows += r;
        bytes += b.byte_size();
        largest = largest.max(r);
    }
    adaptive_morsel_rows(ctx.parallelism, rows, bytes, largest)
}

/// Per-item cost for LPT seeding: `rows`' share of an input of
/// `total_bytes` over `total_rows`. Sorted runs, window partitions, and
/// probe morsels seed with real byte estimates — not bare row counts —
/// so one giant item can't land last on an already-loaded worker.
pub(crate) fn byte_cost(rows: usize, total_bytes: usize, total_rows: usize) -> usize {
    rows.saturating_mul((total_bytes / total_rows.max(1)).max(1))
        .max(1)
}

/// Split `0..rows` into ranges of at most `chunk` rows (at least one
/// range, even for zero rows).
fn range_chunks(rows: usize, chunk: usize) -> Vec<std::ops::Range<usize>> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(rows.div_ceil(chunk).max(1));
    let mut start = 0;
    loop {
        let end = (start + chunk).min(rows);
        out.push(start..end);
        start = end;
        if start >= rows {
            break;
        }
    }
    out
}

/// One fixed-size unit of pipeline work: a slice of one source
/// partition's surviving rows, borrowing the partition batch from the
/// coordinator (no per-morsel copy).
struct Morsel<'a> {
    batch: &'a Batch,
    rows: MorselRows<'a>,
}

enum MorselRows<'a> {
    /// Dense batch rows `start..end` (source part had no selection).
    Range(std::ops::Range<usize>),
    /// A slice of the source part's selection vector (original-batch
    /// coordinates).
    Chunk(&'a [usize]),
}

impl Morsel<'_> {
    fn len(&self) -> usize {
        match &self.rows {
            MorselRows::Range(r) => r.len(),
            MorselRows::Chunk(c) => c.len(),
        }
    }

    /// Initial selection state: `None` iff the morsel covers the whole
    /// batch densely, so single-morsel partitions take the same
    /// no-selection kernel path as the materializing executor.
    fn initial_sel(&self) -> Option<Vec<usize>> {
        match &self.rows {
            MorselRows::Range(r) if r.start == 0 && r.end == self.batch.num_rows() => None,
            MorselRows::Range(r) => Some(r.clone().collect()),
            MorselRows::Chunk(c) => Some(c.to_vec()),
        }
    }
}

/// Split source parts into morsels, partition-major. Also returns the
/// morsel count per partition for regrouping. Every partition emits at
/// least one morsel — empty partitions must stay represented so the
/// output keeps the source partition structure.
fn morselize(parts: &[Part], morsel_rows: usize) -> (Vec<Morsel<'_>>, Vec<usize>) {
    let morsel_rows = morsel_rows.max(1);
    let mut morsels = Vec::new();
    let mut counts = Vec::with_capacity(parts.len());
    for part in parts {
        let before = morsels.len();
        match part.sel() {
            Some([]) => morsels.push(Morsel {
                batch: &part.batch,
                rows: MorselRows::Chunk(&[]),
            }),
            Some(sel) => {
                for chunk in sel.chunks(morsel_rows) {
                    morsels.push(Morsel {
                        batch: &part.batch,
                        rows: MorselRows::Chunk(chunk),
                    });
                }
            }
            None => {
                let rows = part.batch.num_rows();
                let mut start = 0;
                loop {
                    let end = (start + morsel_rows).min(rows);
                    morsels.push(Morsel {
                        batch: &part.batch,
                        rows: MorselRows::Range(start..end),
                    });
                    start = end;
                    if start >= rows {
                        break;
                    }
                }
            }
        }
        counts.push(morsels.len() - before);
    }
    (morsels, counts)
}

/// One compiled streaming stage.
enum Stage {
    Filter(CompiledExpr),
    Project {
        exprs: Vec<CompiledExpr>,
        schema: Arc<Schema>,
    },
}

/// Per-stage counters, accumulated concurrently by morsel workers.
#[derive(Default)]
struct StageCounters {
    rows_out: AtomicUsize,
    eval_ns: AtomicU64,
}

/// A Filter/Project chain compiled once for fused per-morsel execution.
/// `stages` is in execution order — source side first, the reverse of
/// the top-down plan order `Plan::stream_chain` returns.
struct CompiledChain {
    stages: Vec<Stage>,
    counters: Vec<StageCounters>,
}

fn compile_chain(chain: &[&Plan]) -> Result<CompiledChain, CdwError> {
    let mut stages = Vec::with_capacity(chain.len());
    for node in chain.iter().rev() {
        stages.push(match node {
            Plan::Filter { input, predicate } => {
                Stage::Filter(CompiledExpr::compile(predicate, &input_types(input))?)
            }
            Plan::Project {
                input,
                exprs,
                schema,
            } => Stage::Project {
                exprs: exprs
                    .iter()
                    .map(|e| CompiledExpr::compile(e, &input_types(input)))
                    .collect::<Result<_, _>>()?,
                schema: schema.clone(),
            },
            other => {
                return Err(CdwError::exec(format!(
                    "not a streaming stage: {}",
                    op_label(other)
                )))
            }
        });
    }
    let counters = (0..stages.len())
        .map(|_| StageCounters::default())
        .collect();
    Ok(CompiledChain { stages, counters })
}

/// A morsel mid-pipeline: either still a selection over the source
/// partition batch (original coordinates — filters refine it without
/// copying) or an owned dense batch once a Project materialized.
enum MorselState<'a> {
    Source {
        batch: &'a Batch,
        sel: Option<Vec<usize>>,
    },
    Owned(Part),
}

impl MorselState<'_> {
    fn rows(&self) -> usize {
        match self {
            MorselState::Source { batch, sel } => sel.as_ref().map_or(batch.num_rows(), Vec::len),
            MorselState::Owned(p) => p.rows(),
        }
    }

    fn batch_and_sel(&self) -> (&Batch, Option<&[usize]>) {
        match self {
            MorselState::Source { batch, sel } => (batch, sel.as_deref()),
            MorselState::Owned(p) => (&p.batch, p.sel()),
        }
    }
}

/// Run one morsel through every stage of the chain while hot.
fn apply_stages<'a>(
    chain: &CompiledChain,
    m: &Morsel<'a>,
    ctx: &ExecCtx,
) -> Result<MorselState<'a>, CdwError> {
    let mut state = MorselState::Source {
        batch: m.batch,
        sel: m.initial_sel(),
    };
    for (stage, counters) in chain.stages.iter().zip(&chain.counters) {
        state = match stage {
            Stage::Filter(pred) => {
                let keep = {
                    let (batch, sel) = state.batch_and_sel();
                    let mask = timed(&counters.eval_ns, || pred.eval(batch, sel, &ctx.eval))?;
                    truthy_indices(&mask, sel)
                };
                counters.rows_out.fetch_add(keep.len(), Ordering::Relaxed);
                match state {
                    MorselState::Source { batch, .. } => MorselState::Source {
                        batch,
                        sel: Some(keep),
                    },
                    MorselState::Owned(p) => MorselState::Owned(Part {
                        batch: p.batch,
                        sel: Some(keep),
                    }),
                }
            }
            Stage::Project { exprs, schema } => {
                let (batch, sel) = state.batch_and_sel();
                let cols: Vec<Column> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| {
                        let col = timed(&counters.eval_ns, || e.eval(batch, sel, &ctx.eval))?;
                        coerce_column(col, f.dtype)
                    })
                    .collect::<Result<_, _>>()?;
                let out = Part::new(Batch::new(schema.clone(), cols)?);
                counters.rows_out.fetch_add(out.rows(), Ordering::Relaxed);
                MorselState::Owned(out)
            }
        };
    }
    Ok(state)
}

/// Owned per-morsel chain output (borrows on the source parts released).
enum OutData {
    /// Refined selection over the source partition batch.
    Sel(Vec<usize>),
    /// Owned dense (possibly re-filtered) batch.
    Part(Part),
}

/// Merge one partition's morsel outputs (in morsel order) back into one
/// part with the same shape the materializing executor produces:
/// filter-only chains keep the original batch plus the concatenated
/// selection, projected chains concatenate the dense morsel batches.
fn merge_partition(source: Part, mut outs: Vec<OutData>) -> Result<Part, CdwError> {
    if outs.len() == 1 {
        return Ok(match outs.pop().expect("one output") {
            OutData::Sel(sel) => Part {
                batch: source.batch,
                sel: Some(sel),
            },
            OutData::Part(p) => p,
        });
    }
    match outs.first() {
        Some(OutData::Sel(_)) | None => {
            // Morsels cover disjoint ascending row ranges, so their
            // selections concatenate into one ascending selection.
            let mut sel = Vec::new();
            for o in outs {
                match o {
                    OutData::Sel(s) => sel.extend(s),
                    OutData::Part(_) => unreachable!("chain output representation is uniform"),
                }
            }
            Ok(Part {
                batch: source.batch,
                sel: Some(sel),
            })
        }
        Some(OutData::Part(_)) => {
            let batches: Vec<Batch> = outs
                .into_iter()
                .map(|o| match o {
                    OutData::Part(p) => p.materialize(),
                    OutData::Sel(_) => unreachable!("chain output representation is uniform"),
                })
                .collect();
            let refs: Vec<&Batch> = batches.iter().collect();
            Ok(Part::new(Batch::concat(&refs)?))
        }
    }
}

/// Execute the maximal streaming chain rooted at `plan` as one fused
/// morsel pipeline, returning one part per source partition.
///
/// Called from the executor's Filter/Project arm: the caller's wrapper
/// already pushed `plan`'s own stats entry (fed through `eval_ns` /
/// `morsels_out`); entries for the deeper chain nodes are pushed here in
/// pre-order, then the source executes below them — the identical stats
/// tree the operator-at-a-time executor records.
pub(super) fn execute_chain(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Vec<Part>, CdwError> {
    let (chain, source) = plan.stream_chain();
    let inner_slots: Vec<usize> = chain[1..]
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let slot = stats.operators.len();
            stats
                .operators
                .push(OpStats::started(op_label(node), depth + 1 + i));
            slot
        })
        .collect();
    let started = Instant::now();
    let parts = execute_parts(source, ctx, stats, depth + chain.len())?;
    let nparts = parts.len();
    let compiled = compile_chain(&chain)?;

    let outs: Vec<OutData> = {
        let (morsels, counts) = morselize(&parts, morsel_rows_for_parts(ctx, &parts));
        morsels_out.fetch_add(morsels.len(), Ordering::Relaxed);
        debug_assert_eq!(counts.len(), nparts);
        run_stealing(
            ctx.parallelism,
            morsels,
            |m| m.len().max(1),
            |m| apply_stages(&compiled, &m, ctx),
            &ctx.sched,
        )?
        .into_iter()
        .map(|state| match state {
            MorselState::Source { batch, sel } => {
                OutData::Sel(sel.unwrap_or_else(|| (0..batch.num_rows()).collect()))
            }
            MorselState::Owned(p) => OutData::Part(p),
        })
        .collect()
    };

    let (_, counts) = morselize(&parts, morsel_rows_for_parts(ctx, &parts));
    let nmorsels: usize = counts.iter().sum();
    let mut out_parts = Vec::with_capacity(nparts);
    let mut it = outs.into_iter();
    for (part, count) in parts.into_iter().zip(counts) {
        let group: Vec<OutData> = it.by_ref().take(count).collect();
        out_parts.push(merge_partition(part, group)?);
    }

    // Inner chain nodes' stats. Stage `s` (execution order) is chain node
    // `k-1-s` (top-down order); the top node's counters feed the caller's
    // entry via `eval_ns`.
    let k = compiled.stages.len();
    let elapsed = started.elapsed();
    for (j, slot) in inner_slots.iter().enumerate() {
        let c = &compiled.counters[k - 2 - j];
        let op = &mut stats.operators[*slot];
        op.rows_out = c.rows_out.load(Ordering::Relaxed);
        op.partitions = nparts;
        op.elapsed = elapsed;
        op.eval_ns = c.eval_ns.load(Ordering::Relaxed);
        op.morsels = nmorsels;
    }
    eval_ns.fetch_add(
        compiled.counters[k - 1].eval_ns.load(Ordering::Relaxed),
        Ordering::Relaxed,
    );
    Ok(out_parts)
}

/// Result of the fused Partial half of a two-phase aggregate.
pub(super) struct FusedPartial {
    /// One group table per source partition (merge in index order).
    pub tables: Vec<GroupTable>,
    pub partitions: usize,
    pub morsels: usize,
}

/// Run the Partial half of a fused two-phase aggregate as a morsel
/// pipeline: the chain stages *and* the group/argument expressions — the
/// expensive vectorized work — evaluate per morsel in parallel, then each
/// partition's pre-evaluated morsels fold sequentially in morsel order
/// into one group table. The fold visits rows in exactly the order one
/// whole-partition pass would, so every FP accumulation (`AVG` partial
/// sums, Welford updates) is the same operation sequence the
/// materializing executor performs; partitions fold in parallel and merge
/// in partition-index order as before. Only reached without a memory
/// budget — budgeted aggregation regroups to partition parts and takes
/// the (possibly spilling) legacy path byte-for-byte.
pub(super) fn execute_fused_partial(
    pinput: &Plan,
    cagg: &CompiledAggExprs,
    aggs: &[AggCall],
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
    eval_ns: &AtomicU64,
) -> Result<FusedPartial, CdwError> {
    let (chain, source) = pinput.stream_chain();
    let inner_slots: Vec<usize> = chain
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let slot = stats.operators.len();
            stats
                .operators
                .push(OpStats::started(op_label(node), depth + i));
            slot
        })
        .collect();
    let started = Instant::now();
    let parts = execute_parts(source, ctx, stats, depth + chain.len())?;
    let nparts = parts.len();
    let compiled = compile_chain(&chain)?;

    /// One morsel's pre-evaluated aggregation inputs.
    struct EvaledMorsel {
        groups: Vec<Column>,
        args: Vec<Option<Column>>,
        rows: usize,
    }
    let (morsels, counts) = morselize(&parts, morsel_rows_for_parts(ctx, &parts));
    let nmorsels = morsels.len();
    let evaled: Vec<EvaledMorsel> = run_stealing(
        ctx.parallelism,
        morsels,
        |m| m.len().max(1),
        |m| {
            let state = apply_stages(&compiled, &m, ctx)?;
            let rows = state.rows();
            let (batch, sel) = state.batch_and_sel();
            let (groups, args) =
                timed(eval_ns, || eval_group_arg_cols(batch, sel, cagg, &ctx.eval))?;
            Ok(EvaledMorsel { groups, args, rows })
        },
        &ctx.sched,
    )?;
    let chain_elapsed = started.elapsed();

    // Chain node stats (all pushed here — the Partial's own entry is the
    // caller's).
    let k = compiled.stages.len();
    for (j, slot) in inner_slots.iter().enumerate() {
        let c = &compiled.counters[k - 1 - j];
        let op = &mut stats.operators[*slot];
        op.rows_out = c.rows_out.load(Ordering::Relaxed);
        op.partitions = nparts;
        op.elapsed = chain_elapsed;
        op.eval_ns = c.eval_ns.load(Ordering::Relaxed);
        op.morsels = nmorsels;
    }

    // Sequential per-partition fold in morsel order, partitions in
    // parallel.
    let mut grouped: Vec<Vec<EvaledMorsel>> = Vec::with_capacity(nparts);
    let mut it = evaled.into_iter();
    for count in counts {
        grouped.push(it.by_ref().take(count).collect());
    }
    let global = cagg.groups.is_empty();
    let tables: Vec<GroupTable> = run_stealing(
        ctx.parallelism,
        grouped,
        |ms| ms.iter().map(|m| m.rows).sum::<usize>().max(1),
        |ms| {
            let mut table = GroupTable::new();
            let mut firsts = Vec::new();
            let mut base = 0usize;
            for m in ms {
                accumulate_into(
                    &mut table,
                    &mut firsts,
                    base,
                    &m.groups,
                    &m.args,
                    aggs,
                    m.rows,
                    global,
                );
                base += m.rows;
            }
            Ok(table)
        },
        &ctx.sched,
    )?;
    Ok(FusedPartial {
        tables,
        partitions: nparts,
        morsels: nmorsels,
    })
}

/// Morselized probe for hash joins of every kind: each left partition
/// splits into dense row-range morsels probed independently (stealing
/// absorbs a skewed build of probe work), and per-partition outputs
/// re-concatenate in morsel order — exactly the left-row-ascending order
/// a whole-partition probe emits, so downstream operators see the same
/// one-output-part-per-left-partition structure.
///
/// LEFT/FULL: a whole-partition probe emits all matches (ascending left
/// row) then the partition's null-extended unmatched lefts (ascending).
/// Each morsel therefore keeps its unmatched tail **separate** from its
/// matches ([`probe_morsel_split`]); regrouping concatenates every
/// morsel's matches first, then every morsel's tail, both in morsel
/// order — reproducing the whole-partition order exactly. FULL's
/// matched-right sets union across a partition's morsels, so the
/// caller's unmatched-right sweep sees the same flags as the static
/// path.
#[allow(clippy::too_many_arguments)]
pub(super) fn morsel_probe(
    lparts: &[Batch],
    right: &Batch,
    build: &JoinBuild,
    kind: JoinKind,
    left_keys: &[CompiledExpr],
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &ExecCtx,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Vec<(Batch, Vec<usize>)>, CdwError> {
    let mrows = morsel_rows_for_batches(ctx, lparts);
    struct ProbeMorsel<'a> {
        batch: &'a Batch,
        /// `None` = probe the whole partition batch (no slice copy).
        range: Option<std::ops::Range<usize>>,
    }
    let mut morsels = Vec::new();
    let mut counts = Vec::with_capacity(lparts.len());
    for lb in lparts {
        let before = morsels.len();
        let rows = lb.num_rows();
        if rows <= mrows {
            morsels.push(ProbeMorsel {
                batch: lb,
                range: None,
            });
        } else {
            let mut start = 0;
            while start < rows {
                let end = (start + mrows).min(rows);
                morsels.push(ProbeMorsel {
                    batch: lb,
                    range: Some(start..end),
                });
                start = end;
            }
        }
        counts.push(morsels.len() - before);
    }
    morsels_out.fetch_add(morsels.len(), Ordering::Relaxed);

    let probes = run_stealing(
        ctx.parallelism,
        morsels,
        // Byte-seeded LPT: probe work scales with the morsel's share of
        // its partition's bytes, not just its row count.
        |m| {
            let rows = m.batch.num_rows();
            let len = m.range.as_ref().map_or(rows, |r| r.len());
            byte_cost(len, m.batch.byte_size(), rows)
        },
        |m| {
            let sliced;
            let lb = match &m.range {
                Some(r) => {
                    sliced = m.batch.slice(r.start, r.len());
                    &sliced
                }
                None => m.batch,
            };
            // Morsel-local row offset: right-row indices are global, but
            // unmatched-left indices are slice-local and never escape
            // (the tail batch is assembled inside the split).
            probe_morsel_split(
                lb, right, build, kind, left_keys, residual, schema, &ctx.eval, eval_ns,
            )
        },
        &ctx.sched,
    )?;

    let mut out = Vec::with_capacity(lparts.len());
    let mut it = probes.into_iter();
    for count in counts {
        let group: Vec<(Batch, Option<Batch>, Vec<usize>)> = it.by_ref().take(count).collect();
        let mut matched = Vec::new();
        let mut batches: Vec<Batch> = Vec::with_capacity(group.len());
        let mut tails: Vec<Batch> = Vec::new();
        for (b, tail, m) in group {
            matched.extend(m);
            batches.push(b);
            if let Some(t) = tail {
                tails.push(t);
            }
        }
        // Whole-partition order: all matches (morsel order), then all
        // null-extended unmatched-left tails (morsel order).
        batches.extend(tails);
        let refs: Vec<&Batch> = batches.iter().collect();
        out.push((Batch::concat(&refs)?, matched));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// morselized spilling aggregation
// ---------------------------------------------------------------------

/// Memory-budgeted aggregation consuming morsels directly: the spilling
/// sink of a budgeted pipeline. Phase 1 — the hot phase — runs per morsel
/// on the work-stealing scheduler: each morsel evaluates its group and
/// argument expressions, routes its rows to buckets by group-key hash,
/// and builds its per-bucket spill records (tagged with the
/// partition-relative row id and the partition index); only the file
/// appends run sequentially, in `(partition, morsel)` order. Phase 2
/// aggregates buckets in parallel like the static [`spilled_aggregate`]:
/// inside a bucket, each partition's records fold **in morsel order into
/// one continuing group table** — the identical row-visit (and FP
/// accumulation) sequence the static path's one-record-per-partition
/// layout produces — then partition tables merge in partition order and
/// buckets interleave back into first-seen order by each group's first
/// `(partition, row)`.
///
/// Spilled byte/record totals differ from the static layout (records are
/// per morsel and carry a `__part` column); group values and output order
/// are bit-identical, which is what `spill_oracle` pins.
#[allow(clippy::too_many_arguments)]
pub(super) fn morsel_spilled_aggregate(
    parts: &[Part],
    cagg: &CompiledAggExprs,
    aggs: &[AggCall],
    schema: &Arc<Schema>,
    ctx: &ExecCtx,
    estimate: usize,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<(Batch, usize), CdwError> {
    let nbuckets = ctx.memory.bucket_count(estimate);
    ctx.memory.record_rounds(nbuckets);
    let gw = cagg.groups.len();
    // Spill-record column layout: group cols, present agg args, row id,
    // partition id.
    let mut arg_slots: Vec<Option<usize>> = Vec::with_capacity(aggs.len());
    let mut next_slot = gw;
    for a in aggs {
        if a.arg.is_some() {
            arg_slots.push(Some(next_slot));
            next_slot += 1;
        } else {
            arg_slots.push(None);
        }
    }
    let row_slot = next_slot;
    let part_slot = row_slot + 1;

    // Tag every morsel with its partition index and its dense row offset
    // within that partition's surviving rows (the coordinates the static
    // path's `__row` column uses).
    let (morsels, counts) = morselize(parts, morsel_rows_for_parts(ctx, parts));
    morsels_out.fetch_add(morsels.len(), Ordering::Relaxed);
    let mut meta: Vec<(usize, usize)> = Vec::with_capacity(morsels.len());
    {
        let mut mi = 0;
        for (p, &count) in counts.iter().enumerate() {
            let mut base = 0usize;
            for _ in 0..count {
                meta.push((p, base));
                base += morsels[mi].len();
                mi += 1;
            }
        }
    }
    let items: Vec<(Morsel<'_>, (usize, usize))> = morsels.into_iter().zip(meta).collect();

    // Phase 1 (parallel per morsel): evaluate, route, build records.
    let routed: Vec<Vec<Option<Batch>>> = run_stealing(
        ctx.parallelism,
        items,
        |(m, _)| byte_cost(m.len(), m.batch.byte_size(), m.batch.num_rows()),
        |(m, (pidx, base))| {
            let sel = m.initial_sel();
            let (group_cols, arg_cols) = timed(eval_ns, || {
                eval_group_arg_cols(m.batch, sel.as_deref(), cagg, &ctx.eval)
            })?;
            let mut fields: Vec<Field> = group_cols
                .iter()
                .enumerate()
                .map(|(i, c)| Field::new(format!("g{i}"), c.dtype()))
                .collect();
            let mut spill_cols: Vec<Column> = group_cols.clone();
            for (j, c) in arg_cols.iter().enumerate() {
                if let Some(c) = c {
                    fields.push(Field::new(format!("a{j}"), c.dtype()));
                    spill_cols.push(c.clone());
                }
            }
            fields.push(Field::new("__row", DataType::Int));
            fields.push(Field::new("__part", DataType::Int));
            let spill_schema = Arc::new(Schema::new(fields));

            let refs: Vec<&Column> = group_cols.iter().collect();
            let mut route: Vec<Vec<usize>> = vec![Vec::new(); nbuckets];
            let mut key = Vec::new();
            for row in 0..m.len() {
                key.clear();
                hash::encode_key(&refs, row, &mut key);
                route[key_bucket(&key, nbuckets)].push(row);
            }
            let mut per_bucket: Vec<Option<Batch>> = Vec::with_capacity(nbuckets);
            for rows in &route {
                if rows.is_empty() {
                    per_bucket.push(None);
                    continue;
                }
                let mut cols: Vec<Column> = spill_cols.iter().map(|c| c.take(rows)).collect();
                cols.push(Column::from_ints(
                    rows.iter().map(|&r| (base + r) as i64).collect(),
                ));
                cols.push(Column::from_ints(vec![pidx as i64; rows.len()]));
                per_bucket.push(Some(Batch::new(spill_schema.clone(), cols)?));
            }
            Ok(per_bucket)
        },
        &ctx.sched,
    )?;

    // Sequential appends in (partition, morsel) order, so each bucket
    // file's per-partition record subsequence stays in morsel order.
    let mut writers: Vec<SpillWriter> = (0..nbuckets)
        .map(|_| SpillWriter::create())
        .collect::<Result<_, _>>()?;
    for per_bucket in routed {
        for (b, rec) in per_bucket.into_iter().enumerate() {
            if let Some(rec) = rec {
                let bytes = writers[b].append(&rec)?;
                ctx.memory.record_spill(bytes);
            }
        }
    }
    let handles: Vec<SpillHandle> = writers
        .into_iter()
        .map(SpillWriter::finish)
        .collect::<Result<_, _>>()?;

    // Phase 2 (parallel across buckets): fold each partition's records in
    // morsel order into one continuing table, then merge partitions in
    // partition order — the static path's exact arithmetic structure.
    type BucketGroups = (Vec<(u64, i64, GroupEntry)>, usize);
    let arg_slots = &arg_slots;
    let nparts = parts.len();
    let per_bucket: Vec<BucketGroups> = par_map(
        ctx,
        handles,
        |h| h.bytes() as usize,
        |handle| {
            // Per partition: continuing table, firsts (in concatenated
            // record coordinates), and the concatenated `__row` ids that
            // map those coordinates back to partition rows.
            let mut ptables: Vec<(GroupTable, Vec<usize>, Vec<i64>)> = (0..nparts)
                .map(|_| (GroupTable::new(), Vec::new(), Vec::new()))
                .collect();
            for rec in handle.read_all()? {
                let p = rec.column(part_slot).ints().expect("__part column")[0] as usize;
                let group_cols = rec.columns()[..gw].to_vec();
                let arg_cols: Vec<Option<Column>> = arg_slots
                    .iter()
                    .map(|s| s.map(|i| rec.column(i).clone()))
                    .collect();
                let (table, firsts, row_ids) = &mut ptables[p];
                accumulate_into(
                    table,
                    firsts,
                    row_ids.len(),
                    &group_cols,
                    &arg_cols,
                    aggs,
                    rec.num_rows(),
                    false,
                );
                row_ids.extend(rec.column(row_slot).ints().expect("row-id column"));
            }
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            let mut acc: Vec<(u64, i64, GroupEntry)> = Vec::new();
            let mut partial_rows = 0usize;
            for (p, (table, firsts, row_ids)) in ptables.into_iter().enumerate() {
                partial_rows += table.entries.len();
                for (i, entry) in table.entries.into_iter().enumerate() {
                    match index.get(&entry.key) {
                        Some(&j) => {
                            for (d, s) in acc[j].2.states.iter_mut().zip(entry.states) {
                                d.merge(s);
                            }
                        }
                        None => {
                            index.insert(entry.key.clone(), acc.len());
                            acc.push((p as u64, row_ids[firsts[i]], entry));
                        }
                    }
                }
            }
            Ok((acc, partial_rows))
        },
    )?;

    // Interleave buckets back into global first-seen order.
    let partial_rows = per_bucket.iter().map(|(_, n)| n).sum();
    let mut flat: Vec<(u64, i64, GroupEntry)> =
        per_bucket.into_iter().flat_map(|(acc, _)| acc).collect();
    flat.sort_by_key(|&(p, r, _)| (p, r));
    let entries: Vec<GroupEntry> = flat.into_iter().map(|(_, _, e)| e).collect();
    let batch = finish_groups(
        GroupTable {
            index: HashMap::new(),
            entries,
        },
        schema,
    )?;
    Ok((batch, partial_rows))
}

// ---------------------------------------------------------------------
// morselized sort
// ---------------------------------------------------------------------

/// Evaluate `compiled` expressions over `batch` per morsel in parallel
/// and concatenate to whole-batch columns — identical to one whole-batch
/// evaluation pass (the kernels are elementwise). The shared first phase
/// of the morselized sort and the Grace join's probe-side key spill.
pub(crate) fn morsel_eval_columns(
    batch: &Batch,
    compiled: &[CompiledExpr],
    ctx: &ExecCtx,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Vec<Column>, CdwError> {
    let rows = batch.num_rows();
    let chunks = range_chunks(rows, morsel_rows_for_batches(ctx, std::iter::once(batch)));
    morsels_out.fetch_add(chunks.len(), Ordering::Relaxed);
    let total_bytes = batch.byte_size();
    let per_chunk: Vec<Vec<Column>> = run_stealing(
        ctx.parallelism,
        chunks,
        |r| byte_cost(r.len(), total_bytes, rows),
        |r| {
            let sel: Option<Vec<usize>> = if r.start == 0 && r.end == rows {
                None
            } else {
                Some(r.collect())
            };
            timed(eval_ns, || {
                compiled
                    .iter()
                    .map(|k| k.eval(batch, sel.as_deref(), &ctx.eval))
                    .collect::<Result<Vec<_>, _>>()
            })
        },
        &ctx.sched,
    )?;
    if per_chunk.len() == 1 {
        return Ok(per_chunk.into_iter().next().expect("one chunk"));
    }
    (0..compiled.len())
        .map(|k| {
            let refs: Vec<&Column> = per_chunk.iter().map(|c| &c[k]).collect();
            Column::concat(&refs).map_err(CdwError::from)
        })
        .collect()
}

/// Morsel-driven sort over the concatenated input. Run generation — the
/// hot phase — spreads across workers:
///
/// * **Key evaluation** happens per morsel in parallel; the per-morsel
///   key columns concatenate to the same whole-input columns (and the
///   same spill estimate) one whole-batch evaluation produces, since the
///   kernels are elementwise.
/// * **In memory**: each morsel-sized run sorts stably in parallel, then
///   a k-way heap merge by `(keys, row id)` — a *unique* total order, so
///   the merged permutation equals what `sort::sort_indices` (stable,
///   ties keep ascending row id) produces over the whole input.
/// * **Budgeted**: run boundaries come from `run_count` exactly as in the
///   static [`spilled_sort`] — *not* from the morsel height, so the
///   spilled run/page layout is byte-identical — but the runs sort and
///   spill in parallel, then the shared [`merge_spilled_runs`] cursor
///   merge finishes the job.
pub(super) fn morsel_sort(
    batch: &Batch,
    compiled_keys: &[CompiledExpr],
    sort_keys: &[sort::SortKey],
    ctx: &ExecCtx,
    eval_ns: &AtomicU64,
    morsels_out: &AtomicUsize,
) -> Result<Batch, CdwError> {
    let rows = batch.num_rows();
    // Parallel per-morsel key evaluation.
    let key_cols = morsel_eval_columns(batch, compiled_keys, ctx, eval_ns, morsels_out)?;
    let est = key_cols.iter().map(Column::byte_size).sum::<usize>() + 8 * rows;
    let refs: Vec<&Column> = key_cols.iter().collect();

    if ctx.memory.should_spill(est) {
        // Budget-derived runs, identical boundaries and page layout to
        // the static spilled sort; each run sorts and spills itself on a
        // worker.
        let nruns = ctx.memory.run_count(est, rows);
        let run_len = rows.div_ceil(nruns);
        let page_rows = run_len.div_ceil(4).max(1);
        let mut fields: Vec<Field> = key_cols
            .iter()
            .enumerate()
            .map(|(i, c)| Field::new(format!("k{i}"), c.dtype()))
            .collect();
        fields.push(Field::new("__row", DataType::Int));
        let spill_schema = Arc::new(Schema::new(fields));

        let handles: Vec<SpillHandle> = run_stealing(
            ctx.parallelism,
            range_chunks(rows, run_len),
            |r| byte_cost(r.len(), est, rows),
            |r| {
                let mut idx: Vec<usize> = r.collect();
                // Stable within the run; runs are disjoint ascending
                // ranges.
                sort::sort_subset(&refs, sort_keys, &mut idx);
                let mut writer = SpillWriter::create()?;
                for chunk in idx.chunks(page_rows) {
                    let mut cols: Vec<Column> = key_cols.iter().map(|c| c.take(chunk)).collect();
                    cols.push(Column::from_ints(chunk.iter().map(|&r| r as i64).collect()));
                    let bytes = writer.append(&Batch::new(spill_schema.clone(), cols)?)?;
                    ctx.memory.record_spill(bytes);
                }
                ctx.memory.record_rounds(1);
                writer.finish()
            },
            &ctx.sched,
        )?;
        let merged = merge_spilled_runs(&handles, key_cols.len(), sort_keys, rows)?;
        return Ok(batch.take(&merged));
    }

    // In-memory: sort each morsel-run in parallel, then heap-merge.
    let runs: Vec<Vec<usize>> = run_stealing(
        ctx.parallelism,
        range_chunks(rows, morsel_rows_for_batches(ctx, std::iter::once(batch))),
        |r| byte_cost(r.len(), est, rows),
        |r| {
            let mut idx: Vec<usize> = r.collect();
            sort::sort_subset(&refs, sort_keys, &mut idx);
            Ok(idx)
        },
        &ctx.sched,
    )?;
    let merged = kway_merge_runs(&runs, &refs, sort_keys, rows);
    Ok(batch.take(&merged))
}

/// Merge disjoint sorted runs of row indices into one permutation with a
/// binary min-heap keyed by `(sort keys, row id)`. Row ids are distinct,
/// so the comparator is a unique total order and the result equals the
/// stable whole-input sort's permutation no matter how the input was cut
/// into runs.
fn kway_merge_runs(
    runs: &[Vec<usize>],
    key_refs: &[&Column],
    sort_keys: &[sort::SortKey],
    rows: usize,
) -> Vec<usize> {
    let less = |a: usize, b: usize| -> bool {
        match sort::compare_rows(key_refs, sort_keys, a, b) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        }
    };
    // Heap entries are (current row, run index), ordered by row.
    fn sift_down(heap: &mut [(usize, usize)], mut i: usize, less: &impl Fn(usize, usize) -> bool) {
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut m = i;
            if l < heap.len() && less(heap[l].0, heap[m].0) {
                m = l;
            }
            if r < heap.len() && less(heap[r].0, heap[m].0) {
                m = r;
            }
            if m == i {
                return;
            }
            heap.swap(i, m);
            i = m;
        }
    }
    let mut pos = vec![0usize; runs.len()];
    let mut heap: Vec<(usize, usize)> = runs
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.is_empty())
        .map(|(i, r)| (r[0], i))
        .collect();
    for i in (0..heap.len() / 2).rev() {
        sift_down(&mut heap, i, &less);
    }
    let mut merged = Vec::with_capacity(rows);
    while let Some(&(row, run)) = heap.first() {
        merged.push(row);
        pos[run] += 1;
        if pos[run] < runs[run].len() {
            heap[0] = (runs[run][pos[run]], run);
        } else {
            let last = heap.len() - 1;
            heap.swap(0, last);
            heap.pop();
        }
        sift_down(&mut heap, 0, &less);
    }
    debug_assert_eq!(merged.len(), rows);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adaptive sizing derives from input shape: wide rows shrink the
    /// morsel toward the byte target, a dominant partition shrinks it so
    /// every worker sees at least four stealable units of it, and the
    /// result always lands inside the `[MIN, MAX]` clamp.
    #[test]
    fn adaptive_morsel_rows_tracks_input_shape() {
        // 8-byte rows, 1M rows in one partition, 4 workers: the byte
        // target (256 KiB / 8 B = 32K rows) beats the split bound
        // (1M / 16 = 64K rows).
        assert_eq!(adaptive_morsel_rows(4, 1 << 20, 8 << 20, 1 << 20), 32_768);
        // Narrow 1-byte rows push the byte bound past MAX — the clamp
        // wins.
        assert_eq!(
            adaptive_morsel_rows(1, 1 << 20, 1 << 20, 1 << 20),
            MAX_MORSEL_ROWS
        );
        // 1 KiB rows: the byte target caps at 256 rows (== MIN clamp).
        assert_eq!(
            adaptive_morsel_rows(4, 100_000, 100_000 * 1024, 100_000),
            MIN_MORSEL_ROWS
        );
        // 16-byte rows, largest partition 40_000 rows, 4 workers: the
        // split bound 40_000 / 16 = 2_500 beats the 16K byte bound.
        assert_eq!(adaptive_morsel_rows(4, 100_000, 1_600_000, 40_000), 2_500);
        // Tiny inputs clamp up to MIN (one morsel per partition).
        assert_eq!(adaptive_morsel_rows(4, 10, 80, 10), MIN_MORSEL_ROWS);
        // Degenerate zero-row / zero-byte inputs never panic and stay
        // within the clamp.
        let z = adaptive_morsel_rows(1, 0, 0, 0);
        assert!((MIN_MORSEL_ROWS..=MAX_MORSEL_ROWS).contains(&z));
    }

    /// The scheduler cost-seeding satellite: a run covering most of the
    /// input must cost proportionally more than a 1-row tail, and costs
    /// never degenerate to zero.
    #[test]
    fn byte_cost_scales_with_row_share() {
        let total_bytes = 1 << 20;
        let total_rows = 1000;
        let big = byte_cost(900, total_bytes, total_rows);
        let tail = byte_cost(1, total_bytes, total_rows);
        assert!(big >= 900 * tail, "{big} vs {tail}");
        assert!(byte_cost(0, 0, 0) >= 1);
        assert!(byte_cost(5, 0, 1000) >= 1);
    }

    #[test]
    fn range_chunks_cover_everything_once() {
        for (rows, chunk) in [(0usize, 3usize), (1, 3), (3, 3), (10, 3), (10, 4096)] {
            let chunks = range_chunks(rows, chunk);
            assert!(!chunks.is_empty());
            let mut next = 0;
            for r in &chunks {
                assert_eq!(r.start, next);
                assert!(r.end <= rows || rows == 0);
                next = r.end;
            }
            assert_eq!(next, rows);
        }
    }

    /// The k-way heap merge must equal the stable whole-input sort for
    /// arbitrary run boundaries, including duplicate keys (row-id
    /// tiebreak) and empty runs.
    #[test]
    fn kway_merge_equals_stable_sort() {
        let keys = Column::from_ints(vec![3, 1, 3, 2, 1, 3, 2, 1, 0, 3]);
        let refs = vec![&keys];
        let sort_keys = vec![sort::SortKey {
            descending: false,
            nulls_last: false,
        }];
        let expected = sort::sort_indices(&refs, &sort_keys);
        for cuts in [vec![0usize, 10], vec![0, 3, 10], vec![0, 3, 3, 7, 10]] {
            let mut runs: Vec<Vec<usize>> = Vec::new();
            for w in cuts.windows(2) {
                let mut idx: Vec<usize> = (w[0]..w[1]).collect();
                sort::sort_subset(&refs, &sort_keys, &mut idx);
                runs.push(idx);
            }
            assert_eq!(kway_merge_runs(&runs, &refs, &sort_keys, 10), expected);
        }
    }
}
