//! Work distribution for partition- and morsel-parallel stages.
//!
//! Three layers:
//!
//! * [`lpt_assign`] — longest-processing-time seeding: items sorted by
//!   descending cost estimate, each placed on the least-loaded worker.
//!   This replaces the old static `i % threads` round-robin, which skewed
//!   badly on heterogeneous costs (one oversized Grace-join bucket or
//!   storage partition stalled the whole query behind a single thread).
//!   LPT guarantees no worker is assigned more than `mean + max_item`
//!   cost; when no single item dominates (`max_item <= mean`), that is at
//!   most **2x the mean** — the bound `lpt_no_thread_exceeds_twice_mean`
//!   pins.
//! * [`run_stealing`] — LPT only seeds the deques; while running, a
//!   participant that drains its own queue **steals**: first from the
//!   tail of a small ring neighbourhood of its own queue (HyPer-style
//!   locality — a thief keeps returning to the same victims, so the
//!   cache lines it pulls stay warm), then from the globally longest
//!   queue. Cost estimates are proxies (byte sizes, row counts), so
//!   stealing absorbs what the estimate missed.
//! * The **persistent worker pool** — one process-wide set of long-lived
//!   workers shared by every operator, pipeline, and concurrent server
//!   session. `run_stealing` no longer spawns threads: the submitting
//!   thread participates inline (so progress never depends on pool
//!   capacity, and nested calls are trivially deadlock-free) while idle
//!   pool workers unpark and claim the remaining virtual worker slots.
//!   The pool's size is the process's one execution budget
//!   ([`set_worker_pool_target`]); admission control and per-query
//!   `parallelism` both resolve against it via [`effective_workers`], so
//!   N concurrent sessions × per-operator calls can never oversubscribe
//!   the host the way per-call scoped spawns did. Workers park on a
//!   condvar when the job board is empty and are spawned lazily, so a
//!   release build runs no execution threads at all until the first
//!   parallel query — and a fixed number ever after.
//!
//! Determinism: results are written to per-item slots and returned in
//! input order, so *which* participant ran an item — and in what order —
//! can never change the output. Errors are reported first-by-input-index,
//! independent of completion order. A panicking task poisons the job
//! (every unclaimed item's state drops, releasing spill files) and
//! surfaces as one executor error. When the pool budget caps a call to a
//! single participant, it runs inline on the submitter — morsel sinks use
//! [`effective_workers`] to fall back to the bit-identical static path
//! instead of paying scheduling overhead no hardware will repay.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::error::CdwError;

/// Assign `costs.len()` items to `bins` workers by longest-processing-time:
/// process items in descending cost order (input index breaks ties, so the
/// assignment is deterministic), always placing on the least-loaded bin.
/// Returns per-bin item-index lists; within a bin, indices are ordered by
/// descending cost — the order the worker should process them so the
/// largest items start earliest.
pub(crate) fn lpt_assign(costs: &[usize], bins: usize) -> Vec<Vec<usize>> {
    let bins = bins.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut assignment: Vec<Vec<usize>> = (0..bins).map(|_| Vec::new()).collect();
    let mut loads: Vec<usize> = vec![0; bins];
    for i in order {
        let b = (0..bins).min_by_key(|&b| (loads[b], b)).expect("bins >= 1");
        loads[b] += costs[i];
        assignment[b].push(i);
    }
    assignment
}

/// Per-query scheduler counters (atomics so every participant can record
/// without synchronization). Folded into
/// [`ExecStats`](crate::exec::ExecStats) when a query completes and
/// rendered by `explain_analyze` as `scheduler: tasks=.. local=..
/// steals=.. unparks=..`.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Items executed (serial fallbacks included).
    pub tasks: AtomicUsize,
    /// Items a participant popped from its own seeded deque.
    pub local: AtomicUsize,
    /// Items taken from another participant's deque.
    pub steals: AtomicUsize,
    /// Parked pool workers woken for this query's jobs.
    pub unparks: AtomicUsize,
}

impl SchedCounters {
    pub fn tasks(&self) -> usize {
        self.tasks.load(Ordering::Relaxed)
    }
    pub fn local(&self) -> usize {
        self.local.load(Ordering::Relaxed)
    }
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }
    pub fn unparks(&self) -> usize {
        self.unparks.load(Ordering::Relaxed)
    }
}

/// Ring neighbours a thief probes before falling back to the globally
/// longest queue. Small on purpose: repeated steals from the same victims
/// keep the thief's working set (the victim's deque + the batches it
/// references) warm, which is the HyPer steal-locality observation.
const STEAL_NEIGHBORHOOD: usize = 2;

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here when the job board is empty.
    work: Condvar,
    /// The execution budget: at most this many participants (submitter
    /// included) run any single job, and at most this many pool workers
    /// stay alive.
    target: AtomicUsize,
    /// Lifetime park events (worker went idle), for observability.
    parks: AtomicUsize,
}

struct PoolState {
    /// Open jobs, submission order. Retired entries are pruned on scan.
    jobs: Vec<Arc<JobEntry>>,
    /// Pool workers alive (parked or running).
    live: usize,
    /// Pool workers currently parked on `work`.
    idle: usize,
    /// Monotonic id source for worker thread names.
    next_worker: usize,
}

/// A submitted job on the board. `task` is a lifetime-erased pointer into
/// the submitter's stack frame; the retire protocol (remove from board →
/// wait for `active == 0`) guarantees no worker touches it after
/// `run_stealing` returns.
struct JobEntry {
    task: ErasedJob,
    /// Virtual worker slots (deques) this job was seeded with.
    max: usize,
    /// Next virtual slot to hand to a pool worker (slot 0 is the
    /// submitter's). Only mutated under the pool state lock.
    tickets: AtomicUsize,
    retired: AtomicBool,
    /// Pool workers currently inside `task.run`.
    active: Mutex<usize>,
    exited: Condvar,
}

struct ErasedJob(*const (dyn RunJob + 'static));
// SAFETY: the pointee is a `Job` (Sync: slots/results/deques are mutexes,
// `f` is Sync) and the retire protocol bounds every dereference within the
// submitting call's lifetime.
unsafe impl Send for ErasedJob {}
unsafe impl Sync for ErasedJob {}

trait RunJob: Sync {
    fn run(&self, vslot: usize);
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: Vec::new(),
            live: 0,
            idle: 0,
            next_worker: 0,
        }),
        work: Condvar::new(),
        target: AtomicUsize::new(default_target()),
        parks: AtomicUsize::new(0),
    })
}

/// Default execution budget: the hardware's, overridable via
/// `SIGMA_WORKERS` (benches and CI use it to pin pool sizes).
fn default_target() -> usize {
    if let Ok(v) = std::env::var("SIGMA_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Set the process-wide execution budget (clamped to >= 1). Shrinking
/// takes effect as running workers return to the board; growing spawns
/// lazily on demand.
pub fn set_worker_pool_target(threads: usize) {
    let pool = pool();
    pool.target.store(threads.max(1), Ordering::SeqCst);
    let _st = pool.state.lock().expect("pool state");
    pool.work.notify_all();
}

/// Raise the execution budget to at least `threads` (never lowers it) —
/// what tests use so concurrent test threads cannot race each other's
/// budgets downward.
pub fn grow_worker_pool_target(threads: usize) {
    pool().target.fetch_max(threads.max(1), Ordering::SeqCst);
}

/// The current process-wide execution budget.
pub fn worker_pool_target() -> usize {
    pool().target.load(Ordering::SeqCst).max(1)
}

/// Observability snapshot of the shared pool.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPoolStats {
    /// Configured budget (max participants per job, max live workers).
    pub target: usize,
    /// Pool workers alive (parked or running).
    pub live: usize,
    /// Pool workers currently parked.
    pub idle: usize,
    /// Lifetime park events.
    pub parks: usize,
}

pub fn worker_pool_stats() -> WorkerPoolStats {
    let pool = pool();
    let st = pool.state.lock().expect("pool state");
    WorkerPoolStats {
        target: pool.target.load(Ordering::SeqCst),
        live: st.live,
        idle: st.idle,
        parks: pool.parks.load(Ordering::Relaxed),
    }
}

/// How many participants a stage asking for `requested` threads actually
/// gets: the request clamped to the pool budget. `1` means "run inline,
/// don't schedule" — morsel sinks use that to pick the bit-identical
/// static path when parallel scheduling cannot pay for itself.
pub(crate) fn effective_workers(requested: usize) -> usize {
    requested.min(worker_pool_target()).max(1)
}

fn worker_main() {
    let pool = pool();
    loop {
        let (entry, vslot) = {
            let mut st = pool.state.lock().expect("pool state");
            loop {
                if st.live > pool.target.load(Ordering::SeqCst) {
                    st.live -= 1;
                    return;
                }
                if let Some(claim) = claim_job(&mut st) {
                    break claim;
                }
                st.idle += 1;
                pool.parks.fetch_add(1, Ordering::Relaxed);
                st = pool.work.wait(st).expect("pool state");
                st.idle -= 1;
            }
        };
        // SAFETY: `active` was incremented under the state lock before the
        // submitter could retire the entry, so the pointee is alive until
        // we decrement it below.
        unsafe { (*entry.task.0).run(vslot) };
        let mut active = entry.active.lock().expect("job active");
        *active -= 1;
        if *active == 0 {
            entry.exited.notify_all();
        }
    }
}

/// Under the pool state lock: find the oldest job with an unclaimed
/// virtual slot, claim one ticket, and mark this worker active on it.
fn claim_job(st: &mut PoolState) -> Option<(Arc<JobEntry>, usize)> {
    st.jobs
        .retain(|e| !e.retired.load(Ordering::SeqCst) && e.tickets.load(Ordering::SeqCst) < e.max);
    for entry in &st.jobs {
        let ticket = entry.tickets.load(Ordering::SeqCst);
        if ticket >= entry.max {
            continue;
        }
        entry.tickets.store(ticket + 1, Ordering::SeqCst);
        *entry.active.lock().expect("job active") += 1;
        return Some((entry.clone(), ticket));
    }
    None
}

/// Post a job and recruit up to `extra` pool workers: wake parked ones
/// first, then spawn (lazily, never past the budget). The submitter is
/// about to participate inline, so a recruit shortfall only costs
/// parallelism, never progress.
fn submit(entry: Arc<JobEntry>, extra: usize, counters: &SchedCounters) {
    let pool = pool();
    let mut st = pool.state.lock().expect("pool state");
    st.jobs.push(entry);
    let wake = extra.min(st.idle);
    for _ in 0..wake {
        pool.work.notify_one();
    }
    counters.unparks.fetch_add(wake, Ordering::Relaxed);
    let target = pool.target.load(Ordering::SeqCst);
    let spawn = extra
        .saturating_sub(wake)
        .min(target.saturating_sub(st.live));
    for _ in 0..spawn {
        let name = format!("cdw-worker-{}", st.next_worker);
        st.next_worker += 1;
        match std::thread::Builder::new().name(name).spawn(worker_main) {
            Ok(_) => st.live += 1,
            Err(_) => break,
        }
    }
}

/// Remove a job from the board and wait until no pool worker is inside
/// its task — after this the submitter may safely drop the job.
fn retire(entry: &Arc<JobEntry>) {
    let pool = pool();
    {
        let mut st = pool.state.lock().expect("pool state");
        entry.retired.store(true, Ordering::SeqCst);
        st.jobs.retain(|e| !Arc::ptr_eq(e, entry));
    }
    let mut active = entry.active.lock().expect("job active");
    while *active > 0 {
        active = entry.exited.wait(active).expect("job active");
    }
}

// ---------------------------------------------------------------------------
// One job: LPT-seeded virtual deques + locality-aware stealing.
// ---------------------------------------------------------------------------

struct Job<'a, I, T, F> {
    /// Items move into per-slot cells so any participant can claim any
    /// index; the slot is the single claim point.
    slots: Vec<Mutex<Option<I>>>,
    /// Results land in per-slot cells so completion order is irrelevant.
    results: Vec<Mutex<Option<Result<T, CdwError>>>>,
    deques: Vec<Mutex<VecDeque<usize>>>,
    poisoned: AtomicBool,
    f: &'a F,
    counters: &'a SchedCounters,
}

impl<I, T, F> Job<'_, I, T, F>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, CdwError> + Sync,
{
    fn work(&self, vslot: usize) {
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                return;
            }
            let Some(idx) = self.next_index(vslot) else {
                return;
            };
            // A stolen index may race with its owner between `len`
            // reads; the slot is the single claim point.
            let Some(item) = self.slots[idx].lock().expect("slot lock").take() else {
                continue;
            };
            match catch_unwind(AssertUnwindSafe(|| (self.f)(item))) {
                Ok(res) => {
                    *self.results[idx].lock().expect("result lock") = Some(res);
                    self.counters.tasks.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.poisoned.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    /// Own queue front first (largest remaining seed), then steal from
    /// the tails of a small ring neighbourhood, then from the globally
    /// longest queue.
    fn next_index(&self, vslot: usize) -> Option<usize> {
        let v = self.deques.len();
        if let Some(i) = self.deques[vslot].lock().expect("deque lock").pop_front() {
            self.counters.local.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
        for step in 1..=STEAL_NEIGHBORHOOD.min(v.saturating_sub(1)) {
            let nb = (vslot + step) % v;
            if let Some(i) = self.deques[nb].lock().expect("deque lock").pop_back() {
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
        let victim = (0..v)
            .filter(|&w| w != vslot)
            .max_by_key(|&w| (self.deques[w].lock().expect("deque lock").len(), w));
        if let Some(i) = victim.and_then(|w| self.deques[w].lock().expect("deque lock").pop_back())
        {
            self.counters.steals.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
        None
    }
}

impl<I, T, F> RunJob for Job<'_, I, T, F>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, CdwError> + Sync,
{
    fn run(&self, vslot: usize) {
        self.work(vslot);
    }
}

/// Run `f` over every item with LPT-seeded deques and locality-aware work
/// stealing on the persistent pool (the submitter participates inline).
/// Results come back in **input order** regardless of which participant
/// ran what; on failure the error of the smallest-index failing item is
/// returned (matching serial semantics). When the pool budget or the item
/// count caps the call to one participant, it runs serial inline.
pub(crate) fn run_stealing<I, T, F>(
    threads: usize,
    items: Vec<I>,
    cost: impl Fn(&I) -> usize,
    f: F,
    counters: &SchedCounters,
) -> Result<Vec<T>, CdwError>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, CdwError> + Sync,
{
    let n = items.len();
    let workers = effective_workers(threads).min(n.max(1));
    if workers <= 1 || n <= 1 {
        counters.tasks.fetch_add(n, Ordering::Relaxed);
        counters.local.fetch_add(n, Ordering::Relaxed);
        return items.into_iter().map(f).collect();
    }
    let costs: Vec<usize> = items.iter().map(&cost).collect();

    let job = Job {
        slots: items.into_iter().map(|i| Mutex::new(Some(i))).collect(),
        results: (0..n).map(|_| Mutex::new(None)).collect(),
        deques: lpt_assign(&costs, workers)
            .into_iter()
            .map(|idx| Mutex::new(idx.into()))
            .collect(),
        poisoned: AtomicBool::new(false),
        f: &f,
        counters,
    };
    let erased: *const (dyn RunJob + '_) = &job;
    let entry = Arc::new(JobEntry {
        // SAFETY: lifetime erasure only; `retire` below waits for every
        // worker to leave `run` before `job` drops.
        task: ErasedJob(unsafe {
            std::mem::transmute::<*const (dyn RunJob + '_), *const (dyn RunJob + 'static)>(erased)
        }),
        max: workers,
        tickets: AtomicUsize::new(1),
        retired: AtomicBool::new(false),
        active: Mutex::new(0),
        exited: Condvar::new(),
    });
    submit(entry.clone(), workers - 1, counters);
    job.work(0);
    retire(&entry);

    if job.poisoned.load(Ordering::SeqCst) {
        return Err(CdwError::exec("parallel worker panicked"));
    }
    // Iterating slots in index order makes the first error seen the
    // smallest-index error, no matter which participant hit it first.
    let mut out = Vec::with_capacity(n);
    for cell in job.results {
        match cell.into_inner().expect("result lock").expect("slot ran") {
            Ok(v) => out.push(v),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    /// The satellite regression: with heterogeneous costs where no single
    /// item dominates (max <= mean), LPT must leave every worker at or
    /// under 2x the mean load. The old round-robin fails this on the
    /// alternating-cost pattern (all the big items landed on one thread).
    #[test]
    fn lpt_no_thread_exceeds_twice_mean() {
        // Every big item lands on index 0 mod 4: round-robin at 4 threads
        // piles all of them onto thread 0.
        let adversarial: Vec<usize> = (0..16)
            .map(|i| if i % 4 == 0 { 10_000 } else { 1 })
            .collect();
        let cases: Vec<(Vec<usize>, usize)> = vec![
            (adversarial.clone(), 4),
            // Descending sizes (sorted storage partitions).
            ((1..=9).rev().map(|i| i * 1024).collect(), 4),
            // One partition per thread plus a tail of small ones.
            (vec![5000, 5000, 5000, 5000, 100, 90, 80, 70, 60, 50], 4),
            // Uniform costs degrade to round-robin.
            (vec![256; 16], 4),
        ];
        for (costs, threads) in cases {
            let total: usize = costs.iter().sum();
            let mean = total / threads;
            let max_item = *costs.iter().max().unwrap();
            assert!(max_item <= mean, "case must not be dominated by one item");
            let assignment = lpt_assign(&costs, threads);
            for (b, idx) in assignment.iter().enumerate() {
                let load: usize = idx.iter().map(|&i| costs[i]).sum();
                assert!(
                    load <= 2 * mean,
                    "thread {b} got {load} bytes, mean {mean} ({costs:?})"
                );
            }
        }
        // Round-robin on the adversarial case really is worse — document
        // the bug being fixed.
        let mean: usize = adversarial.iter().sum::<usize>() / 4;
        let rr_load: usize = adversarial.iter().step_by(4).sum();
        assert!(rr_load > 2 * mean, "round-robin baseline should skew");
    }

    /// Every index appears exactly once across bins, in descending-cost
    /// order within each bin.
    #[test]
    fn lpt_assignment_is_a_partition_of_items() {
        let costs = vec![7, 3, 9, 1, 4, 4, 2, 8];
        let assignment = lpt_assign(&costs, 3);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
        for bin in &assignment {
            for pair in bin.windows(2) {
                assert!(costs[pair[0]] >= costs[pair[1]], "bin order: {bin:?}");
            }
        }
    }

    #[test]
    fn stealing_preserves_input_order_and_first_error() {
        grow_worker_pool_target(4);
        let c = SchedCounters::default();
        let out = run_stealing(4, (0..32).collect(), |_| 1, |i| Ok(i * 10), &c).unwrap();
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<i32>>());
        assert_eq!(c.tasks(), 32);
        assert_eq!(c.local() + c.steals(), 32);

        let err = run_stealing(
            4,
            (0..32).collect::<Vec<i32>>(),
            |_| 1,
            |i| {
                if i % 7 == 3 {
                    Err(CdwError::exec(format!("boom {i}")))
                } else {
                    Ok(i)
                }
            },
            &SchedCounters::default(),
        )
        .unwrap_err();
        // Smallest failing index is 3 regardless of completion order.
        assert!(err.to_string().contains("boom 3"), "{err}");
    }

    #[test]
    fn worker_panic_is_one_exec_error() {
        grow_worker_pool_target(2);
        let err = run_stealing(
            2,
            vec![0usize, 1, 2, 3],
            |_| 1,
            |i| {
                if i == 2 {
                    panic!("injected");
                }
                Ok(i)
            },
            &SchedCounters::default(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("parallel worker panicked"),
            "{err}"
        );
    }

    /// Stealing rebalances: participants that finish their seed keep
    /// pulling from busier queues, so a many-morsel queue finishes even
    /// when the seed was maximally skewed (all items on one worker's
    /// deque is impossible under LPT, so skew the costs instead).
    #[test]
    fn stealing_drains_a_skewed_queue() {
        grow_worker_pool_target(4);
        let done = AtomicUsize::new(0);
        let out = run_stealing(
            4,
            (0..64usize).collect(),
            // One "huge" item; everything else tiny.
            |&i| if i == 0 { 1 << 20 } else { 1 },
            |i| {
                done.fetch_add(1, Ordering::SeqCst);
                Ok(i)
            },
            &SchedCounters::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 64);
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    /// With plentiful slow work, more than one thread participates — the
    /// submitter plus at least one persistent pool worker. The tasks hold
    /// a latch open until a second thread arrives (bounded by a deadline
    /// so a genuinely broken scheduler fails instead of hanging).
    #[test]
    fn multiple_workers_participate() {
        grow_worker_pool_target(4);
        let seen = Mutex::new(HashSet::new());
        run_stealing(
            4,
            (0..8usize).collect(),
            |_| 1,
            |i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                let deadline = Instant::now() + Duration::from_secs(5);
                while seen.lock().unwrap().len() < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                Ok(i)
            },
            &SchedCounters::default(),
        )
        .unwrap();
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected at least two participants"
        );
    }

    /// The pool is persistent: two successive parallel calls reuse the
    /// same worker threads instead of spawning fresh ones, and the pool
    /// never exceeds its budget.
    #[test]
    fn pool_workers_are_reused_across_calls() {
        grow_worker_pool_target(2);
        let worker_ids = |n: usize| {
            let seen = Mutex::new(HashSet::new());
            run_stealing(
                2,
                (0..n).collect::<Vec<usize>>(),
                |_| 1,
                |i| {
                    let me = std::thread::current();
                    if me.name().is_some_and(|n| n.starts_with("cdw-worker")) {
                        seen.lock().unwrap().insert(me.id());
                    }
                    // Give the pool worker a chance to arrive.
                    std::thread::sleep(Duration::from_millis(1));
                    Ok(i)
                },
                &SchedCounters::default(),
            )
            .unwrap();
            seen.into_inner().unwrap()
        };
        // Any single pair of calls may be served by different (equally
        // persistent) workers, so assert the persistence invariant over
        // many calls: the set of distinct pool-thread ids ever observed
        // stays within the pool target. Per-call scoped threads would
        // mint fresh ids every call and blow through the bound.
        let mut distinct = HashSet::new();
        for _ in 0..20 {
            distinct.extend(worker_ids(16));
        }
        assert!(
            distinct.len() <= worker_pool_target(),
            "saw {} distinct pool threads across 20 calls (target {}): workers are not persistent",
            distinct.len(),
            worker_pool_target()
        );
        let stats = worker_pool_stats();
        assert!(
            stats.live <= stats.target,
            "pool exceeded its budget: {stats:?}"
        );
    }

    /// The per-query counters fire: own-queue hits for seeded work,
    /// steals when one participant's seeds must drain through another.
    /// Item 0 (the submitter's first seed) blocks until every other item
    /// has run, so the submitter's remaining seeds can only finish by
    /// being stolen.
    #[test]
    fn counters_record_local_hits_and_steals() {
        grow_worker_pool_target(2);
        let c = SchedCounters::default();
        let done = AtomicUsize::new(0);
        let out = run_stealing(
            2,
            (0..8usize).collect(),
            |_| 1,
            |i| {
                if i == 0 {
                    let deadline = Instant::now() + Duration::from_secs(10);
                    while done.load(Ordering::SeqCst) < 7 && Instant::now() < deadline {
                        std::thread::yield_now();
                    }
                } else {
                    done.fetch_add(1, Ordering::SeqCst);
                }
                Ok(i)
            },
            &c,
        )
        .unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(c.tasks(), 8);
        assert!(c.local() >= 1, "seeded pops must be counted");
        assert!(
            c.steals() >= 1,
            "blocked submitter's seeds require steals: local={} steals={}",
            c.local(),
            c.steals()
        );
        assert_eq!(c.local() + c.steals(), 8);
    }

    /// A budget of 1 means serial inline: no job is posted, the items run
    /// on the caller, and the counters still account for them.
    #[test]
    fn budget_of_one_runs_inline() {
        let c = SchedCounters::default();
        let caller = std::thread::current().id();
        let out = run_stealing(
            1,
            (0..4usize).collect(),
            |_| 1,
            |i| {
                assert_eq!(std::thread::current().id(), caller);
                Ok(i)
            },
            &c,
        )
        .unwrap();
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(c.tasks(), 4);
        assert_eq!(c.local(), 4);
        assert_eq!(c.steals(), 0);
    }
}
