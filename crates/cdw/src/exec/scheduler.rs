//! Work distribution for partition- and morsel-parallel stages.
//!
//! Two layers:
//!
//! * [`lpt_assign`] — longest-processing-time seeding: items sorted by
//!   descending cost estimate, each placed on the least-loaded worker.
//!   This replaces the old static `i % threads` round-robin, which skewed
//!   badly on heterogeneous costs (one oversized Grace-join bucket or
//!   storage partition stalled the whole query behind a single thread).
//!   LPT guarantees no worker is assigned more than `mean + max_item`
//!   cost; when no single item dominates (`max_item <= mean`), that is at
//!   most **2x the mean** — the bound `lpt_no_thread_exceeds_twice_mean`
//!   pins.
//! * [`run_stealing`] — LPT only seeds the deques; while running, a
//!   worker that drains its own queue **steals** from the busiest
//!   neighbour's tail. Cost estimates are proxies (byte sizes, row
//!   counts), so stealing absorbs what the estimate missed.
//!
//! Determinism: results are written to per-item slots and returned in
//! input order, so *which* worker ran an item — and in what order — can
//! never change the output. Errors are reported first-by-input-index,
//! independent of completion order. A panicking worker poisons the whole
//! scope (every in-flight item's state drops, releasing spill files) and
//! surfaces as one executor error.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::error::CdwError;

/// Assign `costs.len()` items to `bins` workers by longest-processing-time:
/// process items in descending cost order (input index breaks ties, so the
/// assignment is deterministic), always placing on the least-loaded bin.
/// Returns per-bin item-index lists; within a bin, indices are ordered by
/// descending cost — the order the worker should process them so the
/// largest items start earliest.
pub(crate) fn lpt_assign(costs: &[usize], bins: usize) -> Vec<Vec<usize>> {
    let bins = bins.max(1);
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    let mut assignment: Vec<Vec<usize>> = (0..bins).map(|_| Vec::new()).collect();
    let mut loads: Vec<usize> = vec![0; bins];
    for i in order {
        let b = (0..bins).min_by_key(|&b| (loads[b], b)).expect("bins >= 1");
        loads[b] += costs[i];
        assignment[b].push(i);
    }
    assignment
}

/// Run `f` over every item on `threads` workers with LPT-seeded deques and
/// work stealing. Results come back in **input order** regardless of which
/// worker ran what; on failure the error of the smallest-index failing
/// item is returned (matching serial semantics).
pub(crate) fn run_stealing<I, T, F>(
    threads: usize,
    items: Vec<I>,
    cost: impl Fn(&I) -> usize,
    f: F,
) -> Result<Vec<T>, CdwError>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, CdwError> + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let threads = threads.min(n);
    let costs: Vec<usize> = items.iter().map(&cost).collect();

    // Items move into per-slot cells so any worker can claim any index;
    // results land in per-slot cells so completion order is irrelevant.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<Result<T, CdwError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> = lpt_assign(&costs, threads)
        .into_iter()
        .map(|idx| Mutex::new(idx.into()))
        .collect();

    crossbeam::thread::scope(|scope| {
        for w in 0..threads {
            let (slots, results, deques) = (&slots, &results, &deques);
            let f = &f;
            scope.spawn(move |_| loop {
                // Own queue front first (largest remaining seed), then
                // steal from the tail of the neighbour with the most
                // queued work.
                let next = deques[w].lock().expect("deque lock").pop_front();
                let idx = match next {
                    Some(i) => i,
                    None => {
                        let victim = (0..threads)
                            .filter(|&v| v != w)
                            .max_by_key(|&v| (deques[v].lock().expect("deque lock").len(), v));
                        match victim.and_then(|v| deques[v].lock().expect("deque lock").pop_back())
                        {
                            Some(i) => i,
                            None => return,
                        }
                    }
                };
                // A stolen index may race with its owner between `len`
                // reads; the slot is the single claim point.
                let Some(item) = slots[idx].lock().expect("slot lock").take() else {
                    continue;
                };
                *results[idx].lock().expect("result lock") = Some(f(item));
            });
        }
    })
    .map_err(|_| CdwError::exec("parallel worker panicked"))?;

    // Iterating slots in index order makes the first error seen the
    // smallest-index error, no matter which worker hit it first.
    let mut out = Vec::with_capacity(n);
    for cell in results {
        match cell.into_inner().expect("result lock").expect("slot ran") {
            Ok(v) => out.push(v),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    /// The satellite regression: with heterogeneous costs where no single
    /// item dominates (max <= mean), LPT must leave every worker at or
    /// under 2x the mean load. The old round-robin fails this on the
    /// alternating-cost pattern (all the big items landed on one thread).
    #[test]
    fn lpt_no_thread_exceeds_twice_mean() {
        // Every big item lands on index 0 mod 4: round-robin at 4 threads
        // piles all of them onto thread 0.
        let adversarial: Vec<usize> = (0..16)
            .map(|i| if i % 4 == 0 { 10_000 } else { 1 })
            .collect();
        let cases: Vec<(Vec<usize>, usize)> = vec![
            (adversarial.clone(), 4),
            // Descending sizes (sorted storage partitions).
            ((1..=9).rev().map(|i| i * 1024).collect(), 4),
            // One partition per thread plus a tail of small ones.
            (vec![5000, 5000, 5000, 5000, 100, 90, 80, 70, 60, 50], 4),
            // Uniform costs degrade to round-robin.
            (vec![256; 16], 4),
        ];
        for (costs, threads) in cases {
            let total: usize = costs.iter().sum();
            let mean = total / threads;
            let max_item = *costs.iter().max().unwrap();
            assert!(max_item <= mean, "case must not be dominated by one item");
            let assignment = lpt_assign(&costs, threads);
            for (b, idx) in assignment.iter().enumerate() {
                let load: usize = idx.iter().map(|&i| costs[i]).sum();
                assert!(
                    load <= 2 * mean,
                    "thread {b} got {load} bytes, mean {mean} ({costs:?})"
                );
            }
        }
        // Round-robin on the adversarial case really is worse — document
        // the bug being fixed.
        let mean: usize = adversarial.iter().sum::<usize>() / 4;
        let rr_load: usize = adversarial.iter().step_by(4).sum();
        assert!(rr_load > 2 * mean, "round-robin baseline should skew");
    }

    /// Every index appears exactly once across bins, in descending-cost
    /// order within each bin.
    #[test]
    fn lpt_assignment_is_a_partition_of_items() {
        let costs = vec![7, 3, 9, 1, 4, 4, 2, 8];
        let assignment = lpt_assign(&costs, 3);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..costs.len()).collect::<Vec<_>>());
        for bin in &assignment {
            for pair in bin.windows(2) {
                assert!(costs[pair[0]] >= costs[pair[1]], "bin order: {bin:?}");
            }
        }
    }

    #[test]
    fn stealing_preserves_input_order_and_first_error() {
        let out = run_stealing(4, (0..32).collect(), |_| 1, |i| Ok(i * 10)).unwrap();
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<i32>>());

        let err = run_stealing(
            4,
            (0..32).collect::<Vec<i32>>(),
            |_| 1,
            |i| {
                if i % 7 == 3 {
                    Err(CdwError::exec(format!("boom {i}")))
                } else {
                    Ok(i)
                }
            },
        )
        .unwrap_err();
        // Smallest failing index is 3 regardless of completion order.
        assert!(err.to_string().contains("boom 3"), "{err}");
    }

    #[test]
    fn worker_panic_is_one_exec_error() {
        let err = run_stealing(
            2,
            vec![0usize, 1, 2, 3],
            |_| 1,
            |i| {
                if i == 2 {
                    panic!("injected");
                }
                Ok(i)
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("parallel worker panicked"),
            "{err}"
        );
    }

    /// Stealing rebalances: workers that finish their seed keep pulling
    /// from busier neighbours, so a many-morsel queue finishes even when
    /// the seed was maximally skewed (all items on one worker's deque is
    /// impossible under LPT, so skew the costs instead).
    #[test]
    fn stealing_drains_a_skewed_queue() {
        let done = AtomicUsize::new(0);
        let out = run_stealing(
            4,
            (0..64usize).collect(),
            // One "huge" item; everything else tiny.
            |&i| if i == 0 { 1 << 20 } else { 1 },
            |i| {
                done.fetch_add(1, Ordering::SeqCst);
                Ok(i)
            },
        )
        .unwrap();
        assert_eq!(out.len(), 64);
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    /// With plentiful slow work, more than one worker participates. The
    /// tasks hold a latch open until a second thread arrives (bounded by a
    /// deadline so a genuinely broken scheduler fails instead of hanging).
    #[test]
    fn multiple_workers_participate() {
        let seen = Mutex::new(HashSet::new());
        run_stealing(
            4,
            (0..8usize).collect(),
            |_| 1,
            |i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                let deadline = Instant::now() + Duration::from_secs(2);
                while seen.lock().unwrap().len() < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                Ok(i)
            },
        )
        .unwrap();
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected at least two workers"
        );
    }
}
