//! The vectorized executor: [`Plan`] → [`Batch`].
//!
//! Operators retain the storage partition structure wherever the plan
//! allows it, so work spreads across the persistent process-wide worker
//! pool (the `parallelism` knob the scalability experiment E8 sweeps,
//! clamped to the pool's execution budget — see [`scheduler`]).
//! Work distribution is morsel-driven by default: Filter/Project chains
//! and the partial half of two-phase aggregation stream fixed-size
//! morsels through fused per-morsel pipelines scheduled by an LPT-seeded
//! work-stealing queue (see [`pipeline`] and [`scheduler`]); setting
//! `morsel_rows = None` falls back to the static partition-at-a-time
//! split, which the equivalence suites pin the morsel path against
//! byte-for-byte:
//!
//! * Scan → Filter → Project chains map over partition morsels.
//! * `UnionAll` concatenates its inputs' partitions without collapsing.
//! * Aggregation and DISTINCT run two-phase when the optimizer placed a
//!   `Partial`/`Final` split (see [`crate::plan::AggMode`]): per-partition
//!   partial states build in parallel and merge associatively, in
//!   partition-index order, on the coordinating thread — so results are
//!   bit-identical at any parallelism.
//! * Hash joins build the right side once, share it (`Arc`) across probe
//!   units running in parallel — whole partitions on the static path,
//!   per-partition morsels (every join kind, LEFT/FULL tails regrouped
//!   per partition) on the morsel path — and emit one output part per
//!   probe partition either way.
//! * Sort generates sorted runs per morsel in parallel and k-way merges
//!   them by `(keys, row id)`; windows evaluate their expressions per
//!   morsel and sort/compute partitions in parallel, scattering values
//!   back to disjoint rows.
//!
//! Every operator records an [`OpStats`] entry (rows in/out, partitions,
//! elapsed, morsels) so `EXPLAIN`-style output and the bench harness can
//! attribute time.
//!
//! ## Memory budget & spilling
//!
//! An [`ExecMemoryTracker`] threads a per-operator byte budget through the
//! executor. The three operators whose state grows with input size —
//! aggregation hash tables, sort runs, and hash-join build tables — check
//! their (deterministic) state estimate against the budget up front and,
//! when over, switch to out-of-core variants backed by
//! [`crate::storage::SpillWriter`] files in the `sigma_value::codec` wire
//! format:
//!
//! * **Aggregate** hash-partitions input rows by group key into spilled
//!   bucket files, aggregates bucket by bucket (rebuilding the exact
//!   per-partition partial/merge structure of the in-memory path inside
//!   each bucket), and interleaves the per-bucket groups back into global
//!   first-seen order by each group's first `(partition, row)`.
//! * **Sort** spills sorted runs (key columns + original row ids) in
//!   pages and k-way merges them by `(keys, row id)` — exactly the total
//!   order a stable in-memory sort produces.
//! * **Join** Grace-partitions the build side's key material into bucket
//!   files, builds one bucket's hash table at a time, probes every left
//!   partition against it, then restores the in-memory output order by
//!   sorting each partition's matches by `(left row, right row)`.
//!
//! Because every spilled variant performs the *same floating-point
//! operations in the same order* as its in-memory counterpart and only
//! reorders bookkeeping, results are **bit-identical** at any budget and
//! any parallelism (pinned by `tests/spill_oracle.rs`). Under morsel
//! mode the budget compounds with streaming: spilling aggregation
//! consumes morsels directly ([`pipeline::morsel_spilled_aggregate`]),
//! sort runs spill from parallel workers, and the Grace join's key
//! evaluation and bucket passes run on the work-stealing scheduler —
//! same group states, permutations, and pairs, spilled per pipeline
//! instead of per materialized operator.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sigma_sql::JoinKind;
use sigma_value::{hash, sort, Batch, Column, ColumnBuilder, DataType, Field, Schema, Value};

use crate::catalog::Catalog;
use crate::error::CdwError;
use crate::eval::{eval_sel, CompiledExpr, EvalCtx, PhysExpr};
use crate::plan::{AggCall, AggFunc, AggMode, Plan};
use crate::storage::{SpillHandle, SpillReader, SpillWriter};
use crate::window::compute_window;

pub(crate) mod pipeline;
pub mod scheduler;

pub use pipeline::DEFAULT_MORSEL_ROWS;

/// One partition flowing between operators: a batch plus an optional
/// **selection vector** — the surviving row indices, ascending. Filters
/// refine the selection instead of materializing their output; consumers
/// either evaluate expressions through the selection ([`eval_sel`] /
/// [`CompiledExpr::eval`]) or gather once via [`Part::materialize`]. A
/// `Filter → Project → Filter` chain therefore touches only surviving
/// rows and never builds an intermediate batch.
#[derive(Debug, Clone)]
pub(crate) struct Part {
    batch: Batch,
    sel: Option<Vec<usize>>,
}

impl Part {
    fn new(batch: Batch) -> Part {
        Part { batch, sel: None }
    }

    fn rows(&self) -> usize {
        self.sel.as_ref().map_or(self.batch.num_rows(), Vec::len)
    }

    fn sel(&self) -> Option<&[usize]> {
        self.sel.as_deref()
    }

    /// Gather the surviving rows into a dense batch (no-op without a
    /// selection).
    fn materialize(self) -> Batch {
        match self.sel {
            Some(s) => self.batch.take(&s),
            None => self.batch,
        }
    }

    /// Deterministic byte-size proxy for spill decisions: the underlying
    /// batch scaled by the surviving-row fraction.
    fn est_bytes(&self) -> usize {
        match &self.sel {
            None => self.batch.byte_size(),
            Some(s) => self.batch.byte_size() * s.len() / self.batch.num_rows().max(1),
        }
    }
}

/// Accumulate the wall-clock of one expression evaluation into an
/// operator's cumulative `eval_ns` counter (atomic: partition/morsel
/// workers record concurrently). Shared with the window executor.
pub(crate) fn timed<T>(ns: &AtomicU64, f: impl FnOnce() -> T) -> T {
    let started = Instant::now();
    let out = f();
    ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// Execution context (read access to storage plus settings).
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub results: &'a HashMap<String, Batch>,
    pub eval: EvalCtx,
    /// Worker threads for partition-parallel stages (1 = serial).
    pub parallelism: usize,
    /// Morsel height for pipelined stages; `None` disables morsel-driven
    /// execution and runs the static partition-at-a-time split (the
    /// oracle baseline the morsel path is pinned against).
    pub morsel_rows: Option<usize>,
    /// Derive each pipeline's morsel height from its input shape
    /// ([`pipeline::adaptive_morsel_rows`]) instead of the fixed
    /// `morsel_rows` value. Ignored when `morsel_rows` is `None`; the
    /// equivalence oracles sweep explicit fixed sizes with this off.
    pub adaptive_morsels: bool,
    /// Per-operator memory budget and spill accounting.
    pub memory: ExecMemoryTracker,
    /// Per-query scheduler counters (tasks, own-queue hits, steals,
    /// unparks) recorded by every `run_stealing` call this query makes.
    pub sched: scheduler::SchedCounters,
}

impl ExecCtx<'_> {
    /// Worker slots this query can actually occupy: the configured
    /// per-query `parallelism` clamped to the process-wide pool target.
    pub fn effective_parallelism(&self) -> usize {
        scheduler::effective_workers(self.parallelism)
    }

    /// Morsel height for pipelined stages, or `None` when execution is
    /// effectively serial. With one worker slot the morsel lane would run
    /// the exact same code as the static split plus queue overhead, so
    /// every morsel entry point gates through this instead of reading
    /// `morsel_rows` directly.
    pub fn morsel_exec(&self) -> Option<usize> {
        if self.effective_parallelism() > 1 {
            self.morsel_rows
        } else {
            None
        }
    }
}

/// Accounts operator state against a configurable byte budget and records
/// what spilled.
///
/// The budget is **per operator instance**: each aggregation, sort, or
/// join build checks the bytes its in-memory state would need (estimated
/// from its input — deterministic, never sampled) and runs out-of-core
/// when the estimate exceeds the budget. Counters are atomics so
/// partition-parallel workers can record spills without synchronization;
/// totals are folded into [`ExecStats`] when the query completes.
#[derive(Debug, Default)]
pub struct ExecMemoryTracker {
    /// `None` = unbudgeted: all operator state stays in memory.
    budget: Option<usize>,
    spilled_bytes: AtomicUsize,
    spill_rounds: AtomicUsize,
}

/// Widest fan-out for spilling aggregation / Grace join buckets.
const MAX_SPILL_BUCKETS: usize = 64;
/// Most sorted runs an external sort will create.
const MAX_SORT_RUNS: usize = 64;

impl ExecMemoryTracker {
    pub fn new(budget: Option<usize>) -> ExecMemoryTracker {
        ExecMemoryTracker {
            budget,
            ..Default::default()
        }
    }

    /// The configured per-operator budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Would holding `estimated_state` bytes exceed the budget?
    pub fn should_spill(&self, estimated_state: usize) -> bool {
        self.budget.is_some_and(|b| estimated_state > b)
    }

    /// Hash-bucket fan-out so one bucket's state fits the budget
    /// (power of two, clamped to `[2, 64]`).
    pub fn bucket_count(&self, estimated_state: usize) -> usize {
        let budget = self.budget.unwrap_or(usize::MAX).max(1);
        let need = estimated_state.div_ceil(budget).max(2);
        need.next_power_of_two().min(MAX_SPILL_BUCKETS)
    }

    /// Sorted-run count so one run's state fits the budget (clamped to
    /// `[2, 64]` and never more than one run per row).
    pub fn run_count(&self, estimated_state: usize, rows: usize) -> usize {
        let budget = self.budget.unwrap_or(usize::MAX).max(1);
        estimated_state
            .div_ceil(budget)
            .clamp(2, MAX_SORT_RUNS)
            .min(rows.max(2))
    }

    /// Charge bytes written to spill files.
    pub fn record_spill(&self, bytes: usize) {
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count spill rounds (one per aggregation/join bucket pass or sort
    /// run).
    pub fn record_rounds(&self, rounds: usize) {
        self.spill_rounds.fetch_add(rounds, Ordering::Relaxed);
    }

    pub fn spilled_bytes(&self) -> usize {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    pub fn spill_rounds(&self) -> usize {
        self.spill_rounds.load(Ordering::Relaxed)
    }
}

/// Per-operator execution counters, recorded in plan pre-order.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// EXPLAIN-style operator label (e.g. `Aggregate[partial] (groups=1, aggs=2)`).
    pub op: String,
    /// Depth in the plan tree (0 = root), for tree rendering.
    pub depth: usize,
    /// Rows produced by this operator's immediate children.
    pub rows_in: usize,
    /// Rows this operator produced.
    pub rows_out: usize,
    /// Output partitions (1 for collapsing operators).
    pub partitions: usize,
    /// Wall-clock time inclusive of children.
    pub elapsed: Duration,
    /// Cumulative nanoseconds this operator spent evaluating scalar
    /// expressions (filter predicates, projections, group/join/sort keys,
    /// window arguments) — summed across partition workers, so it can
    /// exceed `elapsed` under parallelism. This is the counter the
    /// vectorized-expression win shows up in per query.
    pub eval_ns: u64,
    /// Morsels this operator processed as part of a fused pipeline
    /// (0 for operators executed outside the morsel path).
    pub morsels: usize,
}

impl OpStats {
    fn started(op: String, depth: usize) -> OpStats {
        OpStats {
            op,
            depth,
            rows_in: 0,
            rows_out: 0,
            partitions: 0,
            elapsed: Duration::ZERO,
            eval_ns: 0,
            morsels: 0,
        }
    }
}

/// Counters accumulated during one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    pub rows_scanned: usize,
    pub partitions_scanned: usize,
    /// Per-operator breakdown in plan pre-order (root first).
    pub operators: Vec<OpStats>,
    /// The memory budget the query ran under (`None` = unbounded).
    pub memory_budget: Option<usize>,
    /// Bytes written to spill files (0 when everything stayed in memory).
    pub spilled_bytes: usize,
    /// Spill rounds taken: aggregation/join bucket passes plus sort runs.
    pub spill_rounds: usize,
    /// Parallel tasks dispatched through the worker pool (0 = all serial).
    pub sched_tasks: usize,
    /// Tasks a worker popped from its own deque (locality hits).
    pub sched_local: usize,
    /// Tasks taken from another worker's deque.
    pub sched_steals: usize,
    /// Parked pool workers woken for this query's jobs.
    pub sched_unparks: usize,
}

impl ExecStats {
    /// Fill in `rows_in` from each operator's immediate children.
    fn finalize(&mut self) {
        let n = self.operators.len();
        for i in 0..n {
            let d = self.operators[i].depth;
            let mut rows_in = 0;
            for j in i + 1..n {
                let dj = self.operators[j].depth;
                if dj <= d {
                    break;
                }
                if dj == d + 1 {
                    rows_in += self.operators[j].rows_out;
                }
            }
            self.operators[i].rows_in = rows_in;
        }
    }

    /// Render the per-operator breakdown as an indented tree
    /// (EXPLAIN ANALYZE-style), with a memory/spill footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.operators {
            for _ in 0..op.depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{}  rows_in={} rows_out={} partitions={} elapsed={:.3}ms eval_ns={}",
                op.op,
                op.rows_in,
                op.rows_out,
                op.partitions,
                op.elapsed.as_secs_f64() * 1e3,
                op.eval_ns,
            ));
            if op.morsels > 0 {
                out.push_str(&format!(" morsels={}", op.morsels));
            }
            out.push('\n');
        }
        let budget = match self.memory_budget {
            Some(b) => b.to_string(),
            None => "unbounded".to_string(),
        };
        out.push_str(&format!(
            "memory: budget={budget} spilled_bytes={} spill_rounds={}\n",
            self.spilled_bytes, self.spill_rounds,
        ));
        out.push_str(&format!(
            "scheduler: tasks={} local={} steals={} unparks={}\n",
            self.sched_tasks, self.sched_local, self.sched_steals, self.sched_unparks,
        ));
        out
    }
}

/// Execute a plan to a single batch.
pub fn execute(plan: &Plan, ctx: &ExecCtx, stats: &mut ExecStats) -> Result<Batch, CdwError> {
    let schema = plan.schema();
    let parts = execute_parts(plan, ctx, stats, 0)?;
    stats.finalize();
    stats.memory_budget = ctx.memory.budget();
    stats.spilled_bytes = ctx.memory.spilled_bytes();
    stats.spill_rounds = ctx.memory.spill_rounds();
    stats.sched_tasks = ctx.sched.tasks();
    stats.sched_local = ctx.sched.local();
    stats.sched_steals = ctx.sched.steals();
    stats.sched_unparks = ctx.sched.unparks();
    concat_parts(parts, schema)
}

/// Collapse a part list to one dense batch (an empty list yields zero
/// rows); selections are gathered here.
fn concat_parts(parts: Vec<Part>, schema: Arc<Schema>) -> Result<Batch, CdwError> {
    let mut parts: Vec<Batch> = parts.into_iter().map(Part::materialize).collect();
    match parts.len() {
        0 => Ok(Batch::empty(schema)),
        1 => Ok(parts.pop().unwrap()),
        _ => {
            let refs: Vec<&Batch> = parts.iter().collect();
            Batch::concat(&refs).map_err(CdwError::from)
        }
    }
}

/// Input column types of a plan node (what expressions compile against).
fn input_types(plan: &Plan) -> Vec<DataType> {
    plan.schema().fields().iter().map(|f| f.dtype).collect()
}

/// Operator label for stats entries (matches `Plan::explain` lines).
fn op_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("Scan {table}"),
        Plan::ResultScan { id, .. } => format!("ResultScan {id}"),
        Plan::Values { .. } => "Values".to_string(),
        Plan::Project { exprs, .. } => format!("Project ({} exprs)", exprs.len()),
        Plan::Filter { .. } => "Filter".to_string(),
        Plan::Aggregate {
            mode, groups, aggs, ..
        } => format!(
            "Aggregate{} (groups={}, aggs={})",
            mode.label(),
            groups.len(),
            aggs.len()
        ),
        Plan::Window { calls, .. } => format!("Window ({} calls)", calls.len()),
        Plan::Join {
            kind, left_keys, ..
        } => format!("Join {kind:?} ({} keys)", left_keys.len()),
        Plan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
        Plan::Limit { .. } => "Limit".to_string(),
        Plan::UnionAll { .. } => "UnionAll".to_string(),
        Plan::Distinct { mode, .. } => format!("Distinct{}", mode.label()),
    }
}

/// Execute retaining partition structure, recording one [`OpStats`] entry.
fn execute_parts(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
) -> Result<Vec<Part>, CdwError> {
    let slot = stats.operators.len();
    stats
        .operators
        .push(OpStats::started(op_label(plan), depth));
    let started = Instant::now();
    let eval_ns = AtomicU64::new(0);
    let morsels = AtomicUsize::new(0);
    let parts = execute_node(plan, ctx, stats, depth, &eval_ns, &morsels)?;
    let op = &mut stats.operators[slot];
    op.elapsed = started.elapsed();
    op.rows_out = parts.iter().map(Part::rows).sum();
    op.partitions = parts.len();
    op.eval_ns = eval_ns.into_inner();
    op.morsels = morsels.into_inner();
    Ok(parts)
}

/// Row indices (in original-batch coordinates) where the evaluated
/// predicate column is `true`, refined through an existing selection.
/// (Shared with the browser-tier delta kernels in [`crate::delta`] so the
/// filter-tweak fast path keeps the exact filter semantics of the plan.)
pub(crate) fn truthy_indices(mask: &Column, sel: Option<&[usize]>) -> Vec<usize> {
    let orig = |i: usize| sel.map_or(i, |s| s[i]);
    let mut keep = Vec::new();
    match (mask.bools(), mask.validity()) {
        (Some(b), None) => {
            for (i, &hit) in b.iter().enumerate() {
                if hit {
                    keep.push(orig(i));
                }
            }
        }
        (Some(b), Some(m)) => {
            for i in 0..b.len() {
                if m[i] && b[i] {
                    keep.push(orig(i));
                }
            }
        }
        // Non-bool predicate output: boxed compare, as before.
        _ => {
            for i in 0..mask.len() {
                if mask.value(i) == Value::Bool(true) {
                    keep.push(orig(i));
                }
            }
        }
    }
    keep
}

fn execute_node(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
    eval_ns: &AtomicU64,
    morsels: &AtomicUsize,
) -> Result<Vec<Part>, CdwError> {
    match plan {
        Plan::Scan { table, .. } => {
            let stored = ctx.catalog.get(table)?;
            stats.rows_scanned += stored.num_rows();
            stats.partitions_scanned += stored.partitions().len();
            Ok(stored.partitions().iter().cloned().map(Part::new).collect())
        }
        Plan::ResultScan { id, .. } => {
            let batch = ctx
                .results
                .get(id)
                .ok_or_else(|| CdwError::catalog(format!("persisted result not found: {id}")))?;
            Ok(vec![Part::new(batch.clone())])
        }
        Plan::Values { batch } => Ok(vec![Part::new(batch.clone())]),
        Plan::Filter { input, predicate } => {
            // Morsel mode fuses the whole Filter/Project chain below this
            // node into one pipeline (the chain's inner nodes never reach
            // execute_node).
            if ctx.morsel_exec().is_some() {
                return pipeline::execute_chain(plan, ctx, stats, depth, eval_ns, morsels);
            }
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            // Compile once per operator; partitions share the schema.
            let compiled = CompiledExpr::compile(predicate, &input_types(input))?;
            let compiled = &compiled;
            par_map(
                ctx,
                parts,
                |p| p.est_bytes(),
                |p| {
                    let mask = timed(eval_ns, || compiled.eval(&p.batch, p.sel(), &ctx.eval))?;
                    // Refine the selection — no materialization.
                    let keep = truthy_indices(&mask, p.sel());
                    Ok(Part {
                        batch: p.batch,
                        sel: Some(keep),
                    })
                },
            )
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            if ctx.morsel_exec().is_some() {
                return pipeline::execute_chain(plan, ctx, stats, depth, eval_ns, morsels);
            }
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            let types = input_types(input);
            let compiled: Vec<CompiledExpr> = exprs
                .iter()
                .map(|e| CompiledExpr::compile(e, &types))
                .collect::<Result<_, _>>()?;
            let (compiled, schema) = (&compiled, schema.clone());
            par_map(
                ctx,
                parts,
                |p| p.est_bytes(),
                move |p| {
                    let cols: Vec<Column> = compiled
                        .iter()
                        .zip(schema.fields())
                        .map(|(e, f)| {
                            let col = timed(eval_ns, || e.eval(&p.batch, p.sel(), &ctx.eval))?;
                            coerce_column(col, f.dtype)
                        })
                        .collect::<Result<_, _>>()?;
                    Ok(Part::new(Batch::new(schema.clone(), cols)?))
                },
            )
        }
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode,
        } => {
            // The Final half of an optimizer-placed split fuses with its
            // Partial child: partition group tables build in parallel and
            // merge in partition-index order (deterministic at any
            // parallelism).
            if *mode == AggMode::Final {
                if let Plan::Aggregate {
                    input: pinput,
                    groups: pgroups,
                    aggs: paggs,
                    mode: AggMode::Partial,
                    ..
                } = input.as_ref()
                {
                    let pslot = stats.operators.len();
                    stats
                        .operators
                        .push(OpStats::started(op_label(input), depth + 1));
                    let pstarted = Instant::now();
                    let peval_ns = AtomicU64::new(0);
                    // Unbudgeted morsel mode: fuse the Partial with the
                    // streaming chain below it — group/argument expressions
                    // evaluate per morsel, each partition folds its morsels
                    // sequentially (identical FP sequence to one
                    // whole-partition pass), partials merge in partition
                    // order as always. Budgeted queries fall through to the
                    // partition-granular path so the spill estimate and the
                    // out-of-core arithmetic stay byte-identical.
                    if ctx.morsel_exec().is_some() && ctx.memory.budget().is_none() {
                        let cagg = compile_agg_exprs(pgroups, paggs, &input_types(pinput))?;
                        let fused = pipeline::execute_fused_partial(
                            pinput,
                            &cagg,
                            paggs,
                            ctx,
                            stats,
                            depth + 2,
                            &peval_ns,
                        )?;
                        {
                            let op = &mut stats.operators[pslot];
                            op.elapsed = pstarted.elapsed();
                            op.rows_out = fused.tables.iter().map(|t| t.entries.len()).sum();
                            op.partitions = fused.partitions;
                            op.eval_ns = peval_ns.into_inner();
                            op.morsels = fused.morsels;
                        }
                        let merged = merge_group_tables(fused.tables, pgroups.is_empty(), paggs);
                        return Ok(vec![Part::new(finish_groups(merged, schema)?)]);
                    }
                    let parts = execute_parts(pinput, ctx, stats, depth + 2)?;
                    let cagg = compile_agg_exprs(pgroups, paggs, &input_types(pinput))?;
                    // State estimate: the partial tables hold keys and
                    // values derived from every input row, so total input
                    // bytes is the deterministic upper-bound proxy.
                    let est: usize = parts.iter().map(Part::est_bytes).sum();
                    if !pgroups.is_empty() && ctx.memory.should_spill(est) {
                        // Morsel mode spills per pipeline: group/argument
                        // expressions evaluate and route to buckets per
                        // morsel in parallel (bit-identical group states —
                        // see `morsel_spilled_aggregate`).
                        let pmorsels = AtomicUsize::new(0);
                        let (batch, partial_rows) = if ctx.morsel_exec().is_some() {
                            pipeline::morsel_spilled_aggregate(
                                &parts, &cagg, paggs, schema, ctx, est, &peval_ns, &pmorsels,
                            )?
                        } else {
                            spilled_aggregate(&parts, &cagg, paggs, schema, ctx, est, &peval_ns)?
                        };
                        let op = &mut stats.operators[pslot];
                        op.elapsed = pstarted.elapsed();
                        op.rows_out = partial_rows;
                        op.partitions = parts.len();
                        op.eval_ns = peval_ns.into_inner();
                        op.morsels = pmorsels.into_inner();
                        return Ok(vec![Part::new(batch)]);
                    }
                    let cagg = &cagg;
                    let tables = par_map(
                        ctx,
                        parts,
                        |p| p.est_bytes(),
                        |p| accumulate_groups(&p, cagg, paggs, &ctx.eval, &peval_ns),
                    )?;
                    {
                        let op = &mut stats.operators[pslot];
                        op.elapsed = pstarted.elapsed();
                        op.rows_out = tables.iter().map(|t| t.entries.len()).sum();
                        op.partitions = tables.len();
                        op.eval_ns = peval_ns.into_inner();
                    }
                    let merged = merge_group_tables(tables, pgroups.is_empty(), paggs);
                    return Ok(vec![Part::new(finish_groups(merged, schema)?)]);
                }
            }
            // Single placement (or a Partial/Final the optimizer did not
            // pair): one-shot aggregation over the concatenated input.
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            let cagg = compile_agg_exprs(groups, aggs, &input_types(input))?;
            let est: usize = parts.iter().map(Part::est_bytes).sum();
            let part = Part::new(concat_parts(parts, input.schema())?);
            if !groups.is_empty() && ctx.memory.should_spill(est) {
                // One logical partition preserves Single-mode arithmetic
                // (continuous per-group accumulation, no partial merge);
                // morsel mode splits it into morsels whose per-bucket
                // records fold back in morsel order — the same sequence.
                let (batch, _) = if ctx.morsel_exec().is_some() {
                    pipeline::morsel_spilled_aggregate(
                        std::slice::from_ref(&part),
                        &cagg,
                        aggs,
                        schema,
                        ctx,
                        est,
                        eval_ns,
                        morsels,
                    )?
                } else {
                    spilled_aggregate(
                        std::slice::from_ref(&part),
                        &cagg,
                        aggs,
                        schema,
                        ctx,
                        est,
                        eval_ns,
                    )?
                };
                return Ok(vec![Part::new(batch)]);
            }
            let table = accumulate_groups(&part, &cagg, aggs, &ctx.eval, eval_ns)?;
            Ok(vec![Part::new(finish_groups(table, schema)?)])
        }
        Plan::Window {
            input,
            calls,
            schema,
        } => {
            let batch = concat_parts(execute_parts(input, ctx, stats, depth + 1)?, input.schema())?;
            let mut cols: Vec<Column> = batch.columns().to_vec();
            for (i, call) in calls.iter().enumerate() {
                let out_type = schema.field(batch.num_columns() + i).dtype;
                // Morsel mode parallelizes both hot phases (expression
                // eval per morsel, sort+compute per partition) and is
                // pinned bit-identical to the static path.
                let col = if ctx.morsel_exec().is_some() && batch.num_rows() > 0 {
                    crate::window::compute_window_morsel(
                        call, &batch, out_type, ctx, eval_ns, morsels,
                    )?
                } else {
                    compute_window(call, &batch, out_type, &ctx.eval, eval_ns)?
                };
                cols.push(col);
            }
            Ok(vec![Part::new(Batch::new(schema.clone(), cols)?)])
        }
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            // Build side: materialized once, hash table shared across
            // probe partitions.
            let right_batch = Arc::new(concat_parts(
                execute_parts(right, ctx, stats, depth + 1)?,
                right.schema(),
            )?);
            // Probe partitions materialize here: the probe needs every
            // left column for output assembly anyway. Key expressions
            // still evaluate through the vectorized kernels.
            let lparts: Vec<Batch> = execute_parts(left, ctx, stats, depth + 1)?
                .into_iter()
                .map(Part::materialize)
                .collect();
            let keyed = *kind != JoinKind::Cross && !left_keys.is_empty();
            let rcols: Vec<Column> = if keyed {
                timed(eval_ns, || {
                    right_keys
                        .iter()
                        .map(|k| eval_sel(k, &right_batch, None, &ctx.eval))
                        .collect::<Result<_, _>>()
                })?
            } else {
                Vec::new()
            };
            // Probe keys and residual compile once per operator; the
            // residual runs over candidate batches in the join schema.
            let ltypes = input_types(left);
            let lkeys: Vec<CompiledExpr> = left_keys
                .iter()
                .map(|k| CompiledExpr::compile(k, &ltypes))
                .collect::<Result<_, _>>()?;
            let jtypes: Vec<DataType> = schema.fields().iter().map(|f| f.dtype).collect();
            let cresidual = residual
                .as_ref()
                .map(|r| CompiledExpr::compile(r, &jtypes))
                .transpose()?;
            // Build-state estimate: key material plus ~8 bytes of table
            // index per right row.
            let est =
                rcols.iter().map(Column::byte_size).sum::<usize>() + 8 * right_batch.num_rows();
            let probes = if keyed && ctx.memory.should_spill(est) {
                spilled_join(
                    &lparts,
                    &right_batch,
                    &rcols,
                    *kind,
                    &lkeys,
                    cresidual.as_ref(),
                    schema,
                    ctx,
                    est,
                    eval_ns,
                    morsels,
                )?
            } else {
                let build = Arc::new(build_join_table(right_batch.num_rows(), &rcols, keyed));
                let (lkeys, cresidual) = (&lkeys, cresidual.as_ref());
                // All probe kinds morselize: matched pairs come back in
                // left-row order, so per-partition morsel outputs
                // re-concatenate to the whole-partition result exactly.
                // LEFT/FULL keep each morsel's null-extended unmatched
                // tail separate and regroup it after all of the
                // partition's matches (see `probe_morsel_split`), and
                // FULL's matched-right sets union across morsels before
                // the unmatched-right sweep below.
                if ctx.morsel_exec().is_some() {
                    pipeline::morsel_probe(
                        &lparts,
                        &right_batch,
                        &build,
                        *kind,
                        lkeys,
                        cresidual,
                        schema,
                        ctx,
                        eval_ns,
                        morsels,
                    )?
                } else {
                    par_map(
                        ctx,
                        lparts,
                        |lb| lb.byte_size(),
                        |lb| {
                            probe_partition(
                                &lb,
                                &right_batch,
                                &build,
                                *kind,
                                lkeys,
                                cresidual,
                                schema,
                                &ctx.eval,
                                eval_ns,
                            )
                        },
                    )?
                }
            };
            let mut parts = Vec::with_capacity(probes.len() + 1);
            let mut matched_right = if *kind == JoinKind::Full {
                vec![false; right_batch.num_rows()]
            } else {
                Vec::new()
            };
            for (batch, matched) in probes {
                for ri in matched {
                    matched_right[ri] = true;
                }
                parts.push(Part::new(batch));
            }
            if *kind == JoinKind::Full {
                let unmatched: Vec<usize> = matched_right
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| !**m)
                    .map(|(i, _)| i)
                    .collect();
                if !unmatched.is_empty() {
                    parts.push(Part::new(assemble_right_only(
                        &right_batch,
                        &unmatched,
                        schema,
                        left.schema().len(),
                    )?));
                }
            }
            Ok(parts)
        }
        Plan::Sort { input, keys } => {
            let batch = concat_parts(execute_parts(input, ctx, stats, depth + 1)?, input.schema())?;
            let types = input_types(input);
            let compiled: Vec<CompiledExpr> = keys
                .iter()
                .map(|k| CompiledExpr::compile(&k.expr, &types))
                .collect::<Result<_, _>>()?;
            let sort_keys: Vec<sort::SortKey> = keys
                .iter()
                .map(|k| sort::SortKey {
                    descending: k.descending,
                    nulls_last: k.nulls_last.unwrap_or(k.descending),
                })
                .collect();
            // Morsel mode parallelizes run generation (key eval + local
            // sorts) and k-way merges by (keys, row id) — the unique total
            // order a stable whole-input sort produces, so the permutation
            // is identical to the static path below.
            if ctx.morsel_exec().is_some() && batch.num_rows() > 1 {
                return Ok(vec![Part::new(pipeline::morsel_sort(
                    &batch, &compiled, &sort_keys, ctx, eval_ns, morsels,
                )?)]);
            }
            let key_cols: Vec<Column> = timed(eval_ns, || {
                compiled
                    .iter()
                    .map(|k| k.eval(&batch, None, &ctx.eval))
                    .collect::<Result<_, _>>()
            })?;
            // Sort-state estimate: key columns plus the 8-byte index per
            // row the permutation holds.
            let est = key_cols.iter().map(Column::byte_size).sum::<usize>() + 8 * batch.num_rows();
            if batch.num_rows() > 1 && ctx.memory.should_spill(est) {
                return Ok(vec![Part::new(spilled_sort(
                    &batch, &key_cols, &sort_keys, ctx, est,
                )?)]);
            }
            let refs: Vec<&Column> = key_cols.iter().collect();
            let idx = sort::sort_indices(&refs, &sort_keys);
            Ok(vec![Part::new(batch.take(&idx))])
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let batch = concat_parts(execute_parts(input, ctx, stats, depth + 1)?, input.schema())?;
            let start = (*offset as usize).min(batch.num_rows());
            let len = match limit {
                Some(l) => (*l as usize).min(batch.num_rows() - start),
                None => batch.num_rows() - start,
            };
            Ok(vec![Part::new(batch.slice(start, len))])
        }
        Plan::UnionAll { inputs, schema } => {
            // Keep every input's partition structure (no collapsing), so
            // two-phase operators above the union stay parallel.
            let mut parts = Vec::new();
            for input in inputs {
                for p in execute_parts(input, ctx, stats, depth + 1)? {
                    // Re-tag with the union schema (names from the first
                    // input); the selection survives re-tagging.
                    parts.push(Part {
                        batch: Batch::new(schema.clone(), p.batch.columns().to_vec())?,
                        sel: p.sel,
                    });
                }
            }
            Ok(parts)
        }
        Plan::Distinct { input, mode } => {
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            match mode {
                // Per-partition dedup, partitions retained — as a refined
                // selection, so a filtered part still never materializes.
                // Keys already deduplicated here never re-allocate in the
                // Final merge.
                AggMode::Partial => par_map(
                    ctx,
                    parts,
                    |p| p.est_bytes(),
                    |p| {
                        let mut seen = HashSet::new();
                        let keep = distinct_indices(&p.batch, p.sel(), &mut seen);
                        Ok(Part {
                            batch: p.batch,
                            sel: Some(keep),
                        })
                    },
                ),
                // Global dedup across parts in partition order.
                AggMode::Single | AggMode::Final => {
                    let mut seen = HashSet::new();
                    let mut kept = Vec::new();
                    for p in &parts {
                        let keep = distinct_indices(&p.batch, p.sel(), &mut seen);
                        if !keep.is_empty() {
                            kept.push(Part {
                                batch: p.batch.clone(),
                                sel: Some(keep),
                            });
                        }
                    }
                    Ok(vec![Part::new(concat_parts(kept, input.schema())?)])
                }
            }
        }
    }
}

/// Selected rows of `batch` whose key is not yet in `seen`, in selection
/// order, returned as original-batch indices. Keys allocate only when
/// actually inserted (never on duplicate hits).
fn distinct_indices(
    batch: &Batch,
    sel: Option<&[usize]>,
    seen: &mut HashSet<Vec<u8>>,
) -> Vec<usize> {
    let refs: Vec<&Column> = batch.columns().iter().collect();
    let rows = sel.map_or(batch.num_rows(), <[usize]>::len);
    let mut keep = Vec::new();
    let mut key = Vec::new();
    for i in 0..rows {
        let row = sel.map_or(i, |s| s[i]);
        key.clear();
        hash::encode_key(&refs, row, &mut key);
        if !seen.contains(&key) {
            seen.insert(key.clone());
            keep.push(row);
        }
    }
    keep
}

/// Coerce an evaluated column to the declared output type (Int -> Float and
/// Date -> Timestamp widening; all-null columns adopt the target type).
pub(crate) fn coerce_column(col: Column, target: DataType) -> Result<Column, CdwError> {
    if col.dtype() == target {
        return Ok(col);
    }
    // Columns that are entirely null can be retyped freely; typed columns
    // may widen (the cast kernels handle Int->Float and Date->Timestamp).
    col.cast(target).map_err(CdwError::from)
}

/// Map over work items (partitions, spill buckets, ...) in parallel when
/// configured and worthwhile. `cost` is a deterministic size estimate
/// (bytes, rows) used to seed the LPT assignment; work stealing absorbs
/// whatever the estimate gets wrong. Output order always matches input
/// order — which worker ran an item can never change the result.
fn par_map<I, T, F>(
    ctx: &ExecCtx,
    parts: Vec<I>,
    cost: impl Fn(&I) -> usize,
    f: F,
) -> Result<Vec<T>, CdwError>
where
    I: Send,
    T: Send,
    F: Fn(I) -> Result<T, CdwError> + Sync,
{
    scheduler::run_stealing(ctx.parallelism, parts, cost, f, &ctx.sched)
}

// ---------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------

/// Per-group aggregate state.
#[derive(Debug)]
pub enum AggState {
    CountStar(i64),
    Count(i64),
    CountDistinct(std::collections::HashSet<Vec<u8>>),
    SumInt {
        sum: i64,
        any: bool,
    },
    SumFloat {
        sum: f64,
        any: bool,
    },
    Avg {
        sum: f64,
        count: i64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Collect {
        values: Vec<f64>,
        frac: f64,
        median: bool,
    },
    Welford {
        n: i64,
        mean: f64,
        m2: f64,
        variance: bool,
    },
    Attr {
        value: Option<Value>,
        conflicted: bool,
    },
}

impl AggState {
    pub fn new(func: &AggFunc) -> AggState {
        match func {
            AggFunc::CountStar => AggState::CountStar(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(Default::default()),
            // Int-ness is decided at finish time by what was accumulated.
            AggFunc::Sum => AggState::SumFloat {
                sum: 0.0,
                any: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Median => AggState::Collect {
                values: Vec::new(),
                frac: 0.5,
                median: true,
            },
            AggFunc::Percentile(p) => AggState::Collect {
                values: Vec::new(),
                frac: *p,
                median: false,
            },
            AggFunc::StdDev => AggState::Welford {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                variance: false,
            },
            AggFunc::Variance => AggState::Welford {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                variance: true,
            },
            AggFunc::Attr => AggState::Attr {
                value: None,
                conflicted: false,
            },
        }
    }

    /// Sum over an Int column keeps Int output.
    pub fn new_for(func: &AggFunc, arg_type: Option<DataType>) -> AggState {
        match (func, arg_type) {
            (AggFunc::Sum, Some(DataType::Int)) => AggState::SumInt { sum: 0, any: false },
            _ => AggState::new(func),
        }
    }

    pub fn update(&mut self, v: &Value) {
        match self {
            AggState::CountStar(n) => *n += 1,
            AggState::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::CountDistinct(set) => {
                if !v.is_null() {
                    let mut key = Vec::new();
                    hash::encode_value(v, &mut key);
                    set.insert(key);
                }
            }
            AggState::SumInt { sum, any } => {
                if let Some(x) = v.as_i64() {
                    *sum = sum.wrapping_add(x);
                    *any = true;
                }
            }
            AggState::SumFloat { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::MinMax { best, is_min } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.total_cmp(b);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Collect { values, .. } => {
                if let Some(x) = v.as_f64() {
                    values.push(x);
                }
            }
            AggState::Welford { n, mean, m2, .. } => {
                if let Some(x) = v.as_f64() {
                    *n += 1;
                    let delta = x - *mean;
                    *mean += delta / *n as f64;
                    *m2 += delta * (x - *mean);
                }
            }
            AggState::Attr { value, conflicted } => {
                if !v.is_null() && !*conflicted {
                    match value {
                        None => *value = Some(v.clone()),
                        Some(prev) => {
                            if !prev.sql_eq(v) {
                                *conflicted = true;
                                *value = None;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fold another partial state of the same variant into `self`. Every
    /// combination is associative, so per-partition partials merged in
    /// partition-index order reproduce one deterministic result no matter
    /// how many threads computed them:
    ///
    /// * counts/sums add (Avg merges as sum+count, never as a quotient),
    /// * COUNT(DISTINCT) unions the per-partition key sets,
    /// * min/max compare the partition champions,
    /// * median/percentile concatenate collected values (partitions are
    ///   row-order slices, so the concatenation preserves table order),
    /// * stddev/variance combine (n, mean, m2) via Chan's parallel update,
    /// * ATTR stays the single value iff both sides agree.
    ///
    /// Panics on mismatched variants: partitions share a schema, so the
    /// same aggregate slot always accumulates in the same representation.
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::CountStar(a), AggState::CountStar(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (
                AggState::SumInt { sum, any },
                AggState::SumInt {
                    sum: osum,
                    any: oany,
                },
            ) => {
                *sum = sum.wrapping_add(osum);
                *any |= oany;
            }
            (
                AggState::SumFloat { sum, any },
                AggState::SumFloat {
                    sum: osum,
                    any: oany,
                },
            ) => {
                *sum += osum;
                *any |= oany;
            }
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: osum,
                    count: ocount,
                },
            ) => {
                *sum += osum;
                *count += ocount;
            }
            (AggState::MinMax { best, is_min }, AggState::MinMax { best: obest, .. }) => {
                if let Some(v) = obest {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.total_cmp(b);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (
                AggState::Collect { values, .. },
                AggState::Collect {
                    values: ovalues, ..
                },
            ) => {
                values.extend(ovalues);
            }
            (
                AggState::Welford { n, mean, m2, .. },
                AggState::Welford {
                    n: on,
                    mean: omean,
                    m2: om2,
                    ..
                },
            ) => {
                if on == 0 {
                    return;
                }
                if *n == 0 {
                    *n = on;
                    *mean = omean;
                    *m2 = om2;
                    return;
                }
                let total = *n + on;
                let delta = omean - *mean;
                *m2 += om2 + delta * delta * (*n as f64) * (on as f64) / total as f64;
                *mean += delta * on as f64 / total as f64;
                *n = total;
            }
            (
                AggState::Attr { value, conflicted },
                AggState::Attr {
                    value: ovalue,
                    conflicted: oconflicted,
                },
            ) => {
                if oconflicted {
                    *conflicted = true;
                    *value = None;
                } else if !*conflicted {
                    if let Some(v) = ovalue {
                        match value {
                            None => *value = Some(v),
                            Some(prev) => {
                                if !prev.sql_eq(&v) {
                                    *conflicted = true;
                                    *value = None;
                                }
                            }
                        }
                    }
                }
            }
            (s, o) => panic!("partial aggregate state mismatch: {s:?} vs {o:?}"),
        }
    }

    pub fn finish(self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int(n),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::SumInt { sum, any } => {
                if any {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, any } => {
                if any {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Collect {
                mut values, frac, ..
            } => {
                if values.is_empty() {
                    return Value::Null;
                }
                values.sort_by(f64::total_cmp);
                let rank = frac.clamp(0.0, 1.0) * (values.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let v = if lo == hi {
                    values[lo]
                } else {
                    values[lo] + (values[hi] - values[lo]) * (rank - lo as f64)
                };
                Value::Float(v)
            }
            AggState::Welford {
                n, m2, variance, ..
            } => {
                if n < 2 {
                    return Value::Null;
                }
                let var = m2 / (n - 1) as f64;
                Value::Float(if variance { var } else { var.sqrt() })
            }
            AggState::Attr { value, .. } => value.unwrap_or(Value::Null),
        }
    }
}

/// One group's accumulated state: encoded key, representative group
/// values, and one [`AggState`] per aggregate slot.
struct GroupEntry {
    key: Vec<u8>,
    group_vals: Vec<Value>,
    states: Vec<AggState>,
}

/// A (partial) aggregation hash table; `entries` preserves first-seen
/// order, which the merge keeps deterministic across parallelism.
struct GroupTable {
    index: HashMap<Vec<u8>, usize>,
    entries: Vec<GroupEntry>,
}

impl GroupTable {
    fn new() -> GroupTable {
        GroupTable {
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }
}

/// GROUP BY and aggregate-argument expressions compiled once per
/// Aggregate operator, shared across partition workers and spill passes.
struct CompiledAggExprs {
    groups: Vec<CompiledExpr>,
    args: Vec<Option<CompiledExpr>>,
}

fn compile_agg_exprs(
    groups: &[PhysExpr],
    aggs: &[AggCall],
    types: &[DataType],
) -> Result<CompiledAggExprs, CdwError> {
    Ok(CompiledAggExprs {
        groups: groups
            .iter()
            .map(|g| CompiledExpr::compile(g, types))
            .collect::<Result<_, _>>()?,
        args: aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| CompiledExpr::compile(e, types))
                    .transpose()
            })
            .collect::<Result<_, _>>()?,
    })
}

/// Build a group table over one partition (the partial phase; also the
/// whole job for `AggMode::Single`). Group and argument expressions
/// evaluate through the selection vector — a filtered partition never
/// materializes. A global aggregate (no GROUP BY) always yields exactly
/// one entry, even over zero rows.
fn accumulate_groups(
    part: &Part,
    compiled: &CompiledAggExprs,
    aggs: &[AggCall],
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<GroupTable, CdwError> {
    let (group_cols, arg_cols) = timed(eval_ns, || eval_group_args(part, compiled, ctx))?;
    let global = compiled.groups.is_empty();
    Ok(accumulate_pre(&group_cols, &arg_cols, aggs, part.rows(), global).0)
}

/// Evaluate the compiled GROUP BY expressions and aggregate arguments
/// over one partition's surviving rows (dense output columns).
#[allow(clippy::type_complexity)]
fn eval_group_args(
    part: &Part,
    compiled: &CompiledAggExprs,
    ctx: &EvalCtx,
) -> Result<(Vec<Column>, Vec<Option<Column>>), CdwError> {
    eval_group_arg_cols(&part.batch, part.sel(), compiled, ctx)
}

/// [`eval_group_args`] over an explicit batch/selection — the unit the
/// morsel pipeline evaluates (one morsel's surviving rows).
#[allow(clippy::type_complexity)]
fn eval_group_arg_cols(
    batch: &Batch,
    sel: Option<&[usize]>,
    compiled: &CompiledAggExprs,
    ctx: &EvalCtx,
) -> Result<(Vec<Column>, Vec<Option<Column>>), CdwError> {
    let group_cols: Vec<Column> = compiled
        .groups
        .iter()
        .map(|g| g.eval(batch, sel, ctx))
        .collect::<Result<_, _>>()?;
    let arg_cols: Vec<Option<Column>> = compiled
        .args
        .iter()
        .map(|a| a.as_ref().map(|e| e.eval(batch, sel, ctx)).transpose())
        .collect::<Result<_, _>>()?;
    Ok((group_cols, arg_cols))
}

/// The shared accumulation loop over pre-evaluated columns. `global`
/// forces the single no-GROUP-BY entry (even over zero rows).
///
/// Also returns, per entry, the row at which that group first appeared —
/// the spilled path uses it to interleave per-bucket groups back into the
/// in-memory path's first-seen output order. The state-update sequence
/// here is the **only** accumulation loop in the executor, so spilled and
/// in-memory aggregation perform identical floating-point operations.
fn accumulate_pre(
    group_cols: &[Column],
    arg_cols: &[Option<Column>],
    aggs: &[AggCall],
    rows: usize,
    global: bool,
) -> (GroupTable, Vec<usize>) {
    let mut table = GroupTable::new();
    let mut firsts: Vec<usize> = Vec::new();
    accumulate_into(
        &mut table,
        &mut firsts,
        0,
        group_cols,
        arg_cols,
        aggs,
        rows,
        global,
    );
    (table, firsts)
}

/// Fold one chunk of pre-evaluated rows into an existing table. The
/// morsel pipeline calls this once per morsel of a partition, in morsel
/// order, with `row_base` tracking the partition-relative row offset so
/// `firsts` stays in partition coordinates. Because the per-row update
/// sequence is byte-identical to one whole-partition call, the morsel
/// path's aggregation arithmetic matches the materializing path's.
#[allow(clippy::too_many_arguments)]
fn accumulate_into(
    table: &mut GroupTable,
    firsts: &mut Vec<usize>,
    row_base: usize,
    group_cols: &[Column],
    arg_cols: &[Option<Column>],
    aggs: &[AggCall],
    rows: usize,
    global: bool,
) {
    let new_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(arg_cols)
            .map(|(a, c)| AggState::new_for(&a.func, c.as_ref().map(|c| c.dtype())))
            .collect()
    };

    if global {
        if table.entries.is_empty() {
            table.index.insert(Vec::new(), 0);
            table.entries.push(GroupEntry {
                key: Vec::new(),
                group_vals: Vec::new(),
                states: new_states(),
            });
            firsts.push(0);
        }
        for row in 0..rows {
            for (slot, state) in table.entries[0].states.iter_mut().enumerate() {
                match &arg_cols[slot] {
                    Some(c) => state.update(&c.value(row)),
                    None => state.update(&Value::Int(1)),
                }
            }
        }
    } else {
        let refs: Vec<&Column> = group_cols.iter().collect();
        let mut key = Vec::new();
        for row in 0..rows {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            let idx = match table.index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = table.entries.len();
                    table.index.insert(key.clone(), i);
                    table.entries.push(GroupEntry {
                        key: key.clone(),
                        group_vals: group_cols.iter().map(|c| c.value(row)).collect(),
                        states: new_states(),
                    });
                    firsts.push(row_base + row);
                    i
                }
            };
            for (slot, state) in table.entries[idx].states.iter_mut().enumerate() {
                match &arg_cols[slot] {
                    Some(c) => state.update(&c.value(row)),
                    None => state.update(&Value::Int(1)),
                }
            }
        }
    }
}

/// Merge per-partition group tables in partition-index order. `global`
/// guarantees the single no-GROUP-BY entry exists even with zero input
/// partitions (an empty table still aggregates to one row).
fn merge_group_tables(tables: Vec<GroupTable>, global: bool, aggs: &[AggCall]) -> GroupTable {
    let mut iter = tables.into_iter();
    let mut acc = iter.next().unwrap_or_else(|| GroupTable {
        index: HashMap::new(),
        entries: Vec::new(),
    });
    for table in iter {
        for entry in table.entries {
            match acc.index.get(&entry.key) {
                Some(&i) => {
                    let dst = &mut acc.entries[i];
                    for (d, s) in dst.states.iter_mut().zip(entry.states) {
                        d.merge(s);
                    }
                }
                None => {
                    acc.index.insert(entry.key.clone(), acc.entries.len());
                    acc.entries.push(entry);
                }
            }
        }
    }
    if global && acc.entries.is_empty() {
        acc.entries.push(GroupEntry {
            key: Vec::new(),
            group_vals: Vec::new(),
            states: aggs.iter().map(|a| AggState::new(&a.func)).collect(),
        });
    }
    acc
}

/// Finish every group state and materialize the output batch.
fn finish_groups(table: GroupTable, schema: &Arc<Schema>) -> Result<Batch, CdwError> {
    let ngroups = table.entries.len();
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.dtype, ngroups))
        .collect();
    for entry in table.entries {
        let gwidth = entry.group_vals.len();
        for (ci, v) in entry.group_vals.into_iter().enumerate() {
            builders[ci].push(v).map_err(CdwError::from)?;
        }
        for (si, state) in entry.states.into_iter().enumerate() {
            builders[gwidth + si]
                .push(state.finish())
                .map_err(CdwError::from)?;
        }
    }
    Batch::new(
        schema.clone(),
        builders.into_iter().map(|b| b.finish()).collect(),
    )
    .map_err(CdwError::from)
}

// ---------------------------------------------------------------------
// spilling aggregation
// ---------------------------------------------------------------------

/// FNV-1a over an encoded group/join key, reduced to a bucket index. The
/// same function routes build and probe rows, so equal keys always meet
/// in the same bucket.
fn key_bucket(key: &[u8], nbuckets: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % nbuckets as u64) as usize
}

/// Memory-budgeted aggregation: hash-partition input rows by group key
/// into spilled bucket files, aggregate one bucket at a time, and
/// interleave the per-bucket groups back into first-seen order.
///
/// `parts` carries the same partition structure the in-memory path would
/// aggregate (the caller passes the concatenated input as one "partition"
/// for `AggMode::Single`, and the storage partitions for a fused
/// `Final`-over-`Partial` pair). Inside each bucket, a fresh partial
/// table is accumulated per partition and merged in partition-index order
/// — the identical arithmetic structure of the in-memory path restricted
/// to the bucket's groups, so every group's final state is bit-identical.
/// Output order is restored by sorting groups on their first occurrence
/// `(partition, row)`, which is exactly the order the in-memory merge
/// emits.
///
/// Returns the finished batch plus the total partial-group count (the
/// `rows_out` of the Partial operator in two-phase stats).
#[allow(clippy::too_many_arguments)]
fn spilled_aggregate(
    parts: &[Part],
    compiled: &CompiledAggExprs,
    aggs: &[AggCall],
    schema: &Arc<Schema>,
    ctx: &ExecCtx,
    estimate: usize,
    eval_ns: &AtomicU64,
) -> Result<(Batch, usize), CdwError> {
    let nbuckets = ctx.memory.bucket_count(estimate);
    ctx.memory.record_rounds(nbuckets);
    let gw = compiled.groups.len();
    // Spill-record column layout: group cols, present agg args, row id.
    let mut arg_slots: Vec<Option<usize>> = Vec::with_capacity(aggs.len());
    let mut next_slot = gw;
    for a in aggs {
        if a.arg.is_some() {
            arg_slots.push(Some(next_slot));
            next_slot += 1;
        } else {
            arg_slots.push(None);
        }
    }
    let row_slot = next_slot;

    // Phase 1: evaluate each partition, route rows to buckets, spill one
    // record per (bucket, partition) — empty records keep the partition
    // alignment the per-bucket merge relies on.
    let mut writers: Vec<SpillWriter> = (0..nbuckets)
        .map(|_| SpillWriter::create())
        .collect::<Result<_, _>>()?;
    for part in parts {
        let (group_cols, arg_cols) = timed(eval_ns, || eval_group_args(part, compiled, &ctx.eval))?;
        let mut fields: Vec<Field> = group_cols
            .iter()
            .enumerate()
            .map(|(i, c)| Field::new(format!("g{i}"), c.dtype()))
            .collect();
        let mut spill_cols: Vec<Column> = group_cols.clone();
        for (j, c) in arg_cols.iter().enumerate() {
            if let Some(c) = c {
                fields.push(Field::new(format!("a{j}"), c.dtype()));
                spill_cols.push(c.clone());
            }
        }
        fields.push(Field::new("__row", DataType::Int));
        let spill_schema = Arc::new(Schema::new(fields));

        let refs: Vec<&Column> = group_cols.iter().collect();
        let mut route: Vec<Vec<usize>> = vec![Vec::new(); nbuckets];
        let mut key = Vec::new();
        for row in 0..part.rows() {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            route[key_bucket(&key, nbuckets)].push(row);
        }
        for (b, rows) in route.iter().enumerate() {
            let mut cols: Vec<Column> = spill_cols.iter().map(|c| c.take(rows)).collect();
            cols.push(Column::from_ints(rows.iter().map(|&r| r as i64).collect()));
            let bytes = writers[b].append(&Batch::new(spill_schema.clone(), cols)?)?;
            ctx.memory.record_spill(bytes);
        }
    }
    let handles: Vec<SpillHandle> = writers
        .into_iter()
        .map(SpillWriter::finish)
        .collect::<Result<_, _>>()?;

    // Phase 2 (parallel across buckets): per bucket, rebuild the
    // per-partition partial tables and merge them in partition order,
    // remembering each group's first (partition, row).
    type BucketGroups = (Vec<(u64, i64, GroupEntry)>, usize);
    let arg_slots = &arg_slots;
    let per_bucket: Vec<BucketGroups> = par_map(
        ctx,
        handles,
        |h| h.bytes() as usize,
        |handle| {
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            let mut acc: Vec<(u64, i64, GroupEntry)> = Vec::new();
            let mut partial_rows = 0usize;
            for (p, rec) in handle.read_all()?.into_iter().enumerate() {
                let group_cols = rec.columns()[..gw].to_vec();
                let arg_cols: Vec<Option<Column>> = arg_slots
                    .iter()
                    .map(|s| s.map(|i| rec.column(i).clone()))
                    .collect();
                let (table, firsts) =
                    accumulate_pre(&group_cols, &arg_cols, aggs, rec.num_rows(), false);
                let row_ids = rec.column(row_slot).ints().expect("row-id column");
                partial_rows += table.entries.len();
                for (i, entry) in table.entries.into_iter().enumerate() {
                    match index.get(&entry.key) {
                        Some(&j) => {
                            for (d, s) in acc[j].2.states.iter_mut().zip(entry.states) {
                                d.merge(s);
                            }
                        }
                        None => {
                            index.insert(entry.key.clone(), acc.len());
                            acc.push((p as u64, row_ids[firsts[i]], entry));
                        }
                    }
                }
            }
            Ok((acc, partial_rows))
        },
    )?;

    // Interleave buckets back into global first-seen order.
    let partial_rows = per_bucket.iter().map(|(_, n)| n).sum();
    let mut flat: Vec<(u64, i64, GroupEntry)> =
        per_bucket.into_iter().flat_map(|(acc, _)| acc).collect();
    flat.sort_by_key(|&(p, r, _)| (p, r));
    let entries: Vec<GroupEntry> = flat.into_iter().map(|(_, _, e)| e).collect();
    let batch = finish_groups(
        GroupTable {
            index: HashMap::new(),
            entries,
        },
        schema,
    )?;
    Ok((batch, partial_rows))
}

// ---------------------------------------------------------------------
// external (spilling) sort
// ---------------------------------------------------------------------

/// One run's read state during the k-way merge: a streaming reader plus
/// the current page. Only one page per run is resident at a time.
struct RunCursor {
    reader: SpillReader,
    page: Option<Batch>,
    pos: usize,
}

impl RunCursor {
    fn open(handle: &SpillHandle) -> Result<RunCursor, CdwError> {
        let mut cursor = RunCursor {
            reader: handle.reader()?,
            page: None,
            pos: 0,
        };
        cursor.load_next_page()?;
        Ok(cursor)
    }

    fn load_next_page(&mut self) -> Result<(), CdwError> {
        self.pos = 0;
        // Skip zero-row pages defensively (none are written in practice).
        loop {
            self.page = self.reader.next_batch()?;
            match &self.page {
                Some(p) if p.num_rows() == 0 => continue,
                _ => return Ok(()),
            }
        }
    }

    fn advance(&mut self) -> Result<(), CdwError> {
        self.pos += 1;
        if let Some(p) = &self.page {
            if self.pos >= p.num_rows() {
                self.load_next_page()?;
            }
        }
        Ok(())
    }

    /// Original row id of the cursor's current row (the merge tiebreak).
    fn row_id(&self, kw: usize) -> i64 {
        let page = self.page.as_ref().expect("live cursor");
        page.column(kw).ints().expect("row-id column")[self.pos]
    }
}

/// Merge comparator: `(sort keys, original row id)`. Runs cover disjoint
/// ascending row ranges and each run is sorted stably, so this total
/// order is exactly what a stable in-memory sort of the whole input
/// produces. Compares key column by key column on the stack — this runs
/// once per (output row × live run), so it must not allocate.
fn cursor_cmp(
    a: &RunCursor,
    b: &RunCursor,
    kw: usize,
    keys: &[sort::SortKey],
) -> std::cmp::Ordering {
    let pa = a.page.as_ref().expect("live cursor");
    let pb = b.page.as_ref().expect("live cursor");
    for (k, key) in keys.iter().enumerate() {
        let ord = sort::compare_rows_pair(
            &[&pa.columns()[k]],
            a.pos,
            &[&pb.columns()[k]],
            b.pos,
            std::slice::from_ref(key),
        );
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.row_id(kw).cmp(&b.row_id(kw))
}

/// Memory-budgeted sort: spill sorted runs of (key columns, row id) in
/// pages, then k-way merge the runs into a global row permutation and
/// gather the input through it.
fn spilled_sort(
    batch: &Batch,
    key_cols: &[Column],
    sort_keys: &[sort::SortKey],
    ctx: &ExecCtx,
    estimate: usize,
) -> Result<Batch, CdwError> {
    let rows = batch.num_rows();
    let nruns = ctx.memory.run_count(estimate, rows);
    let run_len = rows.div_ceil(nruns);
    let page_rows = run_len.div_ceil(4).max(1);
    let kw = key_cols.len();

    let mut fields: Vec<Field> = key_cols
        .iter()
        .enumerate()
        .map(|(i, c)| Field::new(format!("k{i}"), c.dtype()))
        .collect();
    fields.push(Field::new("__row", DataType::Int));
    let spill_schema = Arc::new(Schema::new(fields));

    let refs: Vec<&Column> = key_cols.iter().collect();
    let mut handles: Vec<SpillHandle> = Vec::with_capacity(nruns);
    let mut start = 0;
    while start < rows {
        let end = (start + run_len).min(rows);
        let mut idx: Vec<usize> = (start..end).collect();
        // Stable within the run; runs are disjoint ascending ranges.
        sort::sort_subset(&refs, sort_keys, &mut idx);
        let mut writer = SpillWriter::create()?;
        for chunk in idx.chunks(page_rows) {
            let mut cols: Vec<Column> = key_cols.iter().map(|c| c.take(chunk)).collect();
            cols.push(Column::from_ints(chunk.iter().map(|&r| r as i64).collect()));
            let bytes = writer.append(&Batch::new(spill_schema.clone(), cols)?)?;
            ctx.memory.record_spill(bytes);
        }
        handles.push(writer.finish()?);
        ctx.memory.record_rounds(1);
        start = end;
    }

    let merged = merge_spilled_runs(&handles, kw, sort_keys, rows)?;
    Ok(batch.take(&merged))
}

/// K-way merge spilled sorted runs into the output permutation. Shared by
/// the static spilled sort and the morselized one: identical run order
/// and the identical `(keys, row id)` comparator produce the identical
/// permutation, however the runs were generated.
fn merge_spilled_runs(
    handles: &[SpillHandle],
    kw: usize,
    sort_keys: &[sort::SortKey],
    rows: usize,
) -> Result<Vec<usize>, CdwError> {
    let mut cursors: Vec<RunCursor> = handles
        .iter()
        .map(RunCursor::open)
        .collect::<Result<_, _>>()?;
    let mut merged: Vec<usize> = Vec::with_capacity(rows);
    loop {
        let mut best: Option<usize> = None;
        for i in 0..cursors.len() {
            if cursors[i].page.is_none() {
                continue;
            }
            best = Some(match best {
                None => i,
                Some(j) => {
                    if cursor_cmp(&cursors[i], &cursors[j], kw, sort_keys)
                        == std::cmp::Ordering::Less
                    {
                        i
                    } else {
                        j
                    }
                }
            });
        }
        let Some(i) = best else { break };
        merged.push(cursors[i].row_id(kw) as usize);
        cursors[i].advance()?;
    }
    debug_assert_eq!(merged.len(), rows);
    Ok(merged)
}

// ---------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------

/// The shared build side of a hash join: constructed once over the whole
/// right input, then probed concurrently by left partitions (via `Arc`).
struct JoinBuild {
    /// key -> right-row indices; `None` for cross/keyless joins, which
    /// probe the full right batch per left row.
    table: Option<HashMap<Vec<u8>, Vec<usize>>>,
}

/// Build the in-memory hash table over pre-evaluated right key columns.
fn build_join_table(right_rows: usize, rcols: &[Column], keyed: bool) -> JoinBuild {
    if !keyed {
        return JoinBuild { table: None };
    }
    let rrefs: Vec<&Column> = rcols.iter().collect();
    // SQL join keys never match on NULL.
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    let mut key = Vec::new();
    for ri in 0..right_rows {
        if rrefs.iter().any(|c| c.is_null(ri)) {
            continue;
        }
        key.clear();
        hash::encode_key(&rrefs, ri, &mut key);
        table.entry(key.clone()).or_default().push(ri);
    }
    JoinBuild { table: Some(table) }
}

/// Candidate `(left, right)` pairs for one probe unit — a whole left
/// partition or a morsel slice of one. Hash probes visit left rows in
/// ascending order (per-key right matches accumulate in build order), and
/// keyless/cross joins emit the full cartesian product, so splitting a
/// partition into morsels concatenates to exactly the whole-partition
/// pair sequence.
fn probe_pairs(
    left: &Batch,
    rrows: usize,
    build: &JoinBuild,
    left_keys: &[CompiledExpr],
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<Vec<(usize, usize)>, CdwError> {
    let lrows = left.num_rows();
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    match &build.table {
        None => {
            for li in 0..lrows {
                for ri in 0..rrows {
                    pairs.push((li, ri));
                }
            }
        }
        Some(table) => {
            let lcols: Vec<Column> = timed(eval_ns, || {
                left_keys
                    .iter()
                    .map(|k| k.eval(left, None, ctx))
                    .collect::<Result<_, _>>()
            })?;
            let lrefs: Vec<&Column> = lcols.iter().collect();
            let mut key = Vec::new();
            for li in 0..lrows {
                if lrefs.iter().any(|c| c.is_null(li)) {
                    continue;
                }
                key.clear();
                hash::encode_key(&lrefs, li, &mut key);
                if let Some(matches) = table.get(&key) {
                    for &ri in matches {
                        pairs.push((li, ri));
                    }
                }
            }
        }
    }
    Ok(pairs)
}

/// Drop candidate pairs whose residual predicate is not TRUE. The mask
/// evaluates elementwise over the candidate rows stacked in the join
/// schema, so the verdict for a pair cannot depend on which probe unit
/// (partition or morsel) carried it.
#[allow(clippy::too_many_arguments)]
fn filter_residual_pairs(
    pairs: Vec<(usize, usize)>,
    left: &Batch,
    right: &Batch,
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<Vec<(usize, usize)>, CdwError> {
    let Some(pred) = residual else {
        return Ok(pairs);
    };
    if pairs.is_empty() {
        return Ok(pairs);
    }
    let lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let ridx: Vec<usize> = pairs.iter().map(|p| p.1).collect();
    let candidate = hstack(schema, &left.take(&lidx), &right.take(&ridx))?;
    let mask_col = timed(eval_ns, || pred.eval(&candidate, None, ctx))?;
    let mut kept = Vec::with_capacity(pairs.len());
    for (i, pair) in pairs.iter().enumerate() {
        if mask_col.value(i) == Value::Bool(true) {
            kept.push(*pair);
        }
    }
    Ok(kept)
}

/// Gather join output columns for `(left idx, optional right idx)` rows;
/// a `None` right index null-extends the right half (LEFT/FULL).
///
/// Assembly is a vectorized gather per column ([`Column::take`] /
/// [`Column::take_opt`]), not a per-cell `Value` push — the old builder
/// loop allocated a `String` for every Text cell, and that malloc churn
/// (multiplied across probe workers) was what made parallel LEFT-join
/// probes slower than serial. `take_opt` writes builder-default payloads
/// into null slots, so the output stays byte-identical to the builder
/// loop it replaces.
fn assemble_join_columns(
    left: &Batch,
    right: &Batch,
    lidx: &[usize],
    ridx: &[Option<usize>],
    schema: &Arc<Schema>,
) -> Result<Batch, CdwError> {
    let lwidth = left.num_columns();
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let col = if c < lwidth {
            left.column(c).take(lidx)
        } else {
            right.column(c - lwidth).take_opt(ridx)
        };
        columns.push(coerce_column(col, field.dtype)?);
    }
    Batch::new(schema.clone(), columns).map_err(CdwError::from)
}

/// Join one left partition against the shared build side. Returns the
/// output part (matched pairs in left-row order, then — for LEFT/FULL —
/// this partition's null-extended unmatched left rows) and the right rows
/// it matched (consumed by FULL's unmatched-right sweep).
#[allow(clippy::too_many_arguments)]
fn probe_partition(
    left: &Batch,
    right: &Batch,
    build: &JoinBuild,
    kind: JoinKind,
    left_keys: &[CompiledExpr],
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<(Batch, Vec<usize>), CdwError> {
    let pairs = probe_pairs(left, right.num_rows(), build, left_keys, ctx, eval_ns)?;
    assemble_join_output(left, right, pairs, kind, residual, schema, ctx, eval_ns)
}

/// Probe one left **morsel**, keeping the LEFT/FULL null-extended tail
/// separate from the matches. A whole-partition probe emits all matches
/// (ascending left row) followed by all unmatched lefts (ascending), so
/// per-partition regrouping — every morsel's matches in morsel order,
/// then every morsel's tail in morsel order — concatenates to exactly
/// that order. Matched right rows come back per morsel; FULL's
/// unmatched-right sweep only needs their union across morsels.
#[allow(clippy::too_many_arguments)]
fn probe_morsel_split(
    left: &Batch,
    right: &Batch,
    build: &JoinBuild,
    kind: JoinKind,
    left_keys: &[CompiledExpr],
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<(Batch, Option<Batch>, Vec<usize>), CdwError> {
    let pairs = probe_pairs(left, right.num_rows(), build, left_keys, ctx, eval_ns)?;
    let pairs = filter_residual_pairs(pairs, left, right, residual, schema, ctx, eval_ns)?;
    let matched_right: Vec<usize> = if kind == JoinKind::Full {
        pairs.iter().map(|p| p.1).collect()
    } else {
        Vec::new()
    };
    let tail = if matches!(kind, JoinKind::Left | JoinKind::Full) {
        let mut matched_left = vec![false; left.num_rows()];
        for &(li, _) in &pairs {
            matched_left[li] = true;
        }
        let t_lidx: Vec<usize> = matched_left
            .iter()
            .enumerate()
            .filter(|(_, m)| !**m)
            .map(|(li, _)| li)
            .collect();
        if t_lidx.is_empty() {
            None
        } else {
            let t_ridx: Vec<Option<usize>> = vec![None; t_lidx.len()];
            Some(assemble_join_columns(
                left, right, &t_lidx, &t_ridx, schema,
            )?)
        }
    } else {
        None
    };
    let lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let ridx: Vec<Option<usize>> = pairs.iter().map(|p| Some(p.1)).collect();
    let matches = assemble_join_columns(left, right, &lidx, &ridx, schema)?;
    Ok((matches, tail, matched_right))
}

/// Turn candidate `(left, right)` pairs into this partition's output
/// batch: residual filtering, LEFT/FULL null-extension of unmatched left
/// rows, and column assembly. Shared by the in-memory probe and the
/// Grace-spilled join (which feeds pairs sorted into the same
/// `(left row, right row)` order the in-memory probe emits), so both
/// paths produce byte-identical partition outputs.
#[allow(clippy::too_many_arguments)]
fn assemble_join_output(
    left: &Batch,
    right: &Batch,
    pairs: Vec<(usize, usize)>,
    kind: JoinKind,
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
    eval_ns: &AtomicU64,
) -> Result<(Batch, Vec<usize>), CdwError> {
    let pairs = filter_residual_pairs(pairs, left, right, residual, schema, ctx, eval_ns)?;

    let matched_right: Vec<usize> = if kind == JoinKind::Full {
        pairs.iter().map(|p| p.1).collect()
    } else {
        Vec::new()
    };

    let mut lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let mut ridx: Vec<Option<usize>> = pairs.iter().map(|p| Some(p.1)).collect();
    if matches!(kind, JoinKind::Left | JoinKind::Full) {
        let mut matched_left = vec![false; left.num_rows()];
        for &(li, _) in &pairs {
            matched_left[li] = true;
        }
        for (li, m) in matched_left.iter().enumerate() {
            if !m {
                lidx.push(li);
                ridx.push(None);
            }
        }
    }
    let batch = assemble_join_columns(left, right, &lidx, &ridx, schema)?;
    Ok((batch, matched_right))
}

/// FULL OUTER tail: right rows no probe partition matched, null-extended
/// on the left.
fn assemble_right_only(
    right: &Batch,
    unmatched: &[usize],
    schema: &Arc<Schema>,
    lwidth: usize,
) -> Result<Batch, CdwError> {
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        if c < lwidth {
            columns.push(Column::nulls(field.dtype, unmatched.len()));
        } else {
            let col = right.column(c - lwidth).take(unmatched);
            columns.push(coerce_column(col, field.dtype)?);
        }
    }
    Batch::new(schema.clone(), columns).map_err(CdwError::from)
}

/// Horizontally stack two equal-length batches under the join schema.
fn hstack(schema: &Arc<Schema>, left: &Batch, right: &Batch) -> Result<Batch, CdwError> {
    let mut cols = left.columns().to_vec();
    cols.extend(right.columns().iter().cloned());
    Batch::new(schema.clone(), cols).map_err(CdwError::from)
}

/// Row-page size for Grace bucket routing (bounds the transient per-page
/// bucket index lists, not correctness).
const GRACE_PAGE_ROWS: usize = 8192;

/// Route one side's key material into per-bucket spill files. Each record
/// holds the key columns plus the global row index (and, when `part` is
/// given, a constant partition-id column for the probe side). Rows whose
/// key contains NULL are skipped — they can never match, and the
/// LEFT/FULL unmatched sweeps pick them up downstream exactly as in the
/// in-memory path.
fn spill_key_material(
    writers: &mut [SpillWriter],
    key_cols: &[Column],
    rows: usize,
    spill_schema: &Arc<Schema>,
    part: Option<usize>,
    ctx: &ExecCtx,
) -> Result<(), CdwError> {
    let nbuckets = writers.len();
    let refs: Vec<&Column> = key_cols.iter().collect();
    let mut key = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + GRACE_PAGE_ROWS).min(rows);
        let mut route: Vec<Vec<usize>> = vec![Vec::new(); nbuckets];
        for row in start..end {
            if refs.iter().any(|c| c.is_null(row)) {
                continue;
            }
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            route[key_bucket(&key, nbuckets)].push(row);
        }
        for (b, idx) in route.iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            let mut cols: Vec<Column> = key_cols.iter().map(|c| c.take(idx)).collect();
            cols.push(Column::from_ints(idx.iter().map(|&r| r as i64).collect()));
            if let Some(p) = part {
                cols.push(Column::from_ints(vec![p as i64; idx.len()]));
            }
            let bytes = writers[b].append(&Batch::new(spill_schema.clone(), cols)?)?;
            ctx.memory.record_spill(bytes);
        }
        start = end;
    }
    Ok(())
}

/// One Grace bucket pass: rebuild the bucket's hash table from its
/// spilled build records, probe its spilled probe records, and return the
/// global `(left, right)` pairs it matched, grouped by probe partition.
/// Pairs are unique across buckets (a pair's key lives in exactly one
/// bucket), so bucket passes commute — the caller's per-partition
/// `(left row, right row)` sort restores one canonical order no matter
/// how (or in what order) buckets ran.
fn grace_bucket_pairs(
    bh: &SpillHandle,
    ph: &SpillHandle,
    kw: usize,
    nparts: usize,
) -> Result<Vec<Vec<(usize, usize)>>, CdwError> {
    let mut pairs_per_part: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nparts];
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    let mut key = Vec::new();
    let mut reader = bh.reader()?;
    while let Some(rec) = reader.next_batch()? {
        let refs: Vec<&Column> = rec.columns()[..kw].iter().collect();
        let idx = rec.column(kw).ints().expect("__idx column");
        for (row, &ri) in idx.iter().enumerate() {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            table.entry(key.clone()).or_default().push(ri as usize);
        }
    }
    let mut reader = ph.reader()?;
    while let Some(rec) = reader.next_batch()? {
        let refs: Vec<&Column> = rec.columns()[..kw].iter().collect();
        let idx = rec.column(kw).ints().expect("__idx column");
        let parts = rec.column(kw + 1).ints().expect("__part column");
        for (row, &li) in idx.iter().enumerate() {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            if let Some(matches) = table.get(&key) {
                let out = &mut pairs_per_part[parts[row] as usize];
                for &ri in matches {
                    out.push((li as usize, ri));
                }
            }
        }
    }
    Ok(pairs_per_part)
}

/// Grace-style memory-budgeted hash join: both sides' key material is
/// hash-partitioned into spilled bucket files; one bucket's build table
/// is resident at a time. Matched pairs carry global row indices, so
/// sorting each probe partition's pairs by `(left row, right row)`
/// restores exactly the order the in-memory probe emits (per-key right
/// matches accumulate in ascending right-row order on both paths), and
/// the shared [`assemble_join_output`] does the rest. Returns one
/// `(batch, matched right rows)` per left partition, like the in-memory
/// probe fan-out.
///
/// Morsel mode parallelizes the two hot phases without touching the
/// spilled layout: probe-side key expressions evaluate per morsel (the
/// concatenated columns — and therefore the bucket files — are identical
/// to one whole-partition pass), and bucket passes run on the
/// work-stealing scheduler (byte-seeded), commuting as documented on
/// [`grace_bucket_pairs`].
#[allow(clippy::too_many_arguments)]
fn spilled_join(
    lparts: &[Batch],
    right: &Arc<Batch>,
    rcols: &[Column],
    kind: JoinKind,
    left_keys: &[CompiledExpr],
    residual: Option<&CompiledExpr>,
    schema: &Arc<Schema>,
    ctx: &ExecCtx,
    estimate: usize,
    eval_ns: &AtomicU64,
    morsels: &AtomicUsize,
) -> Result<Vec<(Batch, Vec<usize>)>, CdwError> {
    let nbuckets = ctx.memory.bucket_count(estimate);
    ctx.memory.record_rounds(nbuckets);
    let kw = rcols.len();

    // Build-side files: [key cols..., __idx].
    let mut bfields: Vec<Field> = rcols
        .iter()
        .enumerate()
        .map(|(i, c)| Field::new(format!("k{i}"), c.dtype()))
        .collect();
    bfields.push(Field::new("__idx", DataType::Int));
    let bschema = Arc::new(Schema::new(bfields.clone()));
    let mut bwriters: Vec<SpillWriter> = (0..nbuckets)
        .map(|_| SpillWriter::create())
        .collect::<Result<_, _>>()?;
    spill_key_material(&mut bwriters, rcols, right.num_rows(), &bschema, None, ctx)?;
    let bhandles: Vec<SpillHandle> = bwriters
        .into_iter()
        .map(SpillWriter::finish)
        .collect::<Result<_, _>>()?;

    // Probe-side files: [key cols..., __idx, __part], appended in
    // partition order.
    let mut pwriters: Vec<SpillWriter> = (0..nbuckets)
        .map(|_| SpillWriter::create())
        .collect::<Result<_, _>>()?;
    for (p, left) in lparts.iter().enumerate() {
        let lcols: Vec<Column> = if ctx.morsel_exec().is_some() {
            pipeline::morsel_eval_columns(left, left_keys, ctx, eval_ns, morsels)?
        } else {
            timed(eval_ns, || {
                left_keys
                    .iter()
                    .map(|k| k.eval(left, None, &ctx.eval))
                    .collect::<Result<_, _>>()
            })?
        };
        let mut pfields: Vec<Field> = lcols
            .iter()
            .enumerate()
            .map(|(i, c)| Field::new(format!("k{i}"), c.dtype()))
            .collect();
        pfields.push(Field::new("__idx", DataType::Int));
        pfields.push(Field::new("__part", DataType::Int));
        let pschema = Arc::new(Schema::new(pfields));
        spill_key_material(
            &mut pwriters,
            &lcols,
            left.num_rows(),
            &pschema,
            Some(p),
            ctx,
        )?;
    }
    let phandles: Vec<SpillHandle> = pwriters
        .into_iter()
        .map(SpillWriter::finish)
        .collect::<Result<_, _>>()?;

    // Bucket passes: rebuild one bucket's hash table, probe its spilled
    // probe rows, collect global (left, right) pairs per partition.
    // Morsel mode runs buckets on the work-stealing scheduler; the
    // static oracle keeps the sequential one-bucket-at-a-time loop.
    let nparts = lparts.len();
    let per_bucket: Vec<Vec<Vec<(usize, usize)>>> = if ctx.morsel_exec().is_some() {
        let items: Vec<(&SpillHandle, &SpillHandle)> =
            bhandles.iter().zip(phandles.iter()).collect();
        par_map(
            ctx,
            items,
            |(bh, ph)| (bh.bytes() + ph.bytes()) as usize,
            |(bh, ph)| grace_bucket_pairs(bh, ph, kw, nparts),
        )?
    } else {
        bhandles
            .iter()
            .zip(&phandles)
            .map(|(bh, ph)| grace_bucket_pairs(bh, ph, kw, nparts))
            .collect::<Result<_, _>>()?
    };
    let mut pairs_per_part: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nparts];
    for bucket in per_bucket {
        for (p, pairs) in bucket.into_iter().enumerate() {
            pairs_per_part[p].extend(pairs);
        }
    }

    // Restore in-memory probe order, then assemble (parallel across
    // partitions, like the in-memory fan-out).
    let items: Vec<(Batch, Vec<(usize, usize)>)> = lparts
        .iter()
        .cloned()
        .zip(pairs_per_part.into_iter().map(|mut pairs| {
            pairs.sort_unstable();
            pairs
        }))
        .collect();
    par_map(
        ctx,
        items,
        |(left, pairs)| left.byte_size() + 16 * pairs.len(),
        |(left, pairs)| {
            assemble_join_output(
                &left, right, pairs, kind, residual, schema, &ctx.eval, eval_ns,
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sigma_value::Field;

    fn int_parts(n: usize) -> Vec<Batch> {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        (0..n)
            .map(|i| Batch::new(schema.clone(), vec![Column::from_ints(vec![i as i64])]).unwrap())
            .collect()
    }

    /// `par_map` must actually distribute work across worker threads (the
    /// wall-clock benches can't prove this on a single-core machine;
    /// thread identity can). Under work stealing one worker *could* drain
    /// the queue before the others start, so the tasks hold a latch open
    /// until a second thread arrives, bounded by a deadline.
    #[test]
    fn par_map_distributes_across_threads() {
        scheduler::grow_worker_pool_target(4);
        let catalog = Catalog::new();
        let results = HashMap::new();
        let ctx = ExecCtx {
            catalog: &catalog,
            results: &results,
            eval: EvalCtx::default(),
            parallelism: 4,
            morsel_rows: Some(DEFAULT_MORSEL_ROWS),
            adaptive_morsels: false,
            memory: ExecMemoryTracker::new(None),
            sched: scheduler::SchedCounters::default(),
        };
        let seen = Mutex::new(HashSet::new());
        let out = par_map(
            &ctx,
            int_parts(8),
            |_| 1,
            |b| {
                seen.lock().insert(std::thread::current().id());
                let deadline = Instant::now() + Duration::from_secs(2);
                while seen.lock().len() < 2 && Instant::now() < deadline {
                    std::thread::yield_now();
                }
                Ok(b.num_rows())
            },
        )
        .unwrap();
        assert_eq!(out, vec![1; 8]);
        assert!(seen.lock().len() >= 2, "expected multiple worker threads");
    }

    /// Serial mode must not spawn workers at all.
    #[test]
    fn par_map_serial_stays_on_caller_thread() {
        let catalog = Catalog::new();
        let results = HashMap::new();
        let ctx = ExecCtx {
            catalog: &catalog,
            results: &results,
            eval: EvalCtx::default(),
            parallelism: 1,
            morsel_rows: Some(DEFAULT_MORSEL_ROWS),
            adaptive_morsels: false,
            memory: ExecMemoryTracker::new(None),
            sched: scheduler::SchedCounters::default(),
        };
        let caller = std::thread::current().id();
        par_map(
            &ctx,
            int_parts(4),
            |_| 1,
            |_| {
                assert_eq!(std::thread::current().id(), caller);
                Ok(())
            },
        )
        .unwrap();
    }

    fn test_ctx<'a>(
        catalog: &'a Catalog,
        results: &'a HashMap<String, Batch>,
        parallelism: usize,
    ) -> ExecCtx<'a> {
        ExecCtx {
            catalog,
            results,
            eval: EvalCtx::default(),
            parallelism,
            morsel_rows: Some(DEFAULT_MORSEL_ROWS),
            adaptive_morsels: false,
            memory: ExecMemoryTracker::new(None),
            sched: scheduler::SchedCounters::default(),
        }
    }

    fn sealed_spill_files(n: usize) -> Vec<SpillHandle> {
        int_parts(n)
            .into_iter()
            .map(|b| {
                let mut w = SpillWriter::create().unwrap();
                w.append(&b).unwrap();
                w.finish().unwrap()
            })
            .collect()
    }

    /// Fault injection for the spilling operators: their per-bucket passes
    /// hand sealed [`SpillHandle`]s to `par_map` workers. Killing one
    /// worker mid-pass must surface as a single exec error AND leave the
    /// process spill directory empty — the handle held by the dying worker
    /// drops during its unwind, and every unclaimed handle drops when the
    /// scheduler's slots unwind out of `run_stealing`.
    #[test]
    fn killed_spill_worker_leaves_no_temp_files() {
        scheduler::grow_worker_pool_target(4);
        let _guard = crate::storage::spill_test_support::lock();
        let catalog = Catalog::new();
        let results = HashMap::new();
        let ctx = test_ctx(&catalog, &results, 4);
        let items: Vec<(usize, SpillHandle)> =
            sealed_spill_files(4).into_iter().enumerate().collect();
        assert_eq!(
            crate::storage::spill_test_support::live_spill_files().len(),
            4
        );
        let err = par_map(
            &ctx,
            items,
            |(_, h)| h.bytes() as usize,
            |(i, h)| {
                if i == 1 {
                    panic!("worker killed mid-spill");
                }
                Ok(h.read_all()?.len())
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("parallel worker panicked"),
            "unexpected error: {err}"
        );
        assert!(
            crate::storage::spill_test_support::live_spill_files().is_empty(),
            "killed worker leaked spill files"
        );
        assert!(crate::storage::spill_test_support::spill_dir_reclaimed());
    }

    /// Same exit path, error return instead of panic: a worker's
    /// `Err` must propagate verbatim while all spill files (in-flight and
    /// never-claimed) are removed.
    #[test]
    fn spill_worker_error_propagates_and_cleans_up() {
        scheduler::grow_worker_pool_target(4);
        let _guard = crate::storage::spill_test_support::lock();
        let catalog = Catalog::new();
        let results = HashMap::new();
        let ctx = test_ctx(&catalog, &results, 4);
        let items: Vec<(usize, SpillHandle)> =
            sealed_spill_files(6).into_iter().enumerate().collect();
        let err = par_map(
            &ctx,
            items,
            |(_, h)| h.bytes() as usize,
            |(i, h)| {
                let _ = h.read_all()?;
                if i >= 2 {
                    return Err(CdwError::exec("injected disk failure"));
                }
                Ok(())
            },
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("injected disk failure"),
            "unexpected error: {err}"
        );
        assert!(
            crate::storage::spill_test_support::live_spill_files().is_empty(),
            "failed worker leaked spill files"
        );
        assert!(crate::storage::spill_test_support::spill_dir_reclaimed());
    }

    /// Partial-state merging is associative for the FP-sensitive states:
    /// merging per-partition Welford states in partition order matches a
    /// deterministic left fold, and Avg merges as sum+count.
    #[test]
    fn agg_state_merge_matches_fold() {
        let chunks: [&[f64]; 3] = [&[1.0, 2.0, 3.0], &[10.0], &[4.0, -2.5, 0.0, 7.5]];
        let mut merged = AggState::new(&AggFunc::Variance);
        for chunk in chunks {
            let mut partial = AggState::new(&AggFunc::Variance);
            for &x in chunk {
                partial.update(&Value::Float(x));
            }
            merged.merge(partial);
        }
        let mut serial = AggState::new(&AggFunc::Variance);
        for chunk in chunks {
            for &x in chunk {
                serial.update(&Value::Float(x));
            }
        }
        // Chan's combination is not bit-equal to streaming Welford, but it
        // must agree to fp tolerance — and be deterministic.
        let (Value::Float(m), Value::Float(s)) = (merged.finish(), serial.finish()) else {
            panic!("variance yields floats");
        };
        assert!((m - s).abs() < 1e-9, "{m} vs {s}");

        let mut avg = AggState::new(&AggFunc::Avg);
        avg.update(&Value::Float(1.0));
        let mut other = AggState::new(&AggFunc::Avg);
        other.update(&Value::Float(2.0));
        other.update(&Value::Float(6.0));
        avg.merge(other);
        assert_eq!(avg.finish(), Value::Float(3.0));
    }
}
