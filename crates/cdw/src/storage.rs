//! Partitioned columnar table storage and spill-file management.
//!
//! Tables hold their rows as a list of same-schema [`Batch`] partitions, the
//! unit of parallel scanning. Writes append new partitions; UPDATE/DELETE
//! rewrite affected partitions in place (the simulator favors simplicity
//! over MVCC — the paper's warehouses own that problem).
//!
//! The spill half ([`SpillWriter`] / [`SpillHandle`] / [`SpillReader`])
//! backs the memory-budgeted operators in [`crate::exec`]: a spill file is
//! a sequence of length-prefixed records in the `sigma_value::codec` wire
//! format, written once, then read back sequentially (pages of an external
//! sort run, per-bucket rows of a spilling aggregation or Grace join).
//! Files live under a per-process directory in the OS temp dir and are
//! deleted when their handle drops, so even a panicking query leaks at
//! most the files of its own process lifetime. Ownership keeps cleanup
//! panic-safe without registries: writers and handles live either on the
//! query thread or inside the work-stealing scheduler's slots, so any
//! unwind — a worker killed mid-read, an I/O error mid-write — drops
//! them and removes their files. Whichever drop empties the directory
//! also removes it, so a finished process leaves no residue at all.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sigma_value::{codec, Batch, Schema};

use crate::error::CdwError;

/// Default number of rows per partition for bulk loads.
pub const DEFAULT_PARTITION_ROWS: usize = 65_536;

/// One stored table.
#[derive(Debug, Clone)]
pub struct StoredTable {
    schema: Arc<Schema>,
    partitions: Vec<Batch>,
}

impl StoredTable {
    pub fn empty(schema: Arc<Schema>) -> StoredTable {
        StoredTable {
            schema,
            partitions: Vec::new(),
        }
    }

    /// Build from a single batch, splitting into partitions of
    /// `partition_rows` rows.
    pub fn from_batch(batch: Batch, partition_rows: usize) -> StoredTable {
        let schema = batch.schema().clone();
        let mut partitions = Vec::new();
        let rows = batch.num_rows();
        if rows == 0 {
            return StoredTable { schema, partitions };
        }
        let step = partition_rows.max(1);
        let mut start = 0;
        while start < rows {
            let len = step.min(rows - start);
            partitions.push(batch.slice(start, len));
            start += len;
        }
        StoredTable { schema, partitions }
    }

    /// Build from explicit partitions (possibly wildly uneven — skew
    /// tests and benches use this to pin scheduler behavior that uniform
    /// `from_batch` splits can't reach). Partitions must agree with the
    /// first batch's column types positionally; empty partitions are
    /// legal and preserved.
    pub fn from_parts(parts: Vec<Batch>) -> Result<StoredTable, CdwError> {
        let Some(first) = parts.first() else {
            return Err(CdwError::exec("from_parts requires at least one batch"));
        };
        let mut table = StoredTable::empty(first.schema().clone());
        for part in parts {
            table.append(part)?;
        }
        Ok(table)
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn partitions(&self) -> &[Batch] {
        &self.partitions
    }

    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|b| b.num_rows()).sum()
    }

    pub fn byte_size(&self) -> usize {
        self.partitions.iter().map(|b| b.byte_size()).sum()
    }

    /// Append a batch (schema must match by type, positionally).
    pub fn append(&mut self, batch: Batch) -> Result<(), CdwError> {
        if batch.num_columns() != self.schema.len() {
            return Err(CdwError::exec(format!(
                "insert has {} columns, table has {}",
                batch.num_columns(),
                self.schema.len()
            )));
        }
        for (i, field) in self.schema.fields().iter().enumerate() {
            if batch.column(i).dtype() != field.dtype {
                return Err(CdwError::exec(format!(
                    "insert column {} has type {}, expected {}",
                    field.name,
                    batch.column(i).dtype(),
                    field.dtype
                )));
            }
        }
        // Re-tag the batch with the table's schema so names line up.
        let retagged =
            Batch::new(self.schema.clone(), batch.columns().to_vec()).map_err(CdwError::from)?;
        self.partitions.push(retagged);
        Ok(())
    }

    /// Replace all partitions (used by UPDATE/DELETE rewrites and CTAS
    /// OR REPLACE).
    pub fn replace_all(&mut self, batch: Batch, partition_rows: usize) {
        let table = StoredTable::from_batch(batch, partition_rows);
        self.schema = table.schema;
        self.partitions = table.partitions;
    }

    /// Materialize the whole table as one batch.
    pub fn to_batch(&self) -> Batch {
        if self.partitions.is_empty() {
            return Batch::empty(self.schema.clone());
        }
        let refs: Vec<&Batch> = self.partitions.iter().collect();
        Batch::concat(&refs).expect("partitions share a schema")
    }
}

// ---------------------------------------------------------------------
// spill files
// ---------------------------------------------------------------------

/// Monotone id source for spill-file names (process-wide, so concurrent
/// queries and worker threads never collide).
static NEXT_SPILL_ID: AtomicU64 = AtomicU64::new(0);

fn spill_dir() -> PathBuf {
    std::env::temp_dir().join(format!("sigma-spill-{}", std::process::id()))
}

/// Reclaim the per-process directory once it holds no files. `remove_dir`
/// refuses non-empty directories, so calling it after every file removal
/// deletes the directory exactly when the last spill file is gone (and is
/// a cheap no-op otherwise).
fn remove_spill_dir_if_empty(path: &std::path::Path) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::remove_dir(dir);
    }
}

fn io_err(what: &str, e: std::io::Error) -> CdwError {
    CdwError::exec(format!("spill {what}: {e}"))
}

/// Writes one spill file as a sequence of length-prefixed encoded batches.
///
/// Each [`SpillWriter::append`] call adds one record; record order is the
/// read-back order, which the spilling operators rely on for determinism
/// (e.g. aggregation appends one record per input partition, in partition
/// index order). `finish` seals the file into a [`SpillHandle`].
pub struct SpillWriter {
    file: BufWriter<File>,
    path: PathBuf,
    bytes: u64,
    records: usize,
}

impl SpillWriter {
    /// Create a fresh, uniquely named spill file.
    pub fn create() -> Result<SpillWriter, CdwError> {
        let dir = spill_dir();
        let id = NEXT_SPILL_ID.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("{id}.spill"));
        // A concurrently dropping handle may reclaim the (momentarily
        // empty) directory between our mkdir and the file create; retry
        // the pair until the create lands inside a directory that our
        // own file then keeps alive.
        let mut attempts = 0;
        let file = loop {
            std::fs::create_dir_all(&dir).map_err(|e| io_err("mkdir", e))?;
            match File::create(&path) {
                Ok(f) => break f,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound && attempts < 16 => {
                    attempts += 1;
                }
                Err(e) => return Err(io_err("create", e)),
            }
        };
        Ok(SpillWriter {
            file: BufWriter::new(file),
            path,
            bytes: 0,
            records: 0,
        })
    }

    /// Append one batch record; returns the bytes written (payload +
    /// 8-byte length prefix), which the caller charges to its spill stats.
    pub fn append(&mut self, batch: &Batch) -> Result<usize, CdwError> {
        let payload = codec::encode_batch(batch);
        self.file
            .write_all(&(payload.len() as u64).to_le_bytes())
            .and_then(|()| self.file.write_all(&payload))
            .map_err(|e| io_err("write", e))?;
        let written = payload.len() + 8;
        self.bytes += written as u64;
        self.records += 1;
        Ok(written)
    }

    /// Seal the file. The handle owns the on-disk bytes from here on.
    pub fn finish(mut self) -> Result<SpillHandle, CdwError> {
        self.file.flush().map_err(|e| io_err("flush", e))?;
        Ok(SpillHandle {
            path: std::mem::take(&mut self.path),
            bytes: self.bytes,
            records: self.records,
        })
    }
}

impl Drop for SpillWriter {
    fn drop(&mut self) {
        // A writer dropped without `finish` — an error return or a panic
        // unwinding through the owning worker — removes its file.
        if !self.path.as_os_str().is_empty() {
            let _ = std::fs::remove_file(&self.path);
            remove_spill_dir_if_empty(&self.path);
        }
    }
}

/// A sealed spill file; deletes itself on drop.
pub struct SpillHandle {
    path: PathBuf,
    bytes: u64,
    records: usize,
}

impl SpillHandle {
    /// Total on-disk size (payload plus framing).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of batch records in the file.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Open a sequential reader over the records.
    pub fn reader(&self) -> Result<SpillReader, CdwError> {
        let file = File::open(&self.path).map_err(|e| io_err("open", e))?;
        Ok(SpillReader {
            file: BufReader::new(file),
            remaining: self.records,
            bytes_left: self.bytes,
        })
    }

    /// Read every record into memory (used where record count is small —
    /// e.g. one record per input partition).
    pub fn read_all(&self) -> Result<Vec<Batch>, CdwError> {
        let mut reader = self.reader()?;
        let mut out = Vec::with_capacity(self.records);
        while let Some(batch) = reader.next_batch()? {
            out.push(batch);
        }
        Ok(out)
    }
}

impl Drop for SpillHandle {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        remove_spill_dir_if_empty(&self.path);
    }
}

/// Streams records back from a spill file in append order.
pub struct SpillReader {
    file: BufReader<File>,
    remaining: usize,
    /// Bytes the handle says are left to read — bounds each record's
    /// length prefix, so a corrupted prefix errors instead of sizing a
    /// huge allocation.
    bytes_left: u64,
}

impl SpillReader {
    /// The next record, or `None` once the file is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<Batch>, CdwError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut len = [0u8; 8];
        self.file
            .read_exact(&mut len)
            .map_err(|e| io_err("read len", e))?;
        let len = u64::from_le_bytes(len);
        if len > self.bytes_left.saturating_sub(8) {
            return Err(CdwError::exec(format!(
                "spill record length {len} exceeds file remainder {}",
                self.bytes_left.saturating_sub(8)
            )));
        }
        self.bytes_left -= len + 8;
        let mut payload = vec![0u8; len as usize];
        self.file
            .read_exact(&mut payload)
            .map_err(|e| io_err("read payload", e))?;
        codec::decode_batch(&payload)
            .map(Some)
            .map_err(CdwError::from)
    }
}

/// Unit-test support for asserting on the shared spill directory. All
/// unit tests of one crate run as threads of a single process, so they
/// share one `sigma-spill-{pid}` directory; any test that creates spill
/// files or asserts the directory's global state must hold this lock or
/// it races with its neighbors. (Integration-test binaries are separate
/// processes and get their own directories.)
#[cfg(test)]
pub(crate) mod spill_test_support {
    use std::path::PathBuf;
    use std::sync::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    /// Serialize spill-dir tests. Recovers from poisoning so one failed
    /// spill test doesn't cascade into the rest.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Spill files currently on disk (missing directory = none).
    pub(crate) fn live_spill_files() -> Vec<PathBuf> {
        match std::fs::read_dir(super::spill_dir()) {
            Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// True when every spill file is gone AND the per-process directory
    /// itself has been reclaimed.
    pub(crate) fn spill_dir_reclaimed() -> bool {
        !super::spill_dir().exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Column, DataType, Field};

    fn batch(n: usize) -> Batch {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Batch::new(schema, vec![Column::from_ints((0..n as i64).collect())]).unwrap()
    }

    #[test]
    fn partitioning() {
        let t = StoredTable::from_batch(batch(10), 4);
        assert_eq!(t.partitions().len(), 3);
        assert_eq!(t.partitions()[0].num_rows(), 4);
        assert_eq!(t.partitions()[2].num_rows(), 2);
        assert_eq!(t.num_rows(), 10);
        let whole = t.to_batch();
        assert_eq!(whole.num_rows(), 10);
        assert_eq!(whole.value(9, 0), sigma_value::Value::Int(9));
    }

    #[test]
    fn append_validates_types() {
        let mut t = StoredTable::from_batch(batch(2), 10);
        assert!(t.append(batch(3)).is_ok());
        assert_eq!(t.num_rows(), 5);
        let wrong = Batch::new(
            Arc::new(Schema::new(vec![Field::new("x", DataType::Text)])),
            vec![Column::from_texts(vec!["a".into()])],
        )
        .unwrap();
        assert!(t.append(wrong).is_err());
    }

    #[test]
    fn empty_table() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let t = StoredTable::empty(schema);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.to_batch().num_rows(), 0);
    }

    /// Size accounting must charge what the partitions actually hold —
    /// including the null bitmap and the string heap (the figures the
    /// execution memory budget consults). Verified against the documented
    /// per-column formula.
    #[test]
    #[allow(clippy::identity_op)] // per-string terms spelled out row by row
    fn byte_size_counts_bitmap_and_string_heap() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("n", DataType::Int),
            Field::new("s", DataType::Text),
        ]));
        let b = Batch::new(
            schema,
            vec![
                Column::from_opt_ints(vec![Some(1), None, Some(3), None]),
                Column::from_texts(vec!["aa".into(), "".into(), "cccc".into(), "d".into()]),
            ],
        )
        .unwrap();
        let int_bytes = Column::FIXED_BYTES + 4 * 8 + 4; // payload + bitmap
        let text_bytes = Column::FIXED_BYTES + 4 * Column::STRING_FIXED_BYTES + (2 + 0 + 4 + 1);
        assert_eq!(b.byte_size(), int_bytes + text_bytes);

        // Partitioning re-materializes rows, so the table total matches the
        // sum of its partitions' real footprints (2+2 rows here).
        let t = StoredTable::from_batch(b, 2);
        assert_eq!(t.partitions().len(), 2);
        assert_eq!(
            t.byte_size(),
            t.partitions().iter().map(Batch::byte_size).sum::<usize>()
        );
        let p0 = &t.partitions()[0]; // rows (1, "aa"), (null, "")
        assert_eq!(
            p0.byte_size(),
            (Column::FIXED_BYTES + 16 + 2)
                + (Column::FIXED_BYTES + 2 * Column::STRING_FIXED_BYTES + 2)
        );
    }

    #[test]
    fn spill_write_read_roundtrip_and_cleanup() {
        let _guard = spill_test_support::lock();
        let mut w = SpillWriter::create().unwrap();
        let b1 = batch(5);
        let b2 = batch(3);
        let n1 = w.append(&b1).unwrap();
        let n2 = w.append(&b2).unwrap();
        // Empty batches are legal records (partition alignment markers).
        let empty = Batch::empty(b1.schema().clone());
        w.append(&empty).unwrap();
        let h = w.finish().unwrap();
        assert_eq!(h.records(), 3);
        assert_eq!(h.bytes(), (n1 + n2) as u64 + empty_record_bytes(&empty));
        let back = h.read_all().unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], b1);
        assert_eq!(back[1], b2);
        assert_eq!(back[2].num_rows(), 0);
        // Streaming reader sees the same sequence then ends.
        let mut r = h.reader().unwrap();
        assert_eq!(r.next_batch().unwrap().unwrap(), b1);
        assert_eq!(r.next_batch().unwrap().unwrap(), b2);
        assert_eq!(r.next_batch().unwrap().unwrap().num_rows(), 0);
        assert!(r.next_batch().unwrap().is_none());
        // Dropping the handle removes the file.
        let path = h.path.clone();
        assert!(path.exists());
        drop(h);
        assert!(!path.exists());
    }

    fn empty_record_bytes(empty: &Batch) -> u64 {
        (sigma_value::encode_batch(empty).len() + 8) as u64
    }

    /// A corrupted record length prefix must surface as an error, never a
    /// huge allocation.
    #[test]
    fn corrupted_length_prefix_is_an_error() {
        let _guard = spill_test_support::lock();
        let mut w = SpillWriter::create().unwrap();
        w.append(&batch(4)).unwrap();
        let h = w.finish().unwrap();
        let mut raw = std::fs::read(&h.path).unwrap();
        raw[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&h.path, raw).unwrap();
        let mut r = h.reader().unwrap();
        assert!(r.next_batch().is_err());
    }

    #[test]
    fn unfinished_writer_cleans_up() {
        let _guard = spill_test_support::lock();
        let mut w = SpillWriter::create().unwrap();
        w.append(&batch(2)).unwrap();
        let path = w.path.clone();
        assert!(path.exists());
        drop(w);
        assert!(!path.exists());
        assert!(
            spill_test_support::spill_dir_reclaimed(),
            "empty spill dir should be removed with its last file"
        );
    }

    /// A panic unwinding through the thread that owns a mid-write spill
    /// file must remove it — the Drop impl runs during unwinding exactly
    /// as on the error-return path.
    #[test]
    fn panicking_writer_cleans_up_mid_write() {
        let _guard = spill_test_support::lock();
        let mut w = SpillWriter::create().unwrap();
        w.append(&batch(4)).unwrap();
        let path = w.path.clone();
        assert!(path.exists());
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _owned_by_worker = w;
            panic!("worker killed mid-spill");
        }));
        assert!(unwound.is_err());
        assert!(!path.exists(), "panicked writer leaked {path:?}");
        assert!(spill_test_support::spill_dir_reclaimed());
    }

    /// The mkdir/rmdir race: one thread's dropping handle may reclaim the
    /// momentarily-empty directory while another thread is between its
    /// `create_dir_all` and `File::create`. The create-retry in
    /// `SpillWriter::create` must absorb this — hammer create/drop pairs
    /// from two threads and require every create to succeed.
    #[test]
    fn concurrent_create_and_reclaim_never_fails() {
        let _guard = spill_test_support::lock();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..200 {
                        let mut w = SpillWriter::create().expect("create survives dir reclaim");
                        w.append(&batch(1)).unwrap();
                        drop(w.finish().unwrap());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(spill_test_support::live_spill_files().is_empty());
        assert!(spill_test_support::spill_dir_reclaimed());
    }
}
