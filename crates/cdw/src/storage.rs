//! Partitioned columnar table storage.
//!
//! Tables hold their rows as a list of same-schema [`Batch`] partitions, the
//! unit of parallel scanning. Writes append new partitions; UPDATE/DELETE
//! rewrite affected partitions in place (the simulator favors simplicity
//! over MVCC — the paper's warehouses own that problem).

use std::sync::Arc;

use sigma_value::{Batch, Schema};

use crate::error::CdwError;

/// Default number of rows per partition for bulk loads.
pub const DEFAULT_PARTITION_ROWS: usize = 65_536;

/// One stored table.
#[derive(Debug, Clone)]
pub struct StoredTable {
    schema: Arc<Schema>,
    partitions: Vec<Batch>,
}

impl StoredTable {
    pub fn empty(schema: Arc<Schema>) -> StoredTable {
        StoredTable {
            schema,
            partitions: Vec::new(),
        }
    }

    /// Build from a single batch, splitting into partitions of
    /// `partition_rows` rows.
    pub fn from_batch(batch: Batch, partition_rows: usize) -> StoredTable {
        let schema = batch.schema().clone();
        let mut partitions = Vec::new();
        let rows = batch.num_rows();
        if rows == 0 {
            return StoredTable { schema, partitions };
        }
        let step = partition_rows.max(1);
        let mut start = 0;
        while start < rows {
            let len = step.min(rows - start);
            partitions.push(batch.slice(start, len));
            start += len;
        }
        StoredTable { schema, partitions }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    pub fn partitions(&self) -> &[Batch] {
        &self.partitions
    }

    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(|b| b.num_rows()).sum()
    }

    pub fn byte_size(&self) -> usize {
        self.partitions.iter().map(|b| b.byte_size()).sum()
    }

    /// Append a batch (schema must match by type, positionally).
    pub fn append(&mut self, batch: Batch) -> Result<(), CdwError> {
        if batch.num_columns() != self.schema.len() {
            return Err(CdwError::exec(format!(
                "insert has {} columns, table has {}",
                batch.num_columns(),
                self.schema.len()
            )));
        }
        for (i, field) in self.schema.fields().iter().enumerate() {
            if batch.column(i).dtype() != field.dtype {
                return Err(CdwError::exec(format!(
                    "insert column {} has type {}, expected {}",
                    field.name,
                    batch.column(i).dtype(),
                    field.dtype
                )));
            }
        }
        // Re-tag the batch with the table's schema so names line up.
        let retagged =
            Batch::new(self.schema.clone(), batch.columns().to_vec()).map_err(CdwError::from)?;
        self.partitions.push(retagged);
        Ok(())
    }

    /// Replace all partitions (used by UPDATE/DELETE rewrites and CTAS
    /// OR REPLACE).
    pub fn replace_all(&mut self, batch: Batch, partition_rows: usize) {
        let table = StoredTable::from_batch(batch, partition_rows);
        self.schema = table.schema;
        self.partitions = table.partitions;
    }

    /// Materialize the whole table as one batch.
    pub fn to_batch(&self) -> Batch {
        if self.partitions.is_empty() {
            return Batch::empty(self.schema.clone());
        }
        let refs: Vec<&Batch> = self.partitions.iter().collect();
        Batch::concat(&refs).expect("partitions share a schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Column, DataType, Field};

    fn batch(n: usize) -> Batch {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Batch::new(schema, vec![Column::from_ints((0..n as i64).collect())]).unwrap()
    }

    #[test]
    fn partitioning() {
        let t = StoredTable::from_batch(batch(10), 4);
        assert_eq!(t.partitions().len(), 3);
        assert_eq!(t.partitions()[0].num_rows(), 4);
        assert_eq!(t.partitions()[2].num_rows(), 2);
        assert_eq!(t.num_rows(), 10);
        let whole = t.to_batch();
        assert_eq!(whole.num_rows(), 10);
        assert_eq!(whole.value(9, 0), sigma_value::Value::Int(9));
    }

    #[test]
    fn append_validates_types() {
        let mut t = StoredTable::from_batch(batch(2), 10);
        assert!(t.append(batch(3)).is_ok());
        assert_eq!(t.num_rows(), 5);
        let wrong = Batch::new(
            Arc::new(Schema::new(vec![Field::new("x", DataType::Text)])),
            vec![Column::from_texts(vec!["a".into()])],
        )
        .unwrap();
        assert!(t.append(wrong).is_err());
    }

    #[test]
    fn empty_table() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let t = StoredTable::empty(schema);
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.to_batch().num_rows(), 0);
    }
}
