//! The vectorized executor: [`Plan`] → [`Batch`].
//!
//! Operators materialize whole batches and, wherever the plan allows it,
//! retain the storage partition structure so work spreads across worker
//! threads (crossbeam scoped threads, the `parallelism` knob the
//! scalability experiment E8 sweeps):
//!
//! * Scan → Filter → Project chains map over partitions.
//! * `UnionAll` concatenates its inputs' partitions without collapsing.
//! * Aggregation and DISTINCT run two-phase when the optimizer placed a
//!   `Partial`/`Final` split (see [`crate::plan::AggMode`]): per-partition
//!   partial states build in parallel and merge associatively, in
//!   partition-index order, on the coordinating thread — so results are
//!   bit-identical at any parallelism.
//! * Hash joins build the right side once, share it (`Arc`) across probe
//!   partitions running in parallel, and emit one output part per probe
//!   partition.
//!
//! Windows and sorts still collapse to one batch. Every operator records
//! an [`OpStats`] entry (rows in/out, partitions, elapsed) so
//! `EXPLAIN`-style output and the bench harness can attribute time.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sigma_sql::JoinKind;
use sigma_value::{hash, sort, Batch, Column, ColumnBuilder, DataType, Schema, Value};

use crate::catalog::Catalog;
use crate::error::CdwError;
use crate::eval::{eval, EvalCtx, PhysExpr};
use crate::plan::{AggCall, AggFunc, AggMode, Plan};
use crate::window::compute_window;

/// Execution context (read access to storage plus settings).
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub results: &'a HashMap<String, Batch>,
    pub eval: EvalCtx,
    /// Worker threads for partition-parallel stages (1 = serial).
    pub parallelism: usize,
}

/// Per-operator execution counters, recorded in plan pre-order.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// EXPLAIN-style operator label (e.g. `Aggregate[partial] (groups=1, aggs=2)`).
    pub op: String,
    /// Depth in the plan tree (0 = root), for tree rendering.
    pub depth: usize,
    /// Rows produced by this operator's immediate children.
    pub rows_in: usize,
    /// Rows this operator produced.
    pub rows_out: usize,
    /// Output partitions (1 for collapsing operators).
    pub partitions: usize,
    /// Wall-clock time inclusive of children.
    pub elapsed: Duration,
}

impl OpStats {
    fn started(op: String, depth: usize) -> OpStats {
        OpStats {
            op,
            depth,
            rows_in: 0,
            rows_out: 0,
            partitions: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// Counters accumulated during one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    pub rows_scanned: usize,
    pub partitions_scanned: usize,
    /// Per-operator breakdown in plan pre-order (root first).
    pub operators: Vec<OpStats>,
}

impl ExecStats {
    /// Fill in `rows_in` from each operator's immediate children.
    fn finalize(&mut self) {
        let n = self.operators.len();
        for i in 0..n {
            let d = self.operators[i].depth;
            let mut rows_in = 0;
            for j in i + 1..n {
                let dj = self.operators[j].depth;
                if dj <= d {
                    break;
                }
                if dj == d + 1 {
                    rows_in += self.operators[j].rows_out;
                }
            }
            self.operators[i].rows_in = rows_in;
        }
    }

    /// Render the per-operator breakdown as an indented tree
    /// (EXPLAIN ANALYZE-style).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.operators {
            for _ in 0..op.depth {
                out.push_str("  ");
            }
            out.push_str(&format!(
                "{}  rows_in={} rows_out={} partitions={} elapsed={:.3}ms\n",
                op.op,
                op.rows_in,
                op.rows_out,
                op.partitions,
                op.elapsed.as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

/// Execute a plan to a single batch.
pub fn execute(plan: &Plan, ctx: &ExecCtx, stats: &mut ExecStats) -> Result<Batch, CdwError> {
    let schema = plan.schema();
    let parts = execute_parts(plan, ctx, stats, 0)?;
    stats.finalize();
    concat_parts(parts, schema)
}

/// Collapse a part list to one batch (an empty list yields zero rows).
fn concat_parts(parts: Vec<Batch>, schema: Arc<Schema>) -> Result<Batch, CdwError> {
    match parts.len() {
        0 => Ok(Batch::empty(schema)),
        1 => Ok(parts.into_iter().next().unwrap()),
        _ => {
            let refs: Vec<&Batch> = parts.iter().collect();
            Batch::concat(&refs).map_err(CdwError::from)
        }
    }
}

/// Operator label for stats entries (matches `Plan::explain` lines).
fn op_label(plan: &Plan) -> String {
    match plan {
        Plan::Scan { table, .. } => format!("Scan {table}"),
        Plan::ResultScan { id, .. } => format!("ResultScan {id}"),
        Plan::Values { .. } => "Values".to_string(),
        Plan::Project { exprs, .. } => format!("Project ({} exprs)", exprs.len()),
        Plan::Filter { .. } => "Filter".to_string(),
        Plan::Aggregate {
            mode, groups, aggs, ..
        } => format!(
            "Aggregate{} (groups={}, aggs={})",
            mode.label(),
            groups.len(),
            aggs.len()
        ),
        Plan::Window { calls, .. } => format!("Window ({} calls)", calls.len()),
        Plan::Join {
            kind, left_keys, ..
        } => format!("Join {kind:?} ({} keys)", left_keys.len()),
        Plan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
        Plan::Limit { .. } => "Limit".to_string(),
        Plan::UnionAll { .. } => "UnionAll".to_string(),
        Plan::Distinct { mode, .. } => format!("Distinct{}", mode.label()),
    }
}

/// Execute retaining partition structure, recording one [`OpStats`] entry.
fn execute_parts(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
) -> Result<Vec<Batch>, CdwError> {
    let slot = stats.operators.len();
    stats
        .operators
        .push(OpStats::started(op_label(plan), depth));
    let started = Instant::now();
    let parts = execute_node(plan, ctx, stats, depth)?;
    let op = &mut stats.operators[slot];
    op.elapsed = started.elapsed();
    op.rows_out = parts.iter().map(Batch::num_rows).sum();
    op.partitions = parts.len();
    Ok(parts)
}

fn execute_node(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
    depth: usize,
) -> Result<Vec<Batch>, CdwError> {
    match plan {
        Plan::Scan { table, .. } => {
            let stored = ctx.catalog.get(table)?;
            stats.rows_scanned += stored.num_rows();
            stats.partitions_scanned += stored.partitions().len();
            Ok(stored.partitions().to_vec())
        }
        Plan::ResultScan { id, .. } => {
            let batch = ctx
                .results
                .get(id)
                .ok_or_else(|| CdwError::catalog(format!("persisted result not found: {id}")))?;
            Ok(vec![batch.clone()])
        }
        Plan::Values { batch } => Ok(vec![batch.clone()]),
        Plan::Filter { input, predicate } => {
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            par_map(ctx, parts, |b| {
                let mask_col = eval(predicate, &b, &ctx.eval)?;
                let mask: Vec<bool> = (0..b.num_rows())
                    .map(|i| mask_col.value(i) == Value::Bool(true))
                    .collect();
                Ok(b.filter(&mask))
            })
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            let exprs = exprs.clone();
            let schema = schema.clone();
            par_map(ctx, parts, move |b| {
                let cols: Vec<Column> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| coerce_column(eval(e, &b, &ctx.eval)?, f.dtype))
                    .collect::<Result<_, _>>()?;
                Batch::new(schema.clone(), cols).map_err(CdwError::from)
            })
        }
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
            mode,
        } => {
            // The Final half of an optimizer-placed split fuses with its
            // Partial child: partition group tables build in parallel and
            // merge in partition-index order (deterministic at any
            // parallelism).
            if *mode == AggMode::Final {
                if let Plan::Aggregate {
                    input: pinput,
                    groups: pgroups,
                    aggs: paggs,
                    mode: AggMode::Partial,
                    ..
                } = input.as_ref()
                {
                    let pslot = stats.operators.len();
                    stats
                        .operators
                        .push(OpStats::started(op_label(input), depth + 1));
                    let pstarted = Instant::now();
                    let parts = execute_parts(pinput, ctx, stats, depth + 2)?;
                    let tables = par_map(ctx, parts, |b| {
                        accumulate_groups(&b, pgroups, paggs, &ctx.eval)
                    })?;
                    {
                        let op = &mut stats.operators[pslot];
                        op.elapsed = pstarted.elapsed();
                        op.rows_out = tables.iter().map(|t| t.entries.len()).sum();
                        op.partitions = tables.len();
                    }
                    let merged = merge_group_tables(tables, pgroups.is_empty(), paggs);
                    return Ok(vec![finish_groups(merged, schema)?]);
                }
            }
            // Single placement (or a Partial/Final the optimizer did not
            // pair): one-shot aggregation over the concatenated input.
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            let batch = concat_parts(parts, input.schema())?;
            let table = accumulate_groups(&batch, groups, aggs, &ctx.eval)?;
            Ok(vec![finish_groups(table, schema)?])
        }
        Plan::Window {
            input,
            calls,
            schema,
        } => {
            let batch = concat_parts(execute_parts(input, ctx, stats, depth + 1)?, input.schema())?;
            let mut cols: Vec<Column> = batch.columns().to_vec();
            for (i, call) in calls.iter().enumerate() {
                let out_type = schema.field(batch.num_columns() + i).dtype;
                cols.push(compute_window(call, &batch, out_type, &ctx.eval)?);
            }
            Ok(vec![Batch::new(schema.clone(), cols)?])
        }
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            // Build side: materialized once, hash table shared across
            // probe partitions.
            let right_batch = Arc::new(concat_parts(
                execute_parts(right, ctx, stats, depth + 1)?,
                right.schema(),
            )?);
            let lparts = execute_parts(left, ctx, stats, depth + 1)?;
            let keyed = *kind != JoinKind::Cross && !left_keys.is_empty();
            let build = Arc::new(build_join_table(
                &right_batch,
                right_keys,
                keyed,
                &ctx.eval,
            )?);
            let probes = par_map(ctx, lparts, |lb| {
                probe_partition(
                    &lb,
                    &right_batch,
                    &build,
                    *kind,
                    left_keys,
                    residual.as_ref(),
                    schema,
                    &ctx.eval,
                )
            })?;
            let mut parts = Vec::with_capacity(probes.len() + 1);
            let mut matched_right = if *kind == JoinKind::Full {
                vec![false; right_batch.num_rows()]
            } else {
                Vec::new()
            };
            for (batch, matched) in probes {
                for ri in matched {
                    matched_right[ri] = true;
                }
                parts.push(batch);
            }
            if *kind == JoinKind::Full {
                let unmatched: Vec<usize> = matched_right
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| !**m)
                    .map(|(i, _)| i)
                    .collect();
                if !unmatched.is_empty() {
                    parts.push(assemble_right_only(
                        &right_batch,
                        &unmatched,
                        schema,
                        left.schema().len(),
                    )?);
                }
            }
            Ok(parts)
        }
        Plan::Sort { input, keys } => {
            let batch = concat_parts(execute_parts(input, ctx, stats, depth + 1)?, input.schema())?;
            let key_cols: Vec<Column> = keys
                .iter()
                .map(|k| eval(&k.expr, &batch, &ctx.eval))
                .collect::<Result<_, _>>()?;
            let refs: Vec<&Column> = key_cols.iter().collect();
            let sort_keys: Vec<sort::SortKey> = keys
                .iter()
                .map(|k| sort::SortKey {
                    descending: k.descending,
                    nulls_last: k.nulls_last.unwrap_or(k.descending),
                })
                .collect();
            let idx = sort::sort_indices(&refs, &sort_keys);
            Ok(vec![batch.take(&idx)])
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let batch = concat_parts(execute_parts(input, ctx, stats, depth + 1)?, input.schema())?;
            let start = (*offset as usize).min(batch.num_rows());
            let len = match limit {
                Some(l) => (*l as usize).min(batch.num_rows() - start),
                None => batch.num_rows() - start,
            };
            Ok(vec![batch.slice(start, len)])
        }
        Plan::UnionAll { inputs, schema } => {
            // Keep every input's partition structure (no collapsing), so
            // two-phase operators above the union stay parallel.
            let mut parts = Vec::new();
            for input in inputs {
                for b in execute_parts(input, ctx, stats, depth + 1)? {
                    // Re-tag with the union schema (names from the first input).
                    parts.push(Batch::new(schema.clone(), b.columns().to_vec())?);
                }
            }
            Ok(parts)
        }
        Plan::Distinct { input, mode } => {
            let parts = execute_parts(input, ctx, stats, depth + 1)?;
            match mode {
                // Per-partition dedup, partitions retained. Keys already
                // deduplicated here never re-allocate in the Final merge.
                AggMode::Partial => par_map(ctx, parts, |b| {
                    let mut seen = HashSet::new();
                    Ok(distinct_within(&b, &mut seen))
                }),
                // Global dedup across parts in partition order.
                AggMode::Single | AggMode::Final => {
                    let mut seen = HashSet::new();
                    let mut kept = Vec::new();
                    for b in &parts {
                        let d = distinct_within(b, &mut seen);
                        if d.num_rows() > 0 {
                            kept.push(d);
                        }
                    }
                    Ok(vec![concat_parts(kept, input.schema())?])
                }
            }
        }
    }
}

/// Rows of `batch` whose key is not yet in `seen`, in row order.
/// Keys allocate only when actually inserted (never on duplicate hits).
fn distinct_within(batch: &Batch, seen: &mut HashSet<Vec<u8>>) -> Batch {
    let refs: Vec<&Column> = batch.columns().iter().collect();
    let mut keep = Vec::new();
    let mut key = Vec::new();
    for row in 0..batch.num_rows() {
        key.clear();
        hash::encode_key(&refs, row, &mut key);
        if !seen.contains(&key) {
            seen.insert(key.clone());
            keep.push(row);
        }
    }
    batch.take(&keep)
}

/// Coerce an evaluated column to the declared output type (Int -> Float and
/// Date -> Timestamp widening; all-null columns adopt the target type).
fn coerce_column(col: Column, target: DataType) -> Result<Column, CdwError> {
    if col.dtype() == target {
        return Ok(col);
    }
    // Columns that are entirely null can be retyped freely; typed columns
    // may widen (the cast kernels handle Int->Float and Date->Timestamp).
    col.cast(target).map_err(CdwError::from)
}

/// Map over partitions, in parallel when configured and worthwhile.
fn par_map<T, F>(ctx: &ExecCtx, parts: Vec<Batch>, f: F) -> Result<Vec<T>, CdwError>
where
    T: Send,
    F: Fn(Batch) -> Result<T, CdwError> + Sync,
{
    if ctx.parallelism <= 1 || parts.len() <= 1 {
        return parts.into_iter().map(f).collect();
    }
    let n = parts.len();
    let threads = ctx.parallelism.min(n);
    let inputs: Vec<(usize, Batch)> = parts.into_iter().enumerate().collect();
    let mut chunks: Vec<Vec<(usize, Batch)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in inputs.into_iter().enumerate() {
        chunks[i % threads].push(item);
    }
    // Each worker owns its chunk and returns its results; no shared state.
    let per_thread: Vec<Vec<(usize, Result<T, CdwError>)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let f = &f;
                scope.spawn(move |_| {
                    chunk
                        .into_iter()
                        .map(|(i, batch)| (i, f(batch)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker does not panic"))
            .collect()
    })
    .map_err(|_| CdwError::exec("parallel worker panicked"))?;
    let mut results: Vec<Option<Result<T, CdwError>>> = Vec::new();
    results.resize_with(n, || None);
    for chunk in per_thread {
        for (i, r) in chunk {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

// ---------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------

/// Per-group aggregate state.
#[derive(Debug)]
pub enum AggState {
    CountStar(i64),
    Count(i64),
    CountDistinct(std::collections::HashSet<Vec<u8>>),
    SumInt {
        sum: i64,
        any: bool,
    },
    SumFloat {
        sum: f64,
        any: bool,
    },
    Avg {
        sum: f64,
        count: i64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Collect {
        values: Vec<f64>,
        frac: f64,
        median: bool,
    },
    Welford {
        n: i64,
        mean: f64,
        m2: f64,
        variance: bool,
    },
    Attr {
        value: Option<Value>,
        conflicted: bool,
    },
}

impl AggState {
    pub fn new(func: &AggFunc) -> AggState {
        match func {
            AggFunc::CountStar => AggState::CountStar(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(Default::default()),
            // Int-ness is decided at finish time by what was accumulated.
            AggFunc::Sum => AggState::SumFloat {
                sum: 0.0,
                any: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Median => AggState::Collect {
                values: Vec::new(),
                frac: 0.5,
                median: true,
            },
            AggFunc::Percentile(p) => AggState::Collect {
                values: Vec::new(),
                frac: *p,
                median: false,
            },
            AggFunc::StdDev => AggState::Welford {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                variance: false,
            },
            AggFunc::Variance => AggState::Welford {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                variance: true,
            },
            AggFunc::Attr => AggState::Attr {
                value: None,
                conflicted: false,
            },
        }
    }

    /// Sum over an Int column keeps Int output.
    pub fn new_for(func: &AggFunc, arg_type: Option<DataType>) -> AggState {
        match (func, arg_type) {
            (AggFunc::Sum, Some(DataType::Int)) => AggState::SumInt { sum: 0, any: false },
            _ => AggState::new(func),
        }
    }

    pub fn update(&mut self, v: &Value) {
        match self {
            AggState::CountStar(n) => *n += 1,
            AggState::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::CountDistinct(set) => {
                if !v.is_null() {
                    let mut key = Vec::new();
                    hash::encode_value(v, &mut key);
                    set.insert(key);
                }
            }
            AggState::SumInt { sum, any } => {
                if let Some(x) = v.as_i64() {
                    *sum = sum.wrapping_add(x);
                    *any = true;
                }
            }
            AggState::SumFloat { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::MinMax { best, is_min } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.total_cmp(b);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Collect { values, .. } => {
                if let Some(x) = v.as_f64() {
                    values.push(x);
                }
            }
            AggState::Welford { n, mean, m2, .. } => {
                if let Some(x) = v.as_f64() {
                    *n += 1;
                    let delta = x - *mean;
                    *mean += delta / *n as f64;
                    *m2 += delta * (x - *mean);
                }
            }
            AggState::Attr { value, conflicted } => {
                if !v.is_null() && !*conflicted {
                    match value {
                        None => *value = Some(v.clone()),
                        Some(prev) => {
                            if !prev.sql_eq(v) {
                                *conflicted = true;
                                *value = None;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Fold another partial state of the same variant into `self`. Every
    /// combination is associative, so per-partition partials merged in
    /// partition-index order reproduce one deterministic result no matter
    /// how many threads computed them:
    ///
    /// * counts/sums add (Avg merges as sum+count, never as a quotient),
    /// * COUNT(DISTINCT) unions the per-partition key sets,
    /// * min/max compare the partition champions,
    /// * median/percentile concatenate collected values (partitions are
    ///   row-order slices, so the concatenation preserves table order),
    /// * stddev/variance combine (n, mean, m2) via Chan's parallel update,
    /// * ATTR stays the single value iff both sides agree.
    ///
    /// Panics on mismatched variants: partitions share a schema, so the
    /// same aggregate slot always accumulates in the same representation.
    pub fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::CountStar(a), AggState::CountStar(b)) => *a += b,
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::CountDistinct(a), AggState::CountDistinct(b)) => a.extend(b),
            (
                AggState::SumInt { sum, any },
                AggState::SumInt {
                    sum: osum,
                    any: oany,
                },
            ) => {
                *sum = sum.wrapping_add(osum);
                *any |= oany;
            }
            (
                AggState::SumFloat { sum, any },
                AggState::SumFloat {
                    sum: osum,
                    any: oany,
                },
            ) => {
                *sum += osum;
                *any |= oany;
            }
            (
                AggState::Avg { sum, count },
                AggState::Avg {
                    sum: osum,
                    count: ocount,
                },
            ) => {
                *sum += osum;
                *count += ocount;
            }
            (AggState::MinMax { best, is_min }, AggState::MinMax { best: obest, .. }) => {
                if let Some(v) = obest {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.total_cmp(b);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v);
                    }
                }
            }
            (
                AggState::Collect { values, .. },
                AggState::Collect {
                    values: ovalues, ..
                },
            ) => {
                values.extend(ovalues);
            }
            (
                AggState::Welford { n, mean, m2, .. },
                AggState::Welford {
                    n: on,
                    mean: omean,
                    m2: om2,
                    ..
                },
            ) => {
                if on == 0 {
                    return;
                }
                if *n == 0 {
                    *n = on;
                    *mean = omean;
                    *m2 = om2;
                    return;
                }
                let total = *n + on;
                let delta = omean - *mean;
                *m2 += om2 + delta * delta * (*n as f64) * (on as f64) / total as f64;
                *mean += delta * on as f64 / total as f64;
                *n = total;
            }
            (
                AggState::Attr { value, conflicted },
                AggState::Attr {
                    value: ovalue,
                    conflicted: oconflicted,
                },
            ) => {
                if oconflicted {
                    *conflicted = true;
                    *value = None;
                } else if !*conflicted {
                    if let Some(v) = ovalue {
                        match value {
                            None => *value = Some(v),
                            Some(prev) => {
                                if !prev.sql_eq(&v) {
                                    *conflicted = true;
                                    *value = None;
                                }
                            }
                        }
                    }
                }
            }
            (s, o) => panic!("partial aggregate state mismatch: {s:?} vs {o:?}"),
        }
    }

    pub fn finish(self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int(n),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::SumInt { sum, any } => {
                if any {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, any } => {
                if any {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Collect {
                mut values, frac, ..
            } => {
                if values.is_empty() {
                    return Value::Null;
                }
                values.sort_by(f64::total_cmp);
                let rank = frac.clamp(0.0, 1.0) * (values.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let v = if lo == hi {
                    values[lo]
                } else {
                    values[lo] + (values[hi] - values[lo]) * (rank - lo as f64)
                };
                Value::Float(v)
            }
            AggState::Welford {
                n, m2, variance, ..
            } => {
                if n < 2 {
                    return Value::Null;
                }
                let var = m2 / (n - 1) as f64;
                Value::Float(if variance { var } else { var.sqrt() })
            }
            AggState::Attr { value, .. } => value.unwrap_or(Value::Null),
        }
    }
}

/// One group's accumulated state: encoded key, representative group
/// values, and one [`AggState`] per aggregate slot.
struct GroupEntry {
    key: Vec<u8>,
    group_vals: Vec<Value>,
    states: Vec<AggState>,
}

/// A (partial) aggregation hash table; `entries` preserves first-seen
/// order, which the merge keeps deterministic across parallelism.
struct GroupTable {
    index: HashMap<Vec<u8>, usize>,
    entries: Vec<GroupEntry>,
}

/// Build a group table over one batch (the partial phase; also the whole
/// job for `AggMode::Single`). A global aggregate (no GROUP BY) always
/// yields exactly one entry, even over zero rows.
fn accumulate_groups(
    batch: &Batch,
    groups: &[PhysExpr],
    aggs: &[AggCall],
    ctx: &EvalCtx,
) -> Result<GroupTable, CdwError> {
    let rows = batch.num_rows();
    let group_cols: Vec<Column> = groups
        .iter()
        .map(|g| eval(g, batch, ctx))
        .collect::<Result<_, _>>()?;
    let arg_cols: Vec<Option<Column>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| eval(e, batch, ctx)).transpose())
        .collect::<Result<_, _>>()?;
    let new_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(&arg_cols)
            .map(|(a, c)| AggState::new_for(&a.func, c.as_ref().map(|c| c.dtype())))
            .collect()
    };

    let mut table = GroupTable {
        index: HashMap::new(),
        entries: Vec::new(),
    };
    if groups.is_empty() {
        table.index.insert(Vec::new(), 0);
        table.entries.push(GroupEntry {
            key: Vec::new(),
            group_vals: Vec::new(),
            states: new_states(),
        });
        for row in 0..rows {
            for (slot, state) in table.entries[0].states.iter_mut().enumerate() {
                match &arg_cols[slot] {
                    Some(c) => state.update(&c.value(row)),
                    None => state.update(&Value::Int(1)),
                }
            }
        }
    } else {
        let refs: Vec<&Column> = group_cols.iter().collect();
        let mut key = Vec::new();
        for row in 0..rows {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            let idx = match table.index.get(&key) {
                Some(&i) => i,
                None => {
                    let i = table.entries.len();
                    table.index.insert(key.clone(), i);
                    table.entries.push(GroupEntry {
                        key: key.clone(),
                        group_vals: group_cols.iter().map(|c| c.value(row)).collect(),
                        states: new_states(),
                    });
                    i
                }
            };
            for (slot, state) in table.entries[idx].states.iter_mut().enumerate() {
                match &arg_cols[slot] {
                    Some(c) => state.update(&c.value(row)),
                    None => state.update(&Value::Int(1)),
                }
            }
        }
    }
    Ok(table)
}

/// Merge per-partition group tables in partition-index order. `global`
/// guarantees the single no-GROUP-BY entry exists even with zero input
/// partitions (an empty table still aggregates to one row).
fn merge_group_tables(tables: Vec<GroupTable>, global: bool, aggs: &[AggCall]) -> GroupTable {
    let mut iter = tables.into_iter();
    let mut acc = iter.next().unwrap_or_else(|| GroupTable {
        index: HashMap::new(),
        entries: Vec::new(),
    });
    for table in iter {
        for entry in table.entries {
            match acc.index.get(&entry.key) {
                Some(&i) => {
                    let dst = &mut acc.entries[i];
                    for (d, s) in dst.states.iter_mut().zip(entry.states) {
                        d.merge(s);
                    }
                }
                None => {
                    acc.index.insert(entry.key.clone(), acc.entries.len());
                    acc.entries.push(entry);
                }
            }
        }
    }
    if global && acc.entries.is_empty() {
        acc.entries.push(GroupEntry {
            key: Vec::new(),
            group_vals: Vec::new(),
            states: aggs.iter().map(|a| AggState::new(&a.func)).collect(),
        });
    }
    acc
}

/// Finish every group state and materialize the output batch.
fn finish_groups(table: GroupTable, schema: &Arc<Schema>) -> Result<Batch, CdwError> {
    let ngroups = table.entries.len();
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.dtype, ngroups))
        .collect();
    for entry in table.entries {
        let gwidth = entry.group_vals.len();
        for (ci, v) in entry.group_vals.into_iter().enumerate() {
            builders[ci].push(v).map_err(CdwError::from)?;
        }
        for (si, state) in entry.states.into_iter().enumerate() {
            builders[gwidth + si]
                .push(state.finish())
                .map_err(CdwError::from)?;
        }
    }
    Batch::new(
        schema.clone(),
        builders.into_iter().map(|b| b.finish()).collect(),
    )
    .map_err(CdwError::from)
}

// ---------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------

/// The shared build side of a hash join: constructed once over the whole
/// right input, then probed concurrently by left partitions (via `Arc`).
struct JoinBuild {
    /// key -> right-row indices; `None` for cross/keyless joins, which
    /// probe the full right batch per left row.
    table: Option<HashMap<Vec<u8>, Vec<usize>>>,
}

fn build_join_table(
    right: &Batch,
    right_keys: &[PhysExpr],
    keyed: bool,
    ctx: &EvalCtx,
) -> Result<JoinBuild, CdwError> {
    if !keyed {
        return Ok(JoinBuild { table: None });
    }
    let rcols: Vec<Column> = right_keys
        .iter()
        .map(|k| eval(k, right, ctx))
        .collect::<Result<_, _>>()?;
    let rrefs: Vec<&Column> = rcols.iter().collect();
    // SQL join keys never match on NULL.
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    let mut key = Vec::new();
    for ri in 0..right.num_rows() {
        if rrefs.iter().any(|c| c.is_null(ri)) {
            continue;
        }
        key.clear();
        hash::encode_key(&rrefs, ri, &mut key);
        table.entry(key.clone()).or_default().push(ri);
    }
    Ok(JoinBuild { table: Some(table) })
}

/// Join one left partition against the shared build side. Returns the
/// output part (matched pairs in left-row order, then — for LEFT/FULL —
/// this partition's null-extended unmatched left rows) and the right rows
/// it matched (consumed by FULL's unmatched-right sweep).
#[allow(clippy::too_many_arguments)]
fn probe_partition(
    left: &Batch,
    right: &Batch,
    build: &JoinBuild,
    kind: JoinKind,
    left_keys: &[PhysExpr],
    residual: Option<&PhysExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
) -> Result<(Batch, Vec<usize>), CdwError> {
    let lrows = left.num_rows();
    let rrows = right.num_rows();

    // Candidate (left, right) pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    match &build.table {
        None => {
            for li in 0..lrows {
                for ri in 0..rrows {
                    pairs.push((li, ri));
                }
            }
        }
        Some(table) => {
            let lcols: Vec<Column> = left_keys
                .iter()
                .map(|k| eval(k, left, ctx))
                .collect::<Result<_, _>>()?;
            let lrefs: Vec<&Column> = lcols.iter().collect();
            let mut key = Vec::new();
            for li in 0..lrows {
                if lrefs.iter().any(|c| c.is_null(li)) {
                    continue;
                }
                key.clear();
                hash::encode_key(&lrefs, li, &mut key);
                if let Some(matches) = table.get(&key) {
                    for &ri in matches {
                        pairs.push((li, ri));
                    }
                }
            }
        }
    }

    // Residual filtering on the candidate pairs.
    if let Some(pred) = residual {
        if !pairs.is_empty() {
            let lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ridx: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let candidate = hstack(schema, &left.take(&lidx), &right.take(&ridx))?;
            let mask_col = eval(pred, &candidate, ctx)?;
            let mut kept = Vec::with_capacity(pairs.len());
            for (i, pair) in pairs.iter().enumerate() {
                if mask_col.value(i) == Value::Bool(true) {
                    kept.push(*pair);
                }
            }
            pairs = kept;
        }
    }

    let matched_right: Vec<usize> = if kind == JoinKind::Full {
        pairs.iter().map(|p| p.1).collect()
    } else {
        Vec::new()
    };

    let mut lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let mut ridx: Vec<Option<usize>> = pairs.iter().map(|p| Some(p.1)).collect();
    if matches!(kind, JoinKind::Left | JoinKind::Full) {
        let mut matched_left = vec![false; lrows];
        for &(li, _) in &pairs {
            matched_left[li] = true;
        }
        for (li, m) in matched_left.iter().enumerate() {
            if !m {
                lidx.push(li);
                ridx.push(None);
            }
        }
    }

    // Assemble output columns for this partition.
    let lwidth = left.num_columns();
    let total = lidx.len();
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let mut b = ColumnBuilder::new(field.dtype, total);
        if c < lwidth {
            let src = left.column(c);
            for &li in &lidx {
                b.push(src.value(li)).map_err(CdwError::from)?;
            }
        } else {
            let src = right.column(c - lwidth);
            for ri in &ridx {
                match ri {
                    Some(ri) => b.push(src.value(*ri)).map_err(CdwError::from)?,
                    None => b.push_null(),
                }
            }
        }
        columns.push(b.finish());
    }
    let batch = Batch::new(schema.clone(), columns).map_err(CdwError::from)?;
    Ok((batch, matched_right))
}

/// FULL OUTER tail: right rows no probe partition matched, null-extended
/// on the left.
fn assemble_right_only(
    right: &Batch,
    unmatched: &[usize],
    schema: &Arc<Schema>,
    lwidth: usize,
) -> Result<Batch, CdwError> {
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        if c < lwidth {
            columns.push(Column::nulls(field.dtype, unmatched.len()));
        } else {
            let src = right.column(c - lwidth);
            let mut b = ColumnBuilder::new(field.dtype, unmatched.len());
            for &ri in unmatched {
                b.push(src.value(ri)).map_err(CdwError::from)?;
            }
            columns.push(b.finish());
        }
    }
    Batch::new(schema.clone(), columns).map_err(CdwError::from)
}

/// Horizontally stack two equal-length batches under the join schema.
fn hstack(schema: &Arc<Schema>, left: &Batch, right: &Batch) -> Result<Batch, CdwError> {
    let mut cols = left.columns().to_vec();
    cols.extend(right.columns().iter().cloned());
    Batch::new(schema.clone(), cols).map_err(CdwError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sigma_value::Field;

    fn int_parts(n: usize) -> Vec<Batch> {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        (0..n)
            .map(|i| Batch::new(schema.clone(), vec![Column::from_ints(vec![i as i64])]).unwrap())
            .collect()
    }

    /// `par_map` must actually distribute partitions across worker
    /// threads (the wall-clock benches can't prove this on a single-core
    /// machine; thread identity can).
    #[test]
    fn par_map_distributes_across_threads() {
        let catalog = Catalog::new();
        let results = HashMap::new();
        let ctx = ExecCtx {
            catalog: &catalog,
            results: &results,
            eval: EvalCtx::default(),
            parallelism: 4,
        };
        let seen = Mutex::new(HashSet::new());
        let out = par_map(&ctx, int_parts(8), |b| {
            seen.lock().insert(std::thread::current().id());
            Ok(b.num_rows())
        })
        .unwrap();
        assert_eq!(out, vec![1; 8]);
        assert!(seen.lock().len() >= 2, "expected multiple worker threads");
    }

    /// Serial mode must not spawn workers at all.
    #[test]
    fn par_map_serial_stays_on_caller_thread() {
        let catalog = Catalog::new();
        let results = HashMap::new();
        let ctx = ExecCtx {
            catalog: &catalog,
            results: &results,
            eval: EvalCtx::default(),
            parallelism: 1,
        };
        let caller = std::thread::current().id();
        par_map(&ctx, int_parts(4), |_| {
            assert_eq!(std::thread::current().id(), caller);
            Ok(())
        })
        .unwrap();
    }

    /// Partial-state merging is associative for the FP-sensitive states:
    /// merging per-partition Welford states in partition order matches a
    /// deterministic left fold, and Avg merges as sum+count.
    #[test]
    fn agg_state_merge_matches_fold() {
        let chunks: [&[f64]; 3] = [&[1.0, 2.0, 3.0], &[10.0], &[4.0, -2.5, 0.0, 7.5]];
        let mut merged = AggState::new(&AggFunc::Variance);
        for chunk in chunks {
            let mut partial = AggState::new(&AggFunc::Variance);
            for &x in chunk {
                partial.update(&Value::Float(x));
            }
            merged.merge(partial);
        }
        let mut serial = AggState::new(&AggFunc::Variance);
        for chunk in chunks {
            for &x in chunk {
                serial.update(&Value::Float(x));
            }
        }
        // Chan's combination is not bit-equal to streaming Welford, but it
        // must agree to fp tolerance — and be deterministic.
        let (Value::Float(m), Value::Float(s)) = (merged.finish(), serial.finish()) else {
            panic!("variance yields floats");
        };
        assert!((m - s).abs() < 1e-9, "{m} vs {s}");

        let mut avg = AggState::new(&AggFunc::Avg);
        avg.update(&Value::Float(1.0));
        let mut other = AggState::new(&AggFunc::Avg);
        other.update(&Value::Float(2.0));
        other.update(&Value::Float(6.0));
        avg.merge(other);
        assert_eq!(avg.finish(), Value::Float(3.0));
    }
}
