//! The vectorized executor: [`Plan`] → [`Batch`].
//!
//! Operators materialize whole batches. Scan → Filter → Project chains run
//! partition-parallel (crossbeam scoped threads) when the warehouse is
//! configured with `parallelism > 1` — the knob the scalability experiment
//! (E8) sweeps. Everything downstream (joins, aggregation, windows, sorts)
//! runs single-threaded on the concatenated result.

use std::collections::HashMap;
use std::sync::Arc;

use sigma_sql::JoinKind;
use sigma_value::{hash, sort, Batch, Column, ColumnBuilder, DataType, Schema, Value};

use crate::catalog::Catalog;
use crate::error::CdwError;
use crate::eval::{eval, EvalCtx, PhysExpr};
use crate::plan::{AggCall, AggFunc, Plan};
use crate::window::compute_window;

/// Execution context (read access to storage plus settings).
pub struct ExecCtx<'a> {
    pub catalog: &'a Catalog,
    pub results: &'a HashMap<String, Batch>,
    pub eval: EvalCtx,
    /// Worker threads for partition-parallel stages (1 = serial).
    pub parallelism: usize,
}

/// Counters accumulated during one query execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    pub rows_scanned: usize,
    pub partitions_scanned: usize,
}

/// Execute a plan to a single batch.
pub fn execute(plan: &Plan, ctx: &ExecCtx, stats: &mut ExecStats) -> Result<Batch, CdwError> {
    let parts = execute_parts(plan, ctx, stats)?;
    match parts.len() {
        0 => Ok(Batch::empty(plan.schema())),
        1 => Ok(parts.into_iter().next().unwrap()),
        _ => {
            let refs: Vec<&Batch> = parts.iter().collect();
            Batch::concat(&refs).map_err(CdwError::from)
        }
    }
}

/// Execute retaining partition structure for the parallel-friendly prefix
/// (Scan / Filter / Project); all other operators collapse to one batch.
fn execute_parts(
    plan: &Plan,
    ctx: &ExecCtx,
    stats: &mut ExecStats,
) -> Result<Vec<Batch>, CdwError> {
    match plan {
        Plan::Scan { table, .. } => {
            let stored = ctx.catalog.get(table)?;
            stats.rows_scanned += stored.num_rows();
            stats.partitions_scanned += stored.partitions().len();
            Ok(stored.partitions().to_vec())
        }
        Plan::ResultScan { id, .. } => {
            let batch = ctx
                .results
                .get(id)
                .ok_or_else(|| CdwError::catalog(format!("persisted result not found: {id}")))?;
            Ok(vec![batch.clone()])
        }
        Plan::Values { batch } => Ok(vec![batch.clone()]),
        Plan::Filter { input, predicate } => {
            let parts = execute_parts(input, ctx, stats)?;
            par_map(ctx, parts, |b| {
                let mask_col = eval(predicate, &b, &ctx.eval)?;
                let mask: Vec<bool> = (0..b.num_rows())
                    .map(|i| mask_col.value(i) == Value::Bool(true))
                    .collect();
                Ok(b.filter(&mask))
            })
        }
        Plan::Project {
            input,
            exprs,
            schema,
        } => {
            let parts = execute_parts(input, ctx, stats)?;
            let exprs = exprs.clone();
            let schema = schema.clone();
            par_map(ctx, parts, move |b| {
                let cols: Vec<Column> = exprs
                    .iter()
                    .zip(schema.fields())
                    .map(|(e, f)| coerce_column(eval(e, &b, &ctx.eval)?, f.dtype))
                    .collect::<Result<_, _>>()?;
                Batch::new(schema.clone(), cols).map_err(CdwError::from)
            })
        }
        Plan::Aggregate {
            input,
            groups,
            aggs,
            schema,
        } => {
            let batch = execute(input, ctx, stats)?;
            Ok(vec![aggregate(&batch, groups, aggs, schema, &ctx.eval)?])
        }
        Plan::Window {
            input,
            calls,
            schema,
        } => {
            let batch = execute(input, ctx, stats)?;
            let mut cols: Vec<Column> = batch.columns().to_vec();
            for (i, call) in calls.iter().enumerate() {
                let out_type = schema.field(batch.num_columns() + i).dtype;
                cols.push(compute_window(call, &batch, out_type, &ctx.eval)?);
            }
            Ok(vec![Batch::new(schema.clone(), cols)?])
        }
        Plan::Join {
            left,
            right,
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        } => {
            let l = execute(left, ctx, stats)?;
            let r = execute(right, ctx, stats)?;
            Ok(vec![hash_join(
                &l,
                &r,
                *kind,
                left_keys,
                right_keys,
                residual.as_ref(),
                schema,
                &ctx.eval,
            )?])
        }
        Plan::Sort { input, keys } => {
            let batch = execute(input, ctx, stats)?;
            let key_cols: Vec<Column> = keys
                .iter()
                .map(|k| eval(&k.expr, &batch, &ctx.eval))
                .collect::<Result<_, _>>()?;
            let refs: Vec<&Column> = key_cols.iter().collect();
            let sort_keys: Vec<sort::SortKey> = keys
                .iter()
                .map(|k| sort::SortKey {
                    descending: k.descending,
                    nulls_last: k.nulls_last.unwrap_or(k.descending),
                })
                .collect();
            let idx = sort::sort_indices(&refs, &sort_keys);
            Ok(vec![batch.take(&idx)])
        }
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let batch = execute(input, ctx, stats)?;
            let start = (*offset as usize).min(batch.num_rows());
            let len = match limit {
                Some(l) => (*l as usize).min(batch.num_rows() - start),
                None => batch.num_rows() - start,
            };
            Ok(vec![batch.slice(start, len)])
        }
        Plan::UnionAll { inputs, schema } => {
            let mut parts = Vec::new();
            for input in inputs {
                let b = execute(input, ctx, stats)?;
                // Re-tag with the union schema (names from the first input).
                parts.push(Batch::new(schema.clone(), b.columns().to_vec())?);
            }
            Ok(parts)
        }
        Plan::Distinct { input } => {
            let batch = execute(input, ctx, stats)?;
            let refs: Vec<&Column> = batch.columns().iter().collect();
            let mut seen = std::collections::HashSet::new();
            let mut keep = Vec::new();
            let mut key = Vec::new();
            for row in 0..batch.num_rows() {
                key.clear();
                hash::encode_key(&refs, row, &mut key);
                if seen.insert(key.clone()) {
                    keep.push(row);
                }
            }
            Ok(vec![batch.take(&keep)])
        }
    }
}

/// Coerce an evaluated column to the declared output type (Int -> Float and
/// Date -> Timestamp widening; all-null columns adopt the target type).
fn coerce_column(col: Column, target: DataType) -> Result<Column, CdwError> {
    if col.dtype() == target {
        return Ok(col);
    }
    // Columns that are entirely null can be retyped freely; typed columns
    // may widen (the cast kernels handle Int->Float and Date->Timestamp).
    col.cast(target).map_err(CdwError::from)
}

/// Map over partitions, in parallel when configured and worthwhile.
fn par_map<F>(ctx: &ExecCtx, parts: Vec<Batch>, f: F) -> Result<Vec<Batch>, CdwError>
where
    F: Fn(Batch) -> Result<Batch, CdwError> + Sync,
{
    if ctx.parallelism <= 1 || parts.len() <= 1 {
        return parts.into_iter().map(f).collect();
    }
    let n = parts.len();
    let threads = ctx.parallelism.min(n);
    let inputs: Vec<(usize, Batch)> = parts.into_iter().enumerate().collect();
    let mut chunks: Vec<Vec<(usize, Batch)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in inputs.into_iter().enumerate() {
        chunks[i % threads].push(item);
    }
    // Each worker owns its chunk and returns its results; no shared state.
    let per_thread: Vec<Vec<(usize, Result<Batch, CdwError>)>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    let f = &f;
                    scope.spawn(move |_| {
                        chunk
                            .into_iter()
                            .map(|(i, batch)| (i, f(batch)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker does not panic"))
                .collect()
        })
        .map_err(|_| CdwError::exec("parallel worker panicked"))?;
    let mut results: Vec<Option<Result<Batch, CdwError>>> = Vec::new();
    results.resize_with(n, || None);
    for chunk in per_thread {
        for (i, r) in chunk {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

// ---------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------

/// Per-group aggregate state.
#[derive(Debug)]
pub enum AggState {
    CountStar(i64),
    Count(i64),
    CountDistinct(std::collections::HashSet<Vec<u8>>),
    SumInt {
        sum: i64,
        any: bool,
    },
    SumFloat {
        sum: f64,
        any: bool,
    },
    Avg {
        sum: f64,
        count: i64,
    },
    MinMax {
        best: Option<Value>,
        is_min: bool,
    },
    Collect {
        values: Vec<f64>,
        frac: f64,
        median: bool,
    },
    Welford {
        n: i64,
        mean: f64,
        m2: f64,
        variance: bool,
    },
    Attr {
        value: Option<Value>,
        conflicted: bool,
    },
}

impl AggState {
    pub fn new(func: &AggFunc) -> AggState {
        match func {
            AggFunc::CountStar => AggState::CountStar(0),
            AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::CountDistinct(Default::default()),
            // Int-ness is decided at finish time by what was accumulated.
            AggFunc::Sum => AggState::SumFloat {
                sum: 0.0,
                any: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::MinMax {
                best: None,
                is_min: true,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                is_min: false,
            },
            AggFunc::Median => AggState::Collect {
                values: Vec::new(),
                frac: 0.5,
                median: true,
            },
            AggFunc::Percentile(p) => AggState::Collect {
                values: Vec::new(),
                frac: *p,
                median: false,
            },
            AggFunc::StdDev => AggState::Welford {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                variance: false,
            },
            AggFunc::Variance => AggState::Welford {
                n: 0,
                mean: 0.0,
                m2: 0.0,
                variance: true,
            },
            AggFunc::Attr => AggState::Attr {
                value: None,
                conflicted: false,
            },
        }
    }

    /// Sum over an Int column keeps Int output.
    pub fn new_for(func: &AggFunc, arg_type: Option<DataType>) -> AggState {
        match (func, arg_type) {
            (AggFunc::Sum, Some(DataType::Int)) => AggState::SumInt { sum: 0, any: false },
            _ => AggState::new(func),
        }
    }

    pub fn update(&mut self, v: &Value) {
        match self {
            AggState::CountStar(n) => *n += 1,
            AggState::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggState::CountDistinct(set) => {
                if !v.is_null() {
                    let mut key = Vec::new();
                    hash::encode_value(v, &mut key);
                    set.insert(key);
                }
            }
            AggState::SumInt { sum, any } => {
                if let Some(x) = v.as_i64() {
                    *sum = sum.wrapping_add(x);
                    *any = true;
                }
            }
            AggState::SumFloat { sum, any } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *any = true;
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::MinMax { best, is_min } => {
                if !v.is_null() {
                    let replace = match best {
                        None => true,
                        Some(b) => {
                            let ord = v.total_cmp(b);
                            if *is_min {
                                ord == std::cmp::Ordering::Less
                            } else {
                                ord == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if replace {
                        *best = Some(v.clone());
                    }
                }
            }
            AggState::Collect { values, .. } => {
                if let Some(x) = v.as_f64() {
                    values.push(x);
                }
            }
            AggState::Welford { n, mean, m2, .. } => {
                if let Some(x) = v.as_f64() {
                    *n += 1;
                    let delta = x - *mean;
                    *mean += delta / *n as f64;
                    *m2 += delta * (x - *mean);
                }
            }
            AggState::Attr { value, conflicted } => {
                if !v.is_null() && !*conflicted {
                    match value {
                        None => *value = Some(v.clone()),
                        Some(prev) => {
                            if !prev.sql_eq(v) {
                                *conflicted = true;
                                *value = None;
                            }
                        }
                    }
                }
            }
        }
    }

    pub fn finish(self) -> Value {
        match self {
            AggState::CountStar(n) | AggState::Count(n) => Value::Int(n),
            AggState::CountDistinct(set) => Value::Int(set.len() as i64),
            AggState::SumInt { sum, any } => {
                if any {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, any } => {
                if any {
                    Value::Float(sum)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Collect {
                mut values, frac, ..
            } => {
                if values.is_empty() {
                    return Value::Null;
                }
                values.sort_by(f64::total_cmp);
                let rank = frac.clamp(0.0, 1.0) * (values.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                let v = if lo == hi {
                    values[lo]
                } else {
                    values[lo] + (values[hi] - values[lo]) * (rank - lo as f64)
                };
                Value::Float(v)
            }
            AggState::Welford {
                n, m2, variance, ..
            } => {
                if n < 2 {
                    return Value::Null;
                }
                let var = m2 / (n - 1) as f64;
                Value::Float(if variance { var } else { var.sqrt() })
            }
            AggState::Attr { value, .. } => value.unwrap_or(Value::Null),
        }
    }
}

fn aggregate(
    batch: &Batch,
    groups: &[PhysExpr],
    aggs: &[AggCall],
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
) -> Result<Batch, CdwError> {
    let rows = batch.num_rows();
    let group_cols: Vec<Column> = groups
        .iter()
        .map(|g| eval(g, batch, ctx))
        .collect::<Result<_, _>>()?;
    let arg_cols: Vec<Option<Column>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| eval(e, batch, ctx)).transpose())
        .collect::<Result<_, _>>()?;

    let mut group_index: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut representatives: Vec<usize> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    let new_states = || -> Vec<AggState> {
        aggs.iter()
            .zip(&arg_cols)
            .map(|(a, c)| AggState::new_for(&a.func, c.as_ref().map(|c| c.dtype())))
            .collect()
    };

    if groups.is_empty() {
        // Global aggregate: one group even over zero rows.
        states.push(new_states());
        representatives.push(0);
        for row in 0..rows {
            for (slot, state) in states[0].iter_mut().enumerate() {
                match &arg_cols[slot] {
                    Some(c) => state.update(&c.value(row)),
                    None => state.update(&Value::Int(1)),
                }
            }
        }
    } else {
        let refs: Vec<&Column> = group_cols.iter().collect();
        let mut key = Vec::new();
        for row in 0..rows {
            key.clear();
            hash::encode_key(&refs, row, &mut key);
            let next = states.len();
            let idx = *group_index.entry(key.clone()).or_insert(next);
            if idx == states.len() {
                states.push(new_states());
                representatives.push(row);
            }
            for (slot, state) in states[idx].iter_mut().enumerate() {
                match &arg_cols[slot] {
                    Some(c) => state.update(&c.value(row)),
                    None => state.update(&Value::Int(1)),
                }
            }
        }
    }

    let ngroups = states.len();
    let mut builders: Vec<ColumnBuilder> = schema
        .fields()
        .iter()
        .map(|f| ColumnBuilder::new(f.dtype, ngroups))
        .collect();
    for (gi, state_row) in states.into_iter().enumerate() {
        for (ci, gcol) in group_cols.iter().enumerate() {
            let v = if groups.is_empty() {
                Value::Null
            } else {
                gcol.value(representatives[gi])
            };
            builders[ci].push(v).map_err(CdwError::from)?;
        }
        for (si, state) in state_row.into_iter().enumerate() {
            builders[group_cols.len() + si]
                .push(state.finish())
                .map_err(CdwError::from)?;
        }
    }
    Batch::new(
        schema.clone(),
        builders.into_iter().map(|b| b.finish()).collect(),
    )
    .map_err(CdwError::from)
}

// ---------------------------------------------------------------------
// joins
// ---------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &Batch,
    right: &Batch,
    kind: JoinKind,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    residual: Option<&PhysExpr>,
    schema: &Arc<Schema>,
    ctx: &EvalCtx,
) -> Result<Batch, CdwError> {
    let lrows = left.num_rows();
    let rrows = right.num_rows();

    // Candidate (left, right) pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    if kind == JoinKind::Cross || left_keys.is_empty() {
        for li in 0..lrows {
            for ri in 0..rrows {
                pairs.push((li, ri));
            }
        }
    } else {
        let lcols: Vec<Column> = left_keys
            .iter()
            .map(|k| eval(k, left, ctx))
            .collect::<Result<_, _>>()?;
        let rcols: Vec<Column> = right_keys
            .iter()
            .map(|k| eval(k, right, ctx))
            .collect::<Result<_, _>>()?;
        // SQL join keys never match on NULL.
        let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
        let rrefs: Vec<&Column> = rcols.iter().collect();
        let mut key = Vec::new();
        for ri in 0..rrows {
            if rrefs.iter().any(|c| c.is_null(ri)) {
                continue;
            }
            key.clear();
            hash::encode_key(&rrefs, ri, &mut key);
            table.entry(key.clone()).or_default().push(ri);
        }
        let lrefs: Vec<&Column> = lcols.iter().collect();
        for li in 0..lrows {
            if lrefs.iter().any(|c| c.is_null(li)) {
                continue;
            }
            key.clear();
            hash::encode_key(&lrefs, li, &mut key);
            if let Some(matches) = table.get(&key) {
                for &ri in matches {
                    pairs.push((li, ri));
                }
            }
        }
    }

    // Residual filtering on the candidate pairs.
    if let Some(pred) = residual {
        if !pairs.is_empty() {
            let lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
            let ridx: Vec<usize> = pairs.iter().map(|p| p.1).collect();
            let candidate = hstack(schema, &left.take(&lidx), &right.take(&ridx))?;
            let mask_col = eval(pred, &candidate, ctx)?;
            let mut kept = Vec::with_capacity(pairs.len());
            for (i, pair) in pairs.iter().enumerate() {
                if mask_col.value(i) == Value::Bool(true) {
                    kept.push(*pair);
                }
            }
            pairs = kept;
        }
    }

    let mut lidx: Vec<usize> = pairs.iter().map(|p| p.0).collect();
    let mut ridx: Vec<Option<usize>> = pairs.iter().map(|p| Some(p.1)).collect();

    if matches!(kind, JoinKind::Left | JoinKind::Full) {
        let mut matched_left = vec![false; lrows];
        for &(li, _) in &pairs {
            matched_left[li] = true;
        }
        for (li, m) in matched_left.iter().enumerate() {
            if !m {
                lidx.push(li);
                ridx.push(None);
            }
        }
    }
    let mut extra_right: Vec<usize> = Vec::new();
    if kind == JoinKind::Full {
        let mut matched_right = vec![false; rrows];
        for &(_, ri) in &pairs {
            matched_right[ri] = true;
        }
        for (ri, m) in matched_right.iter().enumerate() {
            if !m {
                extra_right.push(ri);
            }
        }
    }

    // Assemble output columns.
    let lwidth = left.num_columns();
    let total = lidx.len() + extra_right.len();
    let mut columns: Vec<Column> = Vec::with_capacity(schema.len());
    for (c, field) in schema.fields().iter().enumerate() {
        let mut b = ColumnBuilder::new(field.dtype, total);
        if c < lwidth {
            let src = left.column(c);
            for &li in &lidx {
                b.push(src.value(li)).map_err(CdwError::from)?;
            }
            for _ in &extra_right {
                b.push_null();
            }
        } else {
            let src = right.column(c - lwidth);
            for ri in &ridx {
                match ri {
                    Some(ri) => b.push(src.value(*ri)).map_err(CdwError::from)?,
                    None => b.push_null(),
                }
            }
            for &ri in &extra_right {
                b.push(src.value(ri)).map_err(CdwError::from)?;
            }
        }
        columns.push(b.finish());
    }
    Batch::new(schema.clone(), columns).map_err(CdwError::from)
}

/// Horizontally stack two equal-length batches under the join schema.
fn hstack(schema: &Arc<Schema>, left: &Batch, right: &Batch) -> Result<Batch, CdwError> {
    let mut cols = left.columns().to_vec();
    cols.extend(right.columns().iter().cloned());
    Batch::new(schema.clone(), cols).map_err(CdwError::from)
}
