//! Name resolution and logical planning: `sigma_sql` AST → [`Plan`].
//!
//! The planner performs the SQL semantic analysis the compiler's output
//! relies on: scope construction over FROM/JOIN trees, aggregate rewriting
//! (GROUP BY + HAVING), window extraction (including QUALIFY), wildcard
//! expansion, alias-aware ORDER BY (with hidden sort columns when ordering
//! by non-projected expressions), and VALUES const evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use sigma_sql::{JoinKind, OrderExpr, Query, Select, SelectItem, SetExpr, SqlExpr, TableRef};
use sigma_value::{Batch, ColumnBuilder, DataType, Field, Schema, Value};

use crate::catalog::Catalog;
use crate::error::CdwError;
use crate::eval::{self, EvalCtx, PhysExpr, ScalarFunc};
use crate::plan::{AggCall, AggFunc, AggMode, Plan, SortSpec, WinFunc, WindowCall};

/// Equi-join decomposition: (left keys, right keys, residual predicate).
type JoinKeySplit = (Vec<PhysExpr>, Vec<PhysExpr>, Option<PhysExpr>);

/// Resolution context: an ordered list of (binding name, schema) pairs.
#[derive(Debug, Clone, Default)]
struct Scope {
    bindings: Vec<(String, Arc<Schema>)>,
}

impl Scope {
    fn single(name: impl Into<String>, schema: Arc<Schema>) -> Scope {
        Scope {
            bindings: vec![(name.into(), schema)],
        }
    }

    fn width(&self) -> usize {
        self.bindings.iter().map(|(_, s)| s.len()).sum()
    }

    fn push(&mut self, name: impl Into<String>, schema: Arc<Schema>) {
        self.bindings.push((name.into(), schema));
    }

    /// Resolve a column to (global ordinal, type).
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<(usize, DataType), CdwError> {
        let mut offset = 0;
        let mut found: Option<(usize, DataType)> = None;
        for (binding, schema) in &self.bindings {
            if let Some(t) = table {
                if !binding.eq_ignore_ascii_case(t) {
                    offset += schema.len();
                    continue;
                }
            }
            if let Some(i) = schema.index_of(name) {
                if found.is_some() {
                    return Err(CdwError::plan(format!("ambiguous column: {name}")));
                }
                found = Some((offset + i, schema.field(i).dtype));
            } else if let Some(t) = table {
                return Err(CdwError::plan(format!("column {name} not found in {t}")));
            }
            offset += schema.len();
        }
        found.ok_or_else(|| CdwError::plan(format!("column not found: {name}")))
    }

    /// All columns in scope order: (binding, field name, global ordinal).
    fn all_columns(&self) -> Vec<(String, String, usize)> {
        let mut out = Vec::new();
        let mut offset = 0;
        for (binding, schema) in &self.bindings {
            for (i, f) in schema.fields().iter().enumerate() {
                out.push((binding.clone(), f.name.clone(), offset + i));
            }
            offset += schema.len();
        }
        out
    }

    fn types(&self) -> Vec<DataType> {
        self.bindings
            .iter()
            .flat_map(|(_, s)| s.fields().iter().map(|f| f.dtype))
            .collect()
    }
}

/// Planner over a catalog plus the persisted-result directory (for
/// `RESULT_SCAN` schemas).
pub struct Planner<'a> {
    pub catalog: &'a Catalog,
    pub results: &'a HashMap<String, Batch>,
}

const AGG_NAMES: &[(&str, AggFunc)] = &[
    ("COUNT", AggFunc::Count),
    ("SUM", AggFunc::Sum),
    ("AVG", AggFunc::Avg),
    ("MIN", AggFunc::Min),
    ("MAX", AggFunc::Max),
    ("MEDIAN", AggFunc::Median),
    ("STDDEV", AggFunc::StdDev),
    ("STDDEV_SAMP", AggFunc::StdDev),
    ("VARIANCE", AggFunc::Variance),
    ("VAR_SAMP", AggFunc::Variance),
    ("ATTR", AggFunc::Attr),
    ("ANY_VALUE", AggFunc::Attr),
];

pub(crate) fn agg_func_for(name: &str) -> Option<AggFunc> {
    let upper = name.to_ascii_uppercase();
    if upper == "PERCENTILE_CONT" {
        // Fraction filled in at build time from the literal second arg.
        return Some(AggFunc::Percentile(0.5));
    }
    AGG_NAMES
        .iter()
        .find(|(n, _)| *n == upper)
        .map(|(_, f)| f.clone())
}

fn win_func_for(name: &str) -> Option<WinFunc> {
    let upper = name.to_ascii_uppercase();
    Some(match upper.as_str() {
        "ROW_NUMBER" => WinFunc::RowNumber,
        "RANK" => WinFunc::Rank,
        "DENSE_RANK" => WinFunc::DenseRank,
        "NTILE" => WinFunc::Ntile,
        "LAG" => WinFunc::Lag,
        "LEAD" => WinFunc::Lead,
        "FIRST_VALUE" => WinFunc::FirstValue,
        "LAST_VALUE" => WinFunc::LastValue,
        "NTH_VALUE" => WinFunc::NthValue,
        _ => WinFunc::Agg(agg_func_for(&upper)?),
    })
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog, results: &'a HashMap<String, Batch>) -> Planner<'a> {
        Planner { catalog, results }
    }

    /// Plan a full query.
    pub fn plan_query(&self, query: &Query) -> Result<Plan, CdwError> {
        self.plan_query_env(query, &HashMap::new())
    }

    fn plan_query_env(
        &self,
        query: &Query,
        outer_ctes: &HashMap<String, Plan>,
    ) -> Result<Plan, CdwError> {
        let mut ctes = outer_ctes.clone();
        for (name, cte_query) in &query.ctes {
            let plan = self.plan_query_env(cte_query, &ctes)?;
            ctes.insert(name.to_ascii_lowercase(), plan);
        }
        let mut plan = match &query.body {
            SetExpr::Select(select) => self.plan_select(select, &query.order_by, &ctes)?,
            SetExpr::UnionAll(_, _) => {
                let mut inputs = Vec::new();
                flatten_union(&query.body, &mut inputs);
                let plans: Vec<Plan> = inputs
                    .iter()
                    .map(|s| match s {
                        SetExpr::Select(sel) => self.plan_select(sel, &[], &ctes),
                        SetExpr::Values(rows) => self.plan_values(rows),
                        SetExpr::UnionAll(_, _) => unreachable!("flattened"),
                    })
                    .collect::<Result<_, _>>()?;
                let unioned = plan_union(plans)?;
                // ORDER BY on a union resolves against the union schema.
                self.apply_order(unioned, &query.order_by)?
            }
            SetExpr::Values(rows) => {
                let v = self.plan_values(rows)?;
                self.apply_order(v, &query.order_by)?
            }
        };
        if query.limit.is_some() || query.offset.is_some() {
            plan = Plan::Limit {
                input: Box::new(plan),
                limit: query.limit,
                offset: query.offset.unwrap_or(0),
            };
        }
        Ok(plan)
    }

    /// Sort by output-schema column references only (used for UNION/VALUES).
    fn apply_order(&self, plan: Plan, order_by: &[OrderExpr]) -> Result<Plan, CdwError> {
        if order_by.is_empty() {
            return Ok(plan);
        }
        let scope = Scope::single("", plan.schema());
        let keys = order_by
            .iter()
            .map(|o| {
                Ok(SortSpec {
                    expr: self.resolve(&o.expr, &scope)?,
                    descending: o.descending,
                    nulls_last: o.nulls_last,
                })
            })
            .collect::<Result<Vec<_>, CdwError>>()?;
        Ok(Plan::Sort {
            input: Box::new(plan),
            keys,
        })
    }

    fn plan_values(&self, rows: &[Vec<SqlExpr>]) -> Result<Plan, CdwError> {
        if rows.is_empty() {
            return Err(CdwError::plan("VALUES requires at least one row"));
        }
        let ncols = rows[0].len();
        let mut values: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != ncols {
                return Err(CdwError::plan("VALUES rows have differing arity"));
            }
            values.push(
                row.iter()
                    .map(|e| self.const_eval(e))
                    .collect::<Result<_, _>>()?,
            );
        }
        // Infer each column type from the first non-null value.
        let mut fields = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let mut dtype = None;
            for row in &values {
                if let Some(t) = row[c].dtype() {
                    dtype = Some(match dtype {
                        None => t,
                        Some(prev) => DataType::unify(prev, t).ok_or_else(|| {
                            CdwError::plan(format!("VALUES column {} mixes types", c + 1))
                        })?,
                    });
                }
            }
            fields.push(Field::new(
                format!("column{}", c + 1),
                dtype.unwrap_or(DataType::Text),
            ));
        }
        let schema = Arc::new(Schema::new(fields));
        let mut builders: Vec<ColumnBuilder> = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(f.dtype, values.len()))
            .collect();
        for row in &values {
            for (b, v) in builders.iter_mut().zip(row) {
                b.push(v.clone()).map_err(CdwError::from)?;
            }
        }
        let batch = Batch::new(schema, builders.into_iter().map(|b| b.finish()).collect())?;
        Ok(Plan::Values { batch })
    }

    /// Evaluate a constant expression (no column references).
    pub fn const_eval(&self, expr: &SqlExpr) -> Result<Value, CdwError> {
        let phys = self.resolve(expr, &Scope::default())?;
        let schema = Arc::new(Schema::new(vec![Field::new("$const", DataType::Int)]));
        let batch = Batch::new(schema, vec![sigma_value::Column::from_ints(vec![0])])?;
        let col = eval::eval(&phys, &batch, &EvalCtx::default())?;
        Ok(col.value(0))
    }

    // ------------------------------------------------------------------
    // SELECT planning
    // ------------------------------------------------------------------

    fn plan_select(
        &self,
        select: &Select,
        order_by: &[OrderExpr],
        ctes: &HashMap<String, Plan>,
    ) -> Result<Plan, CdwError> {
        // 1. FROM / JOINs.
        let (mut plan, mut scope) = match &select.from {
            Some(t) => self.plan_table_ref(t, ctes)?,
            None => {
                // SELECT without FROM: one synthetic row.
                let schema = Arc::new(Schema::new(vec![Field::new("$dual", DataType::Int)]));
                let batch = Batch::new(
                    schema.clone(),
                    vec![sigma_value::Column::from_ints(vec![0])],
                )?;
                (Plan::Values { batch }, Scope::single("$dual", schema))
            }
        };
        for join in &select.joins {
            let (right_plan, right_scope) = self.plan_table_ref(&join.relation, ctes)?;
            let left_width = scope.width();
            // Scope for the ON clause covers both sides.
            let mut joined_scope = scope.clone();
            for (b, s) in &right_scope.bindings {
                joined_scope.push(b.clone(), s.clone());
            }
            let (left_keys, right_keys, residual) = match &join.on {
                None => (Vec::new(), Vec::new(), None),
                Some(on) => self.split_join_keys(on, &joined_scope, left_width)?,
            };
            if join.kind != JoinKind::Cross && left_keys.is_empty() && residual.is_none() {
                return Err(CdwError::plan("join requires an ON condition"));
            }
            let schema = join_output_schema(&plan.schema(), &right_plan.schema());
            plan = Plan::Join {
                left: Box::new(plan),
                right: Box::new(right_plan),
                kind: join.kind,
                left_keys,
                right_keys,
                residual,
                schema,
            };
            scope = joined_scope;
        }

        // 2. WHERE.
        if let Some(selection) = &select.selection {
            let predicate = self.resolve(selection, &scope)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // Expand wildcards now so later rewriting sees concrete exprs.
        let mut projection: Vec<(SqlExpr, Option<String>)> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    for (binding, name, _) in scope.all_columns() {
                        if name.starts_with('$') {
                            continue; // synthetic dual column
                        }
                        projection.push((
                            SqlExpr::Column {
                                table: Some(binding),
                                name: name.clone(),
                            },
                            Some(name),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    projection.push((expr.clone(), alias.clone()));
                }
            }
        }
        if projection.is_empty() {
            return Err(CdwError::plan("SELECT list is empty"));
        }
        // Output names derive from the pre-rewrite expressions (aggregate
        // and window rewriting replaces them with #agg/#win placeholders).
        let base_names: Vec<String> = projection
            .iter()
            .enumerate()
            .map(|(i, (e, alias))| {
                alias.clone().unwrap_or_else(|| match e {
                    SqlExpr::Column { name, .. } => name.clone(),
                    _ => format!("col_{}", i + 1),
                })
            })
            .collect();

        let mut having = select.having.clone();
        let mut qualify = select.qualify.clone();
        let mut order_exprs: Vec<OrderExpr> = order_by.to_vec();

        // 3. Aggregation.
        let needs_agg = !select.group_by.is_empty()
            || projection.iter().any(|(e, _)| contains_agg(e))
            || having.as_ref().is_some_and(contains_agg);
        if needs_agg {
            // Collect distinct aggregate subtrees from every outer expr.
            let mut agg_subtrees: Vec<SqlExpr> = Vec::new();
            for (e, _) in &projection {
                collect_aggs(e, &mut agg_subtrees);
            }
            if let Some(h) = &having {
                collect_aggs(h, &mut agg_subtrees);
            }
            if let Some(q) = &qualify {
                collect_aggs(q, &mut agg_subtrees);
            }
            for o in &order_exprs {
                collect_aggs(&o.expr, &mut agg_subtrees);
            }

            let groups: Vec<PhysExpr> = select
                .group_by
                .iter()
                .map(|g| self.resolve(g, &scope))
                .collect::<Result<_, _>>()?;
            let aggs: Vec<AggCall> = agg_subtrees
                .iter()
                .map(|a| self.build_agg_call(a, &scope))
                .collect::<Result<_, _>>()?;

            // Aggregate output schema: _g0.. then _a0..
            let input_types = scope.types();
            let mut fields = Vec::new();
            for (i, g) in groups.iter().enumerate() {
                let t = eval::infer_type(g, &input_types)?.unwrap_or(DataType::Text);
                fields.push(Field::new(format!("_g{i}"), t));
            }
            for (i, a) in aggs.iter().enumerate() {
                let arg_t = match &a.arg {
                    Some(e) => eval::infer_type(e, &input_types)?,
                    None => None,
                };
                fields.push(Field::new(format!("_a{i}"), a.func.output_type(arg_t)));
            }
            let agg_schema = Arc::new(Schema::new(fields));
            plan = Plan::Aggregate {
                input: Box::new(plan),
                groups,
                aggs,
                schema: agg_schema.clone(),
                mode: AggMode::Single,
            };

            // Rewrite outer expressions to reference the aggregate output.
            let mut mapping: Vec<(SqlExpr, SqlExpr)> = Vec::new();
            for (i, g) in select.group_by.iter().enumerate() {
                mapping.push((
                    g.clone(),
                    SqlExpr::Column {
                        table: Some("#agg".into()),
                        name: format!("_g{i}"),
                    },
                ));
            }
            for (i, a) in agg_subtrees.iter().enumerate() {
                mapping.push((
                    a.clone(),
                    SqlExpr::Column {
                        table: Some("#agg".into()),
                        name: format!("_a{i}"),
                    },
                ));
            }
            for (e, _) in &mut projection {
                *e = replace_subtrees(e, &mapping);
            }
            if let Some(h) = &mut having {
                *h = replace_subtrees(h, &mapping);
            }
            if let Some(q) = &mut qualify {
                *q = replace_subtrees(q, &mapping);
            }
            for o in &mut order_exprs {
                o.expr = replace_subtrees(&o.expr, &mapping);
            }
            scope = Scope::single("#agg", agg_schema);

            if let Some(h) = having.take() {
                let predicate = self.resolve(&h, &scope)?;
                plan = Plan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            }
        } else if select.having.is_some() {
            return Err(CdwError::plan("HAVING without aggregation"));
        }

        // 4. Window functions.
        let mut win_subtrees: Vec<SqlExpr> = Vec::new();
        for (e, _) in &projection {
            collect_windows(e, &mut win_subtrees);
        }
        if let Some(q) = &qualify {
            collect_windows(q, &mut win_subtrees);
        }
        for o in &order_exprs {
            collect_windows(&o.expr, &mut win_subtrees);
        }
        if !win_subtrees.is_empty() {
            let input_types = scope.types();
            let calls: Vec<WindowCall> = win_subtrees
                .iter()
                .map(|w| self.build_window_call(w, &scope))
                .collect::<Result<_, _>>()?;
            let mut win_fields = Vec::new();
            for (i, c) in calls.iter().enumerate() {
                let t = window_output_type(c, &input_types)?;
                win_fields.push(Field::new(format!("_w{i}"), t));
            }
            let win_fragment = Arc::new(Schema::new(win_fields));
            // Full window output schema = input fields + fragment.
            let mut all_fields: Vec<Field> = plan.schema().fields().to_vec();
            let mut suffix = 0;
            for f in win_fragment.fields() {
                let mut name = f.name.clone();
                while all_fields
                    .iter()
                    .any(|x| x.name.eq_ignore_ascii_case(&name))
                {
                    suffix += 1;
                    name = format!("{} ({suffix})", f.name);
                }
                all_fields.push(Field::new(name, f.dtype));
            }
            let win_schema = Arc::new(Schema::new(all_fields));
            plan = Plan::Window {
                input: Box::new(plan),
                calls,
                schema: win_schema,
            };
            let mut mapping: Vec<(SqlExpr, SqlExpr)> = Vec::new();
            for (i, w) in win_subtrees.iter().enumerate() {
                mapping.push((
                    w.clone(),
                    SqlExpr::Column {
                        table: Some("#win".into()),
                        name: format!("_w{i}"),
                    },
                ));
            }
            for (e, _) in &mut projection {
                *e = replace_subtrees(e, &mapping);
            }
            if let Some(q) = &mut qualify {
                *q = replace_subtrees(q, &mapping);
            }
            for o in &mut order_exprs {
                o.expr = replace_subtrees(&o.expr, &mapping);
            }
            scope.push("#win", win_fragment);
        }

        // 5. QUALIFY.
        if let Some(q) = qualify.take() {
            let predicate = self.resolve(&q, &scope)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // 6. Projection.
        let input_types = scope.types();
        let mut out_fields: Vec<Field> = Vec::new();
        let mut out_exprs: Vec<PhysExpr> = Vec::new();
        for (i, (e, _alias)) in projection.iter().enumerate() {
            let phys = self.resolve(e, &scope)?;
            let dtype = eval::infer_type(&phys, &input_types)?.unwrap_or(DataType::Text);
            let base_name = base_names[i].clone();
            let mut name = base_name.clone();
            let mut suffix = 2;
            while out_fields
                .iter()
                .any(|f| f.name.eq_ignore_ascii_case(&name))
            {
                name = format!("{base_name} ({suffix})");
                suffix += 1;
            }
            out_fields.push(Field::new(name, dtype));
            out_exprs.push(phys);
        }

        // 7. ORDER BY: resolve against output names first, hidden columns
        // for anything else.
        let out_schema = Arc::new(Schema::new(out_fields.clone()));
        let mut sort_keys: Vec<SortSpec> = Vec::new();
        let mut hidden: Vec<(PhysExpr, DataType)> = Vec::new();
        for o in &order_exprs {
            let out_scope = Scope::single("", out_schema.clone());
            match self.resolve(&o.expr, &out_scope) {
                Ok(expr) => sort_keys.push(SortSpec {
                    expr,
                    descending: o.descending,
                    nulls_last: o.nulls_last,
                }),
                Err(_) => {
                    // Hidden sort column evaluated over the input scope.
                    let phys = self.resolve(&o.expr, &scope)?;
                    let dtype = eval::infer_type(&phys, &input_types)?.unwrap_or(DataType::Text);
                    let idx = out_schema.len() + hidden.len();
                    hidden.push((phys, dtype));
                    sort_keys.push(SortSpec {
                        expr: PhysExpr::Col(idx),
                        descending: o.descending,
                        nulls_last: o.nulls_last,
                    });
                }
            }
        }

        let visible = out_exprs.len();
        let mut proj_fields = out_fields;
        let mut proj_exprs = out_exprs;
        for (i, (e, t)) in hidden.iter().enumerate() {
            proj_fields.push(Field::new(format!("$sort{i}"), *t));
            proj_exprs.push(e.clone());
        }
        let proj_schema = Arc::new(Schema::new(proj_fields));
        plan = Plan::Project {
            input: Box::new(plan),
            exprs: proj_exprs,
            schema: proj_schema.clone(),
        };

        if select.distinct {
            if !hidden.is_empty() {
                return Err(CdwError::plan(
                    "ORDER BY expressions must appear in the select list when DISTINCT is used",
                ));
            }
            plan = Plan::Distinct {
                input: Box::new(plan),
                mode: AggMode::Single,
            };
        }

        if !sort_keys.is_empty() {
            plan = Plan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }

        if !hidden.is_empty() {
            // Drop hidden sort columns.
            let exprs: Vec<PhysExpr> = (0..visible).map(PhysExpr::Col).collect();
            plan = Plan::Project {
                input: Box::new(plan),
                exprs,
                schema: out_schema,
            };
        }
        Ok(plan)
    }

    fn plan_table_ref(
        &self,
        t: &TableRef,
        ctes: &HashMap<String, Plan>,
    ) -> Result<(Plan, Scope), CdwError> {
        match t {
            TableRef::Table { name, alias } => {
                let base = name.base();
                let binding = alias.clone().unwrap_or_else(|| base.to_string());
                if name.0.len() == 1 {
                    if let Some(cte) = ctes.get(&base.to_ascii_lowercase()) {
                        let plan = cte.clone();
                        let schema = plan.schema();
                        return Ok((plan, Scope::single(binding, schema)));
                    }
                }
                let table = self.catalog.get(&name.to_dotted())?;
                let schema = table.schema().clone();
                Ok((
                    Plan::Scan {
                        table: name.to_dotted(),
                        schema: schema.clone(),
                    },
                    Scope::single(binding, schema),
                ))
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.plan_query_env(query, ctes)?;
                let schema = plan.schema();
                Ok((plan, Scope::single(alias.clone(), schema)))
            }
            TableRef::Function { name, args, alias } => {
                if !name.eq_ignore_ascii_case("RESULT_SCAN") {
                    return Err(CdwError::plan(format!("unknown table function {name}")));
                }
                let id = match args.first() {
                    Some(SqlExpr::Literal(Value::Text(s))) => s.clone(),
                    _ => return Err(CdwError::plan("RESULT_SCAN expects a query id string")),
                };
                let batch = self.results.get(&id).ok_or_else(|| {
                    CdwError::catalog(format!("persisted result not found: {id}"))
                })?;
                let schema = batch.schema().clone();
                let binding = alias.clone().unwrap_or_else(|| "result".to_string());
                Ok((
                    Plan::ResultScan {
                        id,
                        schema: schema.clone(),
                    },
                    Scope::single(binding, schema),
                ))
            }
        }
    }

    /// Split an ON conjunction into hash keys and a residual predicate.
    fn split_join_keys(
        &self,
        on: &SqlExpr,
        joined_scope: &Scope,
        left_width: usize,
    ) -> Result<JoinKeySplit, CdwError> {
        let mut conjuncts = Vec::new();
        split_conjuncts(on, &mut conjuncts);
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Vec<PhysExpr> = Vec::new();
        for c in conjuncts {
            if let SqlExpr::Binary {
                op: sigma_sql::SqlBinaryOp::Eq,
                left,
                right,
            } = c
            {
                let l = self.resolve(left, joined_scope)?;
                let r = self.resolve(right, joined_scope)?;
                let side = |e: &PhysExpr| {
                    let mut cols = Vec::new();
                    e.columns_used(&mut cols);
                    if cols.iter().all(|&i| i < left_width) {
                        Some(true) // left side
                    } else if cols.iter().all(|&i| i >= left_width) {
                        Some(false)
                    } else {
                        None
                    }
                };
                match (side(&l), side(&r)) {
                    (Some(true), Some(false)) => {
                        left_keys.push(l);
                        let mut r = r;
                        r.remap_columns(&|i| i - left_width);
                        right_keys.push(r);
                        continue;
                    }
                    (Some(false), Some(true)) => {
                        let mut l = l;
                        l.remap_columns(&|i| i - left_width);
                        left_keys.push(r);
                        right_keys.push(l);
                        continue;
                    }
                    _ => {
                        residual.push(PhysExpr::Binary {
                            op: sigma_sql::SqlBinaryOp::Eq,
                            left: Box::new(l),
                            right: Box::new(r),
                        });
                        continue;
                    }
                }
            }
            residual.push(self.resolve(c, joined_scope)?);
        }
        let residual = residual.into_iter().reduce(|a, b| PhysExpr::Binary {
            op: sigma_sql::SqlBinaryOp::And,
            left: Box::new(a),
            right: Box::new(b),
        });
        Ok((left_keys, right_keys, residual))
    }

    fn build_agg_call(&self, e: &SqlExpr, scope: &Scope) -> Result<AggCall, CdwError> {
        let SqlExpr::Func {
            name,
            args,
            distinct,
        } = e
        else {
            return Err(CdwError::plan("not an aggregate"));
        };
        let upper = name.to_ascii_uppercase();
        let func = agg_func_for(&upper)
            .ok_or_else(|| CdwError::plan(format!("unknown aggregate {name}")))?;
        // Reject window functions nested inside aggregate arguments.
        for a in args {
            let mut wins = Vec::new();
            collect_windows(a, &mut wins);
            if !wins.is_empty() {
                return Err(CdwError::plan(
                    "window functions are not allowed inside aggregate arguments",
                ));
            }
        }
        match upper.as_str() {
            "COUNT" => {
                if args.is_empty() || matches!(args[0], SqlExpr::Star) {
                    if *distinct {
                        return Err(CdwError::plan("COUNT(DISTINCT *) is not supported"));
                    }
                    Ok(AggCall {
                        func: AggFunc::CountStar,
                        arg: None,
                    })
                } else {
                    let arg = self.resolve(&args[0], scope)?;
                    let func = if *distinct {
                        AggFunc::CountDistinct
                    } else {
                        AggFunc::Count
                    };
                    Ok(AggCall {
                        func,
                        arg: Some(arg),
                    })
                }
            }
            "PERCENTILE_CONT" => {
                let frac = match args.get(1) {
                    Some(SqlExpr::Literal(v)) => v.as_f64().ok_or_else(|| {
                        CdwError::plan("PERCENTILE_CONT fraction must be numeric")
                    })?,
                    _ => {
                        return Err(CdwError::plan(
                            "PERCENTILE_CONT expects (expr, literal fraction)",
                        ))
                    }
                };
                let arg = self.resolve(&args[0], scope)?;
                Ok(AggCall {
                    func: AggFunc::Percentile(frac),
                    arg: Some(arg),
                })
            }
            _ => {
                if args.len() != 1 {
                    return Err(CdwError::plan(format!("{name} expects one argument")));
                }
                if *distinct {
                    return Err(CdwError::plan(format!("{name} DISTINCT is not supported")));
                }
                let arg = self.resolve(&args[0], scope)?;
                Ok(AggCall {
                    func,
                    arg: Some(arg),
                })
            }
        }
    }

    fn build_window_call(&self, e: &SqlExpr, scope: &Scope) -> Result<WindowCall, CdwError> {
        let SqlExpr::WindowFunc {
            name,
            args,
            ignore_nulls,
            spec,
        } = e
        else {
            return Err(CdwError::plan("not a window function"));
        };
        let func = win_func_for(name)
            .ok_or_else(|| CdwError::plan(format!("unknown window function {name}")))?;
        let args: Vec<PhysExpr> = args
            .iter()
            .map(|a| {
                if matches!(a, SqlExpr::Star) {
                    // COUNT(*) OVER: no argument.
                    Ok(PhysExpr::lit(1i64))
                } else {
                    self.resolve(a, scope)
                }
            })
            .collect::<Result<_, _>>()?;
        let partition: Vec<PhysExpr> = spec
            .partition_by
            .iter()
            .map(|p| self.resolve(p, scope))
            .collect::<Result<_, _>>()?;
        let order: Vec<SortSpec> = spec
            .order_by
            .iter()
            .map(|o| {
                Ok(SortSpec {
                    expr: self.resolve(&o.expr, scope)?,
                    descending: o.descending,
                    nulls_last: o.nulls_last,
                })
            })
            .collect::<Result<Vec<_>, CdwError>>()?;
        Ok(WindowCall {
            func,
            args,
            ignore_nulls: *ignore_nulls,
            partition,
            order,
            frame: spec.frame,
        })
    }

    /// Resolve a SQL expression to a physical expression.
    fn resolve(&self, e: &SqlExpr, scope: &Scope) -> Result<PhysExpr, CdwError> {
        Ok(match e {
            SqlExpr::Literal(v) => PhysExpr::Literal(v.clone()),
            SqlExpr::Column { table, name } => {
                let (idx, _) = scope.resolve(table.as_deref(), name)?;
                PhysExpr::Col(idx)
            }
            SqlExpr::Star => {
                return Err(CdwError::plan("'*' is only valid in COUNT(*) or SELECT *"))
            }
            SqlExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.resolve(expr, scope)?),
            },
            SqlExpr::Binary { op, left, right } => PhysExpr::Binary {
                op: *op,
                left: Box::new(self.resolve(left, scope)?),
                right: Box::new(self.resolve(right, scope)?),
            },
            SqlExpr::Func { name, args, .. } => {
                if agg_func_for(name).is_some() {
                    return Err(CdwError::plan(format!(
                        "aggregate {name} is not allowed here"
                    )));
                }
                let func = ScalarFunc::from_name(name)
                    .ok_or_else(|| CdwError::plan(format!("unknown function {name}")))?;
                PhysExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|a| self.resolve(a, scope))
                        .collect::<Result<_, _>>()?,
                }
            }
            SqlExpr::WindowFunc { .. } => {
                return Err(CdwError::plan("window function in an unsupported position"))
            }
            SqlExpr::Case {
                operand,
                whens,
                else_,
            } => PhysExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.resolve(o, scope).map(Box::new))
                    .transpose()?,
                whens: whens
                    .iter()
                    .map(|(w, t)| Ok((self.resolve(w, scope)?, self.resolve(t, scope)?)))
                    .collect::<Result<_, CdwError>>()?,
                else_: else_
                    .as_ref()
                    .map(|e| self.resolve(e, scope).map(Box::new))
                    .transpose()?,
            },
            // SQL CAST in compiled worksheet queries plans as TRY_CAST:
            // unconvertible cells become NULL (the paper's error
            // isolation), never a query-level failure.
            SqlExpr::Cast { expr, dtype } => PhysExpr::Cast {
                expr: Box::new(self.resolve(expr, scope)?),
                dtype: *dtype,
                strict: false,
            },
            SqlExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(self.resolve(expr, scope)?),
                list: list
                    .iter()
                    .map(|l| self.resolve(l, scope))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            SqlExpr::Between {
                expr,
                low,
                high,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(self.resolve(expr, scope)?),
                low: Box::new(self.resolve(low, scope)?),
                high: Box::new(self.resolve(high, scope)?),
                negated: *negated,
            },
            SqlExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(self.resolve(expr, scope)?),
                negated: *negated,
            },
            SqlExpr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(self.resolve(expr, scope)?),
                pattern: Box::new(self.resolve(pattern, scope)?),
                negated: *negated,
            },
        })
    }
}

/// Output type of a window call.
fn window_output_type(call: &WindowCall, input_types: &[DataType]) -> Result<DataType, CdwError> {
    Ok(match &call.func {
        WinFunc::RowNumber | WinFunc::Rank | WinFunc::DenseRank | WinFunc::Ntile => DataType::Int,
        WinFunc::Lag
        | WinFunc::Lead
        | WinFunc::FirstValue
        | WinFunc::LastValue
        | WinFunc::NthValue => {
            let t = call
                .args
                .first()
                .map(|a| eval::infer_type(a, input_types))
                .transpose()?
                .flatten();
            t.unwrap_or(DataType::Text)
        }
        WinFunc::Agg(f) => {
            let t = call
                .args
                .first()
                .map(|a| eval::infer_type(a, input_types))
                .transpose()?
                .flatten();
            f.output_type(t)
        }
    })
}

fn join_output_schema(left: &Arc<Schema>, right: &Arc<Schema>) -> Arc<Schema> {
    let mut fields: Vec<Field> = left.fields().to_vec();
    for f in right.fields() {
        let mut name = f.name.clone();
        let mut suffix = 2;
        while fields.iter().any(|x| x.name.eq_ignore_ascii_case(&name)) {
            name = format!("{} ({suffix})", f.name);
            suffix += 1;
        }
        fields.push(Field::new(name, f.dtype));
    }
    Arc::new(Schema::new(fields))
}

fn plan_union(plans: Vec<Plan>) -> Result<Plan, CdwError> {
    let first_schema = plans[0].schema();
    for p in &plans[1..] {
        if p.schema().len() != first_schema.len() {
            return Err(CdwError::plan("UNION inputs have different column counts"));
        }
    }
    // Unify column types across inputs; cast where needed.
    let mut fields = Vec::with_capacity(first_schema.len());
    for i in 0..first_schema.len() {
        let mut t = first_schema.field(i).dtype;
        for p in &plans[1..] {
            let pt = p.schema().field(i).dtype;
            t = t.unify(pt).ok_or_else(|| {
                CdwError::plan(format!(
                    "UNION column {} mixes {t} and {pt}",
                    first_schema.field(i).name
                ))
            })?;
        }
        fields.push(Field::new(first_schema.field(i).name.clone(), t));
    }
    let schema = Arc::new(Schema::new(fields));
    let casted: Vec<Plan> = plans
        .into_iter()
        .map(|p| {
            let ps = p.schema();
            let needs_cast = (0..schema.len()).any(|i| ps.field(i).dtype != schema.field(i).dtype);
            if !needs_cast {
                return p;
            }
            let exprs: Vec<PhysExpr> = (0..schema.len())
                .map(|i| {
                    if ps.field(i).dtype == schema.field(i).dtype {
                        PhysExpr::Col(i)
                    } else {
                        PhysExpr::Cast {
                            expr: Box::new(PhysExpr::Col(i)),
                            dtype: schema.field(i).dtype,
                            strict: false,
                        }
                    }
                })
                .collect();
            Plan::Project {
                input: Box::new(p),
                exprs,
                schema: schema.clone(),
            }
        })
        .collect();
    Ok(Plan::UnionAll {
        inputs: casted,
        schema,
    })
}

fn flatten_union<'q>(body: &'q SetExpr, out: &mut Vec<&'q SetExpr>) {
    match body {
        SetExpr::UnionAll(l, r) => {
            flatten_union(l, out);
            flatten_union(r, out);
        }
        other => out.push(other),
    }
}

fn split_conjuncts<'e>(e: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
    if let SqlExpr::Binary {
        op: sigma_sql::SqlBinaryOp::And,
        left,
        right,
    } = e
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// True if the expression contains an aggregate call outside any window.
fn contains_agg(e: &SqlExpr) -> bool {
    let mut found = false;
    walk_sql(e, &mut |node| {
        if let SqlExpr::Func { name, .. } = node {
            if agg_func_for(name).is_some() {
                found = true;
            }
        }
    });
    found
}

/// Collect distinct aggregate subtrees; does not descend into window
/// functions (their aggregate spellings execute as windows).
fn collect_aggs(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::Func { name, .. } if agg_func_for(name).is_some() => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        SqlExpr::WindowFunc { args, spec, .. } => {
            // Window args may reference aggregates (e.g. SUM(SUM(x)) OVER).
            for a in args {
                collect_aggs(a, out);
            }
            for p in &spec.partition_by {
                collect_aggs(p, out);
            }
            for o in &spec.order_by {
                collect_aggs(&o.expr, out);
            }
        }
        _ => walk_children(e, &mut |c| collect_aggs(c, out)),
    }
}

/// Collect distinct window subtrees (post-aggregate rewriting).
fn collect_windows(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::WindowFunc { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        _ => walk_children(e, &mut |c| collect_windows(c, out)),
    }
}

fn walk_sql(e: &SqlExpr, f: &mut impl FnMut(&SqlExpr)) {
    f(e);
    walk_children(e, &mut |c| walk_sql(c, f));
}

fn walk_children(e: &SqlExpr, f: &mut impl FnMut(&SqlExpr)) {
    match e {
        SqlExpr::Literal(_) | SqlExpr::Column { .. } | SqlExpr::Star => {}
        SqlExpr::Unary { expr, .. } => f(expr),
        SqlExpr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        SqlExpr::Func { args, .. } => {
            for a in args {
                f(a);
            }
        }
        SqlExpr::WindowFunc { args, spec, .. } => {
            for a in args {
                f(a);
            }
            for p in &spec.partition_by {
                f(p);
            }
            for o in &spec.order_by {
                f(&o.expr);
            }
        }
        SqlExpr::Case {
            operand,
            whens,
            else_,
        } => {
            if let Some(o) = operand {
                f(o);
            }
            for (w, t) in whens {
                f(w);
                f(t);
            }
            if let Some(e) = else_ {
                f(e);
            }
        }
        SqlExpr::Cast { expr, .. } => f(expr),
        SqlExpr::InList { expr, list, .. } => {
            f(expr);
            for l in list {
                f(l);
            }
        }
        SqlExpr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        SqlExpr::IsNull { expr, .. } => f(expr),
        SqlExpr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
    }
}

/// Replace any subtree equal to a mapping key with its replacement.
fn replace_subtrees(e: &SqlExpr, mapping: &[(SqlExpr, SqlExpr)]) -> SqlExpr {
    for (from, to) in mapping {
        if e == from {
            return to.clone();
        }
    }
    let mut out = e.clone();
    match &mut out {
        SqlExpr::Literal(_) | SqlExpr::Column { .. } | SqlExpr::Star => {}
        SqlExpr::Unary { expr, .. } => **expr = replace_subtrees(expr, mapping),
        SqlExpr::Binary { left, right, .. } => {
            **left = replace_subtrees(left, mapping);
            **right = replace_subtrees(right, mapping);
        }
        SqlExpr::Func { args, .. } => {
            for a in args.iter_mut() {
                *a = replace_subtrees(a, mapping);
            }
        }
        SqlExpr::WindowFunc { args, spec, .. } => {
            for a in args.iter_mut() {
                *a = replace_subtrees(a, mapping);
            }
            for p in spec.partition_by.iter_mut() {
                *p = replace_subtrees(p, mapping);
            }
            for o in spec.order_by.iter_mut() {
                o.expr = replace_subtrees(&o.expr, mapping);
            }
        }
        SqlExpr::Case {
            operand,
            whens,
            else_,
        } => {
            if let Some(o) = operand {
                **o = replace_subtrees(o, mapping);
            }
            for (w, t) in whens.iter_mut() {
                *w = replace_subtrees(w, mapping);
                *t = replace_subtrees(t, mapping);
            }
            if let Some(el) = else_ {
                **el = replace_subtrees(el, mapping);
            }
        }
        SqlExpr::Cast { expr, .. } => **expr = replace_subtrees(expr, mapping),
        SqlExpr::InList { expr, list, .. } => {
            **expr = replace_subtrees(expr, mapping);
            for l in list.iter_mut() {
                *l = replace_subtrees(l, mapping);
            }
        }
        SqlExpr::Between {
            expr, low, high, ..
        } => {
            **expr = replace_subtrees(expr, mapping);
            **low = replace_subtrees(low, mapping);
            **high = replace_subtrees(high, mapping);
        }
        SqlExpr::IsNull { expr, .. } => **expr = replace_subtrees(expr, mapping),
        SqlExpr::Like { expr, pattern, .. } => {
            **expr = replace_subtrees(expr, mapping);
            **pattern = replace_subtrees(pattern, mapping);
        }
    }
    out
}
