//! An in-process cloud data warehouse simulator.
//!
//! The paper's Sigma service compiles workbook specs to SQL and executes
//! them "directly on CDWs" (Snowflake, BigQuery, Redshift, PostgreSQL,
//! Databricks). This crate is the stand-in for those engines: a columnar
//! SQL warehouse with
//!
//! * a catalog and partitioned columnar storage,
//! * a SQL front end (reusing `sigma-sql`'s parser),
//! * a logical planner with name resolution and aggregate/window rewriting,
//! * a rule-based optimizer (predicate pushdown, projection pruning,
//!   constant folding),
//! * a vectorized executor (optionally partition-parallel via crossbeam),
//! * DDL/DML (materialization, CSV upload, editable-table edit propagation),
//! * persisted result sets addressable by query id (`RESULT_SCAN`), which
//!   the service's query-directory cache relies on (paper §4).
//!
//! The substitution rationale is recorded in DESIGN.md: the compiler's
//! contract is SQL text, so any engine with standard semantics exercises
//! the same code path as the production warehouses.

pub mod catalog;
pub mod error;
pub mod eval;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod planner;
pub mod session;
pub mod storage;
pub mod window;

pub use error::CdwError;
pub use session::{ResultSet, Warehouse, WarehouseConfig};
