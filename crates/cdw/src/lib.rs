//! An in-process cloud data warehouse simulator.
//!
//! The paper's Sigma service compiles workbook specs to SQL and executes
//! them "directly on CDWs" (Snowflake, BigQuery, Redshift, PostgreSQL,
//! Databricks). This crate is the stand-in for those engines: a columnar
//! SQL warehouse with
//!
//! * a catalog and partitioned columnar storage,
//! * a SQL front end (reusing `sigma-sql`'s parser),
//! * a logical planner with name resolution and aggregate/window rewriting,
//! * a rule-based optimizer (predicate pushdown, projection pruning,
//!   constant folding, and a two-phase partial/final split of aggregation
//!   and DISTINCT over partition-preserving inputs),
//! * a vectorized expression engine (`eval/`): a physical-expression
//!   planner compiles scalar expressions into typed columnar kernels
//!   (monomorphic i64/f64/bool/str loops, validity-bitmap nulls, literal
//!   operands kept scalar, LIKE patterns and IN-lists pre-compiled), with
//!   the boxed-`Value` row interpreter retained as the semantic oracle
//!   (`tests/eval_oracle.rs` pins them bit-identical),
//! * a vectorized, partition-parallel executor: scans, filters, projections,
//!   unions, partial aggregation/dedup, and hash-join probes all run one
//!   task per partition on a persistent, locality-aware work-stealing
//!   worker pool shared by every query in the process (the `parallelism`
//!   knob requests threads per query; `set_worker_pool_target` caps the
//!   process), with partial aggregate states merged associatively in
//!   partition order so results are bit-identical at any parallelism —
//!   this is the stand-in for the CDW elasticity the paper leans on;
//!   filters emit **selection vectors** instead of materializing, so
//!   filter→project→filter chains and aggregation inputs evaluate only
//!   over surviving row indices,
//! * memory-budgeted out-of-core execution: an `ExecMemoryTracker`
//!   (`WarehouseConfig::memory_budget`) spills aggregation hash tables,
//!   sort runs, and hash-join build sides to disk when they would exceed
//!   the per-operator budget — with results bit-identical to in-memory
//!   execution at any budget and parallelism,
//! * per-operator execution stats (`ExecStats`/`OpStats`, plus
//!   `spilled_bytes`/`spill_rounds`, rendered by
//!   `Warehouse::explain_analyze`) for attributing query time,
//! * DDL/DML (materialization, CSV upload, editable-table edit propagation),
//! * persisted result sets addressable by query id (`RESULT_SCAN`), which
//!   the service's query-directory cache relies on (paper §4).
//!
//! The substitution rationale is recorded in DESIGN.md: the compiler's
//! contract is SQL text, so any engine with standard semantics exercises
//! the same code path as the production warehouses.

pub mod catalog;
pub mod delta;
pub mod error;
pub mod eval;
pub mod exec;
pub mod optimizer;
pub mod plan;
pub mod planner;
pub mod session;
pub mod storage;
pub mod window;

pub use error::CdwError;
pub use exec::scheduler::{
    grow_worker_pool_target, set_worker_pool_target, worker_pool_stats, worker_pool_target,
    SchedCounters, WorkerPoolStats,
};
pub use exec::{ExecMemoryTracker, ExecStats, OpStats};
pub use session::{ResultSet, Warehouse, WarehouseConfig};
