//! Delta-maintenance kernels for the browser tier's local evaluation.
//!
//! A stage of a compiled element whose query is a **simple select** — one
//! input relation, no joins, no aggregation, no windows, no
//! DISTINCT/LIMIT — can be recomputed from its input's cached batch
//! without parsing, planning, or optimizing anything: the `WHERE`
//! predicate compiles straight to a [`CompiledExpr`] whose evaluation
//! yields a selection vector, and each SELECT item projects over the
//! surviving rows. `ORDER BY` is allowed (sink stages always carry one):
//! it replays the planner's resolve-then-stable-sort tail over the
//! projected columns. This is the kernel pass behind the two dominant
//! interactive edit shapes (paper A3): a filter-predicate tweak re-filters
//! the cached parent result, and a new/changed formula column projects
//! over it.
//!
//! Bit-identity with the full pipeline is by construction, not by
//! coincidence: the same name-resolution rules as the planner (wildcard
//! expansion over the input schema, alias-else-column output naming with
//! case-insensitive dedup, `infer_type` output typing), the same
//! [`CompiledExpr`] kernels, the same truthiness rule for predicates
//! ([`crate::exec::truthy_indices`]), and the same output coercion
//! ([`crate::exec::coerce_column`]) — pinned by the `delta_oracle` test
//! against plan-and-execute and end-to-end by the browser crate's
//! edit-sequence proptest against a cold service recompile.

use std::sync::Arc;

use sigma_sql::{Query, Select, SelectItem, SetExpr, SqlExpr, TableRef};
use sigma_value::{sort, Batch, DataType, Field, Schema};

use crate::error::CdwError;
use crate::eval::{self, CompiledExpr, EvalCtx, PhysExpr, ScalarFunc};
use crate::exec::{coerce_column, truthy_indices};
use crate::planner::agg_func_for;

/// The simple-select body of a stage query, when the delta kernels can
/// recompute it from a single cached input batch. `None` means the stage
/// needs the full planner (joins, grouping, windows, ordering, ...).
pub fn simple_stage_select(query: &Query) -> Option<&Select> {
    if !query.ctes.is_empty() || query.limit.is_some() || query.offset.is_some() {
        return None;
    }
    if !query.order_by.iter().all(|o| scalar_expr(&o.expr)) {
        return None;
    }
    let SetExpr::Select(select) = &query.body else {
        return None;
    };
    if select.distinct
        || !select.joins.is_empty()
        || !select.group_by.is_empty()
        || select.having.is_some()
        || select.qualify.is_some()
    {
        return None;
    }
    // Single plain-table input (a stage name or table; the caller decides
    // which batch it maps to).
    match &select.from {
        Some(TableRef::Table { name, .. }) if name.0.len() == 1 => {}
        _ => return None,
    }
    // Every expression must stay inside the scalar kernel surface.
    if let Some(sel) = &select.selection {
        if !scalar_expr(sel) {
            return None;
        }
    }
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::Expr { expr, .. } => {
                if !scalar_expr(expr) {
                    return None;
                }
            }
        }
    }
    Some(select)
}

/// The single input relation's name (lower-cased) of a simple stage.
pub fn simple_stage_input(query: &Query) -> Option<String> {
    let select = simple_stage_select(query)?;
    match &select.from {
        Some(TableRef::Table { name, .. }) => Some(name.to_dotted().to_ascii_lowercase()),
        _ => None,
    }
}

/// Is this expression purely scalar (no aggregates, windows, or unknown
/// functions the planner would reject)? `*` is allowed only as a whole
/// SELECT item, not inside expressions.
fn scalar_expr(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Literal(_) | SqlExpr::Column { .. } => true,
        SqlExpr::Star | SqlExpr::WindowFunc { .. } => false,
        SqlExpr::Unary { expr, .. } => scalar_expr(expr),
        SqlExpr::Binary { left, right, .. } => scalar_expr(left) && scalar_expr(right),
        SqlExpr::Func { name, args, .. } => {
            agg_func_for(name).is_none()
                && ScalarFunc::from_name(name).is_some()
                && args.iter().all(scalar_expr)
        }
        SqlExpr::Case {
            operand,
            whens,
            else_,
        } => {
            operand.as_deref().is_none_or(scalar_expr)
                && whens.iter().all(|(w, t)| scalar_expr(w) && scalar_expr(t))
                && else_.as_deref().is_none_or(scalar_expr)
        }
        SqlExpr::Cast { expr, .. } => scalar_expr(expr),
        SqlExpr::InList { expr, list, .. } => scalar_expr(expr) && list.iter().all(scalar_expr),
        SqlExpr::Between {
            expr, low, high, ..
        } => scalar_expr(expr) && scalar_expr(low) && scalar_expr(high),
        SqlExpr::IsNull { expr, .. } => scalar_expr(expr),
        SqlExpr::Like { expr, pattern, .. } => scalar_expr(expr) && scalar_expr(pattern),
    }
}

/// Recompute a simple stage from its input's batch through the vectorized
/// kernels alone: evaluate the `WHERE` predicate into a selection vector,
/// then evaluate each SELECT item over the surviving rows. Output schema,
/// names, types, and values are bit-identical to planning and executing
/// the stage query over the same input.
pub fn execute_simple_stage(
    query: &Query,
    parent: &Batch,
    ctx: &EvalCtx,
) -> Result<Batch, CdwError> {
    let select = simple_stage_select(query)
        .ok_or_else(|| CdwError::plan("stage query is not a simple select"))?;
    let binding = select
        .from
        .as_ref()
        .and_then(TableRef::binding)
        .unwrap_or_default()
        .to_string();
    let schema = parent.schema();
    let types: Vec<DataType> = schema.fields().iter().map(|f| f.dtype).collect();

    // WHERE → selection vector (same truthiness rule as Plan::Filter).
    let sel: Option<Vec<usize>> = match &select.selection {
        Some(pred) => {
            let phys = resolve_expr(pred, schema, &binding)?;
            let compiled = CompiledExpr::compile(&phys, &types)?;
            let mask = compiled.eval(parent, None, ctx)?;
            Some(truthy_indices(&mask, None))
        }
        None => None,
    };

    // Wildcard expansion + output naming, mirroring the planner: alias,
    // else the column's own name, else `col_N`; duplicates deduped with a
    // ` (k)` suffix, case-insensitively.
    let mut projection: Vec<(SqlExpr, Option<String>)> = Vec::new();
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {
                for f in schema.fields() {
                    if f.name.starts_with('$') {
                        continue;
                    }
                    projection.push((
                        SqlExpr::Column {
                            table: Some(binding.clone()),
                            name: f.name.clone(),
                        },
                        Some(f.name.clone()),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => projection.push((expr.clone(), alias.clone())),
        }
    }
    if projection.is_empty() {
        return Err(CdwError::plan("SELECT list is empty"));
    }

    let mut out_fields: Vec<Field> = Vec::with_capacity(projection.len());
    let mut out_cols = Vec::with_capacity(projection.len());
    for (i, (expr, alias)) in projection.iter().enumerate() {
        let phys = resolve_expr(expr, schema, &binding)?;
        let dtype = eval::infer_type(&phys, &types)?.unwrap_or(DataType::Text);
        let base_name = alias.clone().unwrap_or_else(|| match expr {
            SqlExpr::Column { name, .. } => name.clone(),
            _ => format!("col_{}", i + 1),
        });
        let mut name = base_name.clone();
        let mut suffix = 2;
        while out_fields
            .iter()
            .any(|f: &Field| f.name.eq_ignore_ascii_case(&name))
        {
            name = format!("{base_name} ({suffix})");
            suffix += 1;
        }
        let compiled = CompiledExpr::compile(&phys, &types)?;
        let col = compiled.eval(parent, sel.as_deref(), ctx)?;
        out_cols.push(coerce_column(col, dtype)?);
        out_fields.push(Field::new(name, dtype));
    }
    let out_schema = Arc::new(Schema::new(out_fields));
    if query.order_by.is_empty() {
        return Batch::new(out_schema, out_cols).map_err(CdwError::from);
    }

    // ORDER BY, replaying the planner's tail exactly: each key resolves
    // against the output names first, falling back to a hidden `$sortN`
    // column evaluated over the input; keys are then evaluated over the
    // (visible + hidden) projection and a stable sort permutes the rows,
    // after which hidden columns are dropped.
    let visible = out_cols.len();
    let mut sort_keys: Vec<sort::SortKey> = Vec::with_capacity(query.order_by.len());
    let mut key_exprs: Vec<PhysExpr> = Vec::with_capacity(query.order_by.len());
    let mut sortable_fields: Vec<Field> = out_schema.fields().to_vec();
    let mut sortable_cols = out_cols;
    for o in &query.order_by {
        match resolve_expr(&o.expr, &out_schema, "") {
            Ok(expr) => key_exprs.push(expr),
            Err(_) => {
                let phys = resolve_expr(&o.expr, schema, &binding)?;
                let dtype = eval::infer_type(&phys, &types)?.unwrap_or(DataType::Text);
                let idx = sortable_cols.len();
                let compiled = CompiledExpr::compile(&phys, &types)?;
                let col = compiled.eval(parent, sel.as_deref(), ctx)?;
                sortable_cols.push(coerce_column(col, dtype)?);
                sortable_fields.push(Field::new(format!("$sort{}", idx - visible), dtype));
                key_exprs.push(PhysExpr::Col(idx));
            }
        }
        sort_keys.push(sort::SortKey {
            descending: o.descending,
            nulls_last: o.nulls_last.unwrap_or(o.descending),
        });
    }
    let sortable_types: Vec<DataType> = sortable_fields.iter().map(|f| f.dtype).collect();
    let sortable = Batch::new(Arc::new(Schema::new(sortable_fields)), sortable_cols)?;
    let key_cols: Vec<sigma_value::Column> = key_exprs
        .iter()
        .map(|e| CompiledExpr::compile(e, &sortable_types)?.eval(&sortable, None, ctx))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&sigma_value::Column> = key_cols.iter().collect();
    let idx = sort::sort_indices(&refs, &sort_keys);
    let sorted = sortable.take(&idx);
    let cols: Vec<sigma_value::Column> = sorted.columns()[..visible].to_vec();
    Batch::new(out_schema, cols).map_err(CdwError::from)
}

/// Resolve a scalar expression against a single relation's schema, with
/// the same rules as the planner's scope resolution (case-insensitive
/// names, qualifier must match the binding) and the same physical
/// lowering (CAST plans as TRY_CAST, functions by [`ScalarFunc`] name).
/// Shared by the delta kernels and the DML executor.
pub(crate) fn resolve_expr(
    e: &SqlExpr,
    schema: &Arc<Schema>,
    binding: &str,
) -> Result<PhysExpr, CdwError> {
    use SqlExpr as S;
    Ok(match e {
        S::Literal(v) => PhysExpr::Literal(v.clone()),
        S::Column { table, name } => {
            if let Some(t) = table {
                if !t.eq_ignore_ascii_case(binding) {
                    return Err(CdwError::plan(format!("column not found: {name}")));
                }
            }
            let idx = schema
                .index_of(name)
                .ok_or_else(|| CdwError::plan(format!("column not found: {name}")))?;
            PhysExpr::Col(idx)
        }
        S::Unary { op, expr } => PhysExpr::Unary {
            op: *op,
            expr: Box::new(resolve_expr(expr, schema, binding)?),
        },
        S::Binary { op, left, right } => PhysExpr::Binary {
            op: *op,
            left: Box::new(resolve_expr(left, schema, binding)?),
            right: Box::new(resolve_expr(right, schema, binding)?),
        },
        S::Func { name, args, .. } => {
            if agg_func_for(name).is_some() {
                return Err(CdwError::plan(format!(
                    "aggregate {name} is not allowed here"
                )));
            }
            let func = ScalarFunc::from_name(name)
                .ok_or_else(|| CdwError::plan(format!("unknown function {name}")))?;
            PhysExpr::Func {
                func,
                args: args
                    .iter()
                    .map(|a| resolve_expr(a, schema, binding))
                    .collect::<Result<_, _>>()?,
            }
        }
        S::Case {
            operand,
            whens,
            else_,
        } => PhysExpr::Case {
            operand: operand
                .as_ref()
                .map(|o| resolve_expr(o, schema, binding).map(Box::new))
                .transpose()?,
            whens: whens
                .iter()
                .map(|(w, t)| {
                    Ok((
                        resolve_expr(w, schema, binding)?,
                        resolve_expr(t, schema, binding)?,
                    ))
                })
                .collect::<Result<_, CdwError>>()?,
            else_: else_
                .as_ref()
                .map(|x| resolve_expr(x, schema, binding).map(Box::new))
                .transpose()?,
        },
        // CAST lowers as TRY_CAST, matching the planner (error isolation).
        S::Cast { expr, dtype } => PhysExpr::Cast {
            expr: Box::new(resolve_expr(expr, schema, binding)?),
            dtype: *dtype,
            strict: false,
        },
        S::InList {
            expr,
            list,
            negated,
        } => PhysExpr::InList {
            expr: Box::new(resolve_expr(expr, schema, binding)?),
            list: list
                .iter()
                .map(|l| resolve_expr(l, schema, binding))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        S::Between {
            expr,
            low,
            high,
            negated,
        } => PhysExpr::Between {
            expr: Box::new(resolve_expr(expr, schema, binding)?),
            low: Box::new(resolve_expr(low, schema, binding)?),
            high: Box::new(resolve_expr(high, schema, binding)?),
            negated: *negated,
        },
        S::IsNull { expr, negated } => PhysExpr::IsNull {
            expr: Box::new(resolve_expr(expr, schema, binding)?),
            negated: *negated,
        },
        S::Like {
            expr,
            pattern,
            negated,
        } => PhysExpr::Like {
            expr: Box::new(resolve_expr(expr, schema, binding)?),
            pattern: Box::new(resolve_expr(pattern, schema, binding)?),
            negated: *negated,
        },
        S::Star | S::WindowFunc { .. } => {
            return Err(CdwError::plan("unsupported expression in delta kernel"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_sql::parse_query;
    use sigma_value::{Column, Value};

    fn parent() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("Origin", DataType::Text),
            Field::new("Dep Delay", DataType::Float),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_texts(vec!["ORD".into(), "JFK".into(), "SFO".into()]),
                Column::from_floats(vec![5.0, 25.0, 40.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn simple_shape_gate() {
        let yes = parse_query("SELECT * FROM base_0 WHERE \"Dep Delay\" > 10").unwrap();
        assert!(simple_stage_select(&yes).is_some());
        assert_eq!(simple_stage_input(&yes).as_deref(), Some("base_0"));
        let ordered = parse_query("SELECT a FROM t ORDER BY a").unwrap();
        assert!(simple_stage_select(&ordered).is_some());
        for sql in [
            "SELECT a, SUM(b) AS s FROM t GROUP BY a",
            "SELECT a FROM t LIMIT 5",
            "SELECT DISTINCT a FROM t",
            "SELECT a FROM t JOIN u ON t.a = u.a",
            "SELECT ROW_NUMBER() OVER (ORDER BY a) AS r FROM t",
            "SELECT * FROM TABLE(RESULT_SCAN('q-1')) AS r",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(simple_stage_select(&q).is_none(), "{sql}");
        }
    }

    #[test]
    fn filter_pass_matches_semantics() {
        let q = parse_query("SELECT * FROM base_0 WHERE \"Dep Delay\" > 10").unwrap();
        let out = execute_simple_stage(&q, &parent(), &EvalCtx::default()).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, 0), Value::Text("JFK".into()));
        assert_eq!(out.schema().field(1).name, "Dep Delay");
    }

    #[test]
    fn projection_pass_evaluates_new_columns() {
        let q = parse_query(
            "SELECT t.\"Origin\" AS \"Origin\", t.\"Dep Delay\" / 60 AS \"Delay Hours\" \
             FROM base_0 AS t",
        )
        .unwrap();
        let out = execute_simple_stage(&q, &parent(), &EvalCtx::default()).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.schema().field(1).name, "Delay Hours");
        assert_eq!(out.value(2, 1), Value::Float(40.0 / 60.0));
    }
}
