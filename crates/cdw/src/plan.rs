//! The logical plan produced by the planner and consumed by the executor.

use std::sync::Arc;

use sigma_sql::{JoinKind, WindowFrame};
use sigma_value::{Batch, DataType, Schema};

use crate::eval::PhysExpr;

/// Execution phase of an [`Plan::Aggregate`] or [`Plan::Distinct`] node.
///
/// The planner always emits `Single` (one-shot over the whole input). The
/// optimizer's two-phase split rewrites `Single` nodes over
/// partition-preserving inputs into a per-partition `Partial` under a
/// merging `Final`, so the heavy hash-build work runs partition-parallel
/// and only the (much smaller) per-partition results are combined on one
/// thread. The executor realizes the split for the exact `Final`-over-
/// `Partial` pairing; any other placement degrades safely to `Single`
/// semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggMode {
    /// One-shot aggregation over the concatenated input.
    Single,
    /// Per-partition pre-aggregation; output keeps partition structure.
    Partial,
    /// Merge per-partition partial states into the global result.
    Final,
}

impl AggMode {
    /// Suffix used in EXPLAIN output (empty for the default mode).
    pub fn label(&self) -> &'static str {
        match self {
            AggMode::Single => "",
            AggMode::Partial => "[partial]",
            AggMode::Final => "[final]",
        }
    }
}

/// Aggregate functions the engine executes.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    Median,
    StdDev,
    Variance,
    /// Continuous percentile at the given fraction.
    Percentile(f64),
    /// The paper's virtual aggregate (§3.2): the single value if the group
    /// has exactly one distinct non-null value, else NULL.
    Attr,
}

impl AggFunc {
    /// Output type given the argument type.
    pub fn output_type(&self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Sum => match arg {
                Some(DataType::Int) => DataType::Int,
                _ => DataType::Float,
            },
            AggFunc::Avg
            | AggFunc::Median
            | AggFunc::StdDev
            | AggFunc::Variance
            | AggFunc::Percentile(_) => DataType::Float,
            AggFunc::Min | AggFunc::Max | AggFunc::Attr => arg.unwrap_or(DataType::Text),
        }
    }
}

/// One aggregate slot in an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    /// `None` only for `CountStar`.
    pub arg: Option<PhysExpr>,
}

/// Window functions the engine executes.
#[derive(Debug, Clone, PartialEq)]
pub enum WinFunc {
    RowNumber,
    Rank,
    DenseRank,
    Ntile,
    Lag,
    Lead,
    FirstValue,
    LastValue,
    NthValue,
    /// Aggregate-as-window with an optional frame.
    Agg(AggFunc),
}

/// Sort specification used by Sort nodes and window ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SortSpec {
    pub expr: PhysExpr,
    pub descending: bool,
    pub nulls_last: Option<bool>,
}

/// One window slot in a Window node (appends a column to its input).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCall {
    pub func: WinFunc,
    pub args: Vec<PhysExpr>,
    pub ignore_nulls: bool,
    pub partition: Vec<PhysExpr>,
    pub order: Vec<SortSpec>,
    pub frame: Option<WindowFrame>,
}

/// A logical plan node. Every node knows its output schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a catalog table.
    Scan { table: String, schema: Arc<Schema> },
    /// Scan a persisted result set by query id (RESULT_SCAN).
    ResultScan { id: String, schema: Arc<Schema> },
    /// Inline rows.
    Values { batch: Batch },
    Project {
        input: Box<Plan>,
        exprs: Vec<PhysExpr>,
        schema: Arc<Schema>,
    },
    Filter {
        input: Box<Plan>,
        predicate: PhysExpr,
    },
    Aggregate {
        input: Box<Plan>,
        groups: Vec<PhysExpr>,
        aggs: Vec<AggCall>,
        schema: Arc<Schema>,
        /// Two-phase placement (see [`AggMode`]). A `Partial` node carries
        /// the final output schema: partial states live in executor memory
        /// and are never materialized as columns.
        mode: AggMode,
    },
    /// Appends one column per call to the input schema.
    Window {
        input: Box<Plan>,
        calls: Vec<WindowCall>,
        schema: Arc<Schema>,
    },
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        /// Equi-join keys (`left_keys[i] = right_keys[i]`).
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        /// Non-equi residual applied after the hash match.
        residual: Option<PhysExpr>,
        schema: Arc<Schema>,
    },
    Sort {
        input: Box<Plan>,
        keys: Vec<SortSpec>,
    },
    Limit {
        input: Box<Plan>,
        limit: Option<u64>,
        offset: u64,
    },
    UnionAll {
        inputs: Vec<Plan>,
        schema: Arc<Schema>,
    },
    Distinct {
        input: Box<Plan>,
        /// `Partial` dedups within each partition (keeping partitions);
        /// `Final`/`Single` dedup globally to one batch.
        mode: AggMode,
    },
}

impl Plan {
    /// Output schema of this node.
    pub fn schema(&self) -> Arc<Schema> {
        match self {
            Plan::Scan { schema, .. } => schema.clone(),
            Plan::ResultScan { schema, .. } => schema.clone(),
            Plan::Values { batch } => batch.schema().clone(),
            Plan::Project { schema, .. } => schema.clone(),
            Plan::Filter { input, .. } => input.schema(),
            Plan::Aggregate { schema, .. } => schema.clone(),
            Plan::Window { schema, .. } => schema.clone(),
            Plan::Join { schema, .. } => schema.clone(),
            Plan::Sort { input, .. } => input.schema(),
            Plan::Limit { input, .. } => input.schema(),
            Plan::UnionAll { schema, .. } => schema.clone(),
            Plan::Distinct { input, .. } => input.schema(),
        }
    }

    /// Number of nodes (used in optimizer tests and plan stats).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } | Plan::ResultScan { .. } | Plan::Values { .. } => 0,
            Plan::Project { input, .. }
            | Plan::Filter { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Window { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input, .. } => input.node_count(),
            Plan::Join { left, right, .. } => left.node_count() + right.node_count(),
            Plan::UnionAll { inputs, .. } => inputs.iter().map(Plan::node_count).sum(),
        }
    }

    /// Streaming stages fuse into a morsel pipeline: they transform each
    /// morsel independently (no cross-row state), so a chain of them runs
    /// per-morsel without materializing between operators.
    pub fn is_streaming_stage(&self) -> bool {
        matches!(self, Plan::Filter { .. } | Plan::Project { .. })
    }

    /// Pipeline breakers must see their whole input before emitting a
    /// row, so a pipeline ends (and its output materializes) here: sorts,
    /// merging aggregates/distincts, windows, and limits. A `Join` breaks
    /// only on its build (right) side; `Partial` aggregation is a pipeline
    /// *sink* (per-partition fold), not a breaker.
    pub fn is_pipeline_breaker(&self) -> bool {
        matches!(
            self,
            Plan::Sort { .. }
                | Plan::Window { .. }
                | Plan::Limit { .. }
                | Plan::Aggregate {
                    mode: AggMode::Single | AggMode::Final,
                    ..
                }
                | Plan::Distinct {
                    mode: AggMode::Single | AggMode::Final,
                    ..
                }
        )
    }

    /// The maximal streaming chain hanging off this node: the run of
    /// Filter/Project nodes from here down (top-down order, starting with
    /// `self` when it streams — possibly empty), plus the first
    /// non-streaming descendant that feeds it (the pipeline's source).
    pub fn stream_chain(&self) -> (Vec<&Plan>, &Plan) {
        let mut chain = Vec::new();
        let mut node = self;
        loop {
            match node {
                Plan::Filter { input, .. } | Plan::Project { input, .. } => {
                    chain.push(node);
                    node = input;
                }
                _ => return (chain, node),
            }
        }
    }

    /// Render the plan as an indented tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Plan::Scan { table, .. } => out.push_str(&format!("Scan {table}\n")),
            Plan::ResultScan { id, .. } => out.push_str(&format!("ResultScan {id}\n")),
            Plan::Values { batch } => {
                out.push_str(&format!("Values ({} rows)\n", batch.num_rows()))
            }
            Plan::Project { input, exprs, .. } => {
                out.push_str(&format!("Project ({} exprs)\n", exprs.len()));
                input.explain_into(depth + 1, out);
            }
            Plan::Filter { input, .. } => {
                out.push_str("Filter\n");
                input.explain_into(depth + 1, out);
            }
            Plan::Aggregate {
                input,
                groups,
                aggs,
                mode,
                ..
            } => {
                out.push_str(&format!(
                    "Aggregate{} (groups={}, aggs={})\n",
                    mode.label(),
                    groups.len(),
                    aggs.len()
                ));
                input.explain_into(depth + 1, out);
            }
            Plan::Window { input, calls, .. } => {
                out.push_str(&format!("Window ({} calls)\n", calls.len()));
                input.explain_into(depth + 1, out);
            }
            Plan::Join {
                left,
                right,
                kind,
                left_keys,
                ..
            } => {
                out.push_str(&format!("Join {kind:?} ({} keys)\n", left_keys.len()));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("Sort ({} keys)\n", keys.len()));
                input.explain_into(depth + 1, out);
            }
            Plan::Limit {
                input,
                limit,
                offset,
            } => {
                out.push_str(&format!("Limit {limit:?} offset {offset}\n"));
                input.explain_into(depth + 1, out);
            }
            Plan::UnionAll { inputs, .. } => {
                out.push_str("UnionAll\n");
                for i in inputs {
                    i.explain_into(depth + 1, out);
                }
            }
            Plan::Distinct { input, mode } => {
                out.push_str(&format!("Distinct{}\n", mode.label()));
                input.explain_into(depth + 1, out);
            }
        }
    }
}
