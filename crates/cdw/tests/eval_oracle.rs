//! The vectorized expression engine's safety net.
//!
//! The boxed-`Value` row interpreter (`sigma_cdw::eval::eval_interp`) is
//! the semantic oracle; the typed columnar kernels must be
//! **bit-identical** to it — float bit patterns included — over randomly
//! generated, type-correct expressions and batches:
//!
//! * `vectorized_matches_row_interpreter`: a type-directed generator
//!   builds expression trees (arithmetic, comparisons, three-valued
//!   logic, CASE, CAST/TRY_CAST, IN, BETWEEN, LIKE, scalar functions,
//!   selection vectors) over batches with nulls, NaN, ±0.0 and ±inf, and
//!   pins `eval == eval_interp` cell by cell.
//! * `binary_op_matrix_matches_interpreter`: deterministic sweep of every
//!   binary operator over every (left type, right type) pair and null
//!   placement, in column⊗column, column⊗literal, and literal⊗column
//!   shapes — both engines must agree on values *and* on which
//!   combinations error.
//! * `pipelines_bit_identical_at_any_parallelism_and_budget`:
//!   expression-heavy SQL (filter → project → filter chains, grouped
//!   aggregation over computed keys, LIKE/CASE/CAST) through the full
//!   warehouse at parallelism {1, 4} × memory budget {unbounded, 1 byte}
//!   — all four runs bit-identical.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sigma_cdw::eval::{self, BinOp, EvalCtx, PhysExpr, ScalarFunc, UnOp};
use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};
use std::sync::Arc;

// ---------------------------------------------------------------------
// bit-exact comparison
// ---------------------------------------------------------------------

fn assert_col_bit_identical(vectorized: &Column, interp: &Column, what: &dyn std::fmt::Debug) {
    assert_eq!(
        vectorized.dtype(),
        interp.dtype(),
        "output dtype diverged: {what:?}"
    );
    assert_eq!(vectorized.len(), interp.len(), "length diverged: {what:?}");
    for i in 0..vectorized.len() {
        match (vectorized.value(i), interp.value(i)) {
            (Value::Float(a), Value::Float(b)) => assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "float bits at row {i}: {a} vs {b}: {what:?}"
            ),
            (a, b) => assert_eq!(a, b, "value at row {i}: {what:?}"),
        }
    }
}

fn assert_batch_bit_identical(a: &Batch, b: &Batch, what: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{what}");
    assert_eq!(a.num_columns(), b.num_columns(), "{what}");
    for c in 0..a.num_columns() {
        assert_col_bit_identical(a.column(c), b.column(c), &what);
    }
}

// ---------------------------------------------------------------------
// typed random batches
// ---------------------------------------------------------------------

// Column ordinals in the generated schema.
const I_DENSE: usize = 0; // Int, no nulls
const I_NULL: usize = 1; // Int, nullable
const F_NULL: usize = 2; // Float, nullable, with NaN / ±0.0 / ±inf
const T_NULL: usize = 3; // Text, nullable, wildcard-ish content
const B_NULL: usize = 4; // Bool, nullable
const D_NULL: usize = 5; // Date, nullable
const TS_NULL: usize = 6; // Timestamp, nullable

fn schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Field::new("i_dense", DataType::Int),
        Field::new("i_null", DataType::Int),
        Field::new("f_null", DataType::Float),
        Field::new("t_null", DataType::Text),
        Field::new("b_null", DataType::Bool),
        Field::new("d_null", DataType::Date),
        Field::new("ts_null", DataType::Timestamp),
    ]))
}

const FLOAT_POOL: &[f64] = &[
    0.0,
    -0.0,
    1.5,
    -2.25,
    3.5e9,
    -1.25e-9,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

const TEXT_POOL: &[&str] = &["", "alpha", "Beta", "a%b", "x_y", "100", "no", "日本", "aa"];

fn gen_batch(rng: &mut StdRng, rows: usize) -> Batch {
    let nullable = |rng: &mut StdRng| rng.random_range(0..4usize) == 0;
    let ints: Vec<i64> = (0..rows).map(|_| rng.random_range(-100i64..100)).collect();
    let opt_ints: Vec<Option<i64>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| rng.random_range(-100i64..100)))
        .collect();
    let floats: Vec<Option<f64>> = (0..rows)
        .map(|_| {
            (!nullable(rng)).then(|| {
                if rng.random_range(0..3usize) == 0 {
                    FLOAT_POOL[rng.random_range(0..FLOAT_POOL.len())]
                } else {
                    (rng.random::<f64>() - 0.5) * 2e4
                }
            })
        })
        .collect();
    let texts: Vec<Option<String>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| TEXT_POOL[rng.random_range(0..TEXT_POOL.len())].into()))
        .collect();
    let bools: Vec<Option<bool>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| rng.random::<bool>()))
        .collect();
    let dates: Vec<Option<i32>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| rng.random_range(0i64..30_000) as i32))
        .collect();
    let stamps: Vec<Option<i64>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| rng.random_range(0i64..2_500_000_000_000_000)))
        .collect();
    Batch::new(
        schema(),
        vec![
            Column::from_ints(ints),
            Column::from_opt_ints(opt_ints),
            Column::from_opt_floats(floats),
            Column::from_opt_texts(texts),
            Column::from_opt_bools(bools),
            Column::from_opt_dates(dates),
            Column::from_opt_timestamps(stamps),
        ],
    )
    .unwrap()
}

// ---------------------------------------------------------------------
// type-directed expression generator
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Class {
    Num,
    Text,
    Bool,
    Temporal,
}

fn lit_int(rng: &mut StdRng) -> PhysExpr {
    PhysExpr::lit(rng.random_range(-100i64..100))
}

fn lit_float(rng: &mut StdRng) -> PhysExpr {
    PhysExpr::lit(FLOAT_POOL[rng.random_range(0..FLOAT_POOL.len())])
}

fn lit_text(rng: &mut StdRng) -> PhysExpr {
    PhysExpr::lit(TEXT_POOL[rng.random_range(0..TEXT_POOL.len())])
}

fn lit_pattern(rng: &mut StdRng) -> PhysExpr {
    const PATTERNS: &[&str] = &[
        "", "%", "_", "a%", "%a", "a_b", "%a%b%", "__", "a%b%c", "100", "%%", "_%_",
    ];
    PhysExpr::lit(PATTERNS[rng.random_range(0..PATTERNS.len())])
}

fn lit_unit(rng: &mut StdRng) -> PhysExpr {
    const UNITS: &[&str] = &["year", "quarter", "month", "week", "day"];
    PhysExpr::lit(UNITS[rng.random_range(0..UNITS.len())])
}

/// A well-typed expression of the requested class. `depth` bounds nesting.
fn gen_expr(rng: &mut StdRng, depth: usize, class: Class) -> PhysExpr {
    let bin = |op: BinOp, l: PhysExpr, r: PhysExpr| PhysExpr::Binary {
        op,
        left: Box::new(l),
        right: Box::new(r),
    };
    if depth == 0 {
        // Leaves: a column of the class, or a literal (sometimes NULL).
        let null = rng.random_range(0..8usize) == 0;
        if null {
            return PhysExpr::Literal(Value::Null);
        }
        return match class {
            Class::Num => match rng.random_range(0..5usize) {
                0 => PhysExpr::Col(I_DENSE),
                1 => PhysExpr::Col(I_NULL),
                2 => PhysExpr::Col(F_NULL),
                3 => lit_int(rng),
                _ => lit_float(rng),
            },
            Class::Text => match rng.random_range(0..2usize) {
                0 => PhysExpr::Col(T_NULL),
                _ => lit_text(rng),
            },
            Class::Bool => match rng.random_range(0..2usize) {
                0 => PhysExpr::Col(B_NULL),
                _ => PhysExpr::lit(rng.random::<bool>()),
            },
            Class::Temporal => match rng.random_range(0..4usize) {
                0 => PhysExpr::Col(D_NULL),
                1 => PhysExpr::Col(TS_NULL),
                2 => PhysExpr::Literal(Value::Date(rng.random_range(0i64..30_000) as i32)),
                _ => PhysExpr::Literal(Value::Timestamp(
                    rng.random_range(0i64..2_500_000_000_000_000),
                )),
            },
        };
    }
    let d = depth - 1;
    match class {
        Class::Num => match rng.random_range(0..12usize) {
            0..=3 => {
                let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]
                    [rng.random_range(0..5usize)];
                bin(
                    op,
                    gen_expr(rng, d, Class::Num),
                    gen_expr(rng, d, Class::Num),
                )
            }
            4 => PhysExpr::Unary {
                op: UnOp::Neg,
                expr: Box::new(gen_expr(rng, d, Class::Num)),
            },
            5 => {
                let func = [
                    ScalarFunc::Abs,
                    ScalarFunc::Floor,
                    ScalarFunc::Ceil,
                    ScalarFunc::Sqrt,
                    ScalarFunc::Sign,
                    ScalarFunc::Exp,
                    ScalarFunc::Ln,
                ][rng.random_range(0..7usize)];
                PhysExpr::Func {
                    func,
                    args: vec![gen_expr(rng, d, Class::Num)],
                }
            }
            6 => PhysExpr::Func {
                func: [ScalarFunc::Coalesce, ScalarFunc::Nullif][rng.random_range(0..2usize)],
                args: vec![gen_expr(rng, d, Class::Num), gen_expr(rng, d, Class::Num)],
            },
            7 => PhysExpr::Func {
                func: [ScalarFunc::Greatest, ScalarFunc::Least][rng.random_range(0..2usize)],
                args: vec![gen_expr(rng, d, Class::Num), gen_expr(rng, d, Class::Num)],
            },
            8 => PhysExpr::Case {
                operand: None,
                whens: vec![(gen_expr(rng, d, Class::Bool), gen_expr(rng, d, Class::Num))],
                else_: rng
                    .random::<bool>()
                    .then(|| Box::new(gen_expr(rng, d, Class::Num))),
            },
            9 => PhysExpr::Cast {
                expr: Box::new(gen_expr(rng, d, Class::Num)),
                dtype: [DataType::Int, DataType::Float][rng.random_range(0..2usize)],
                strict: false,
            },
            // Dirty-data TRY_CAST: text into a numeric column.
            10 => PhysExpr::try_cast(gen_expr(rng, d, Class::Text), DataType::Int),
            _ => PhysExpr::Func {
                func: ScalarFunc::DateDiff,
                args: vec![
                    lit_unit(rng),
                    gen_expr(rng, d, Class::Temporal),
                    gen_expr(rng, d, Class::Temporal),
                ],
            },
        },
        Class::Text => match rng.random_range(0..5usize) {
            0 => {
                let func = [
                    ScalarFunc::Upper,
                    ScalarFunc::Lower,
                    ScalarFunc::Trim,
                    ScalarFunc::LTrim,
                    ScalarFunc::RTrim,
                ][rng.random_range(0..5usize)];
                PhysExpr::Func {
                    func,
                    args: vec![gen_expr(rng, d, Class::Text)],
                }
            }
            1 => {
                // Concat renders any operand type.
                let rhs = [Class::Text, Class::Num][rng.random_range(0..2usize)];
                let l = gen_expr(rng, d, Class::Text);
                let r = gen_expr(rng, d, rhs);
                bin(BinOp::Concat, l, r)
            }
            2 => PhysExpr::Func {
                func: ScalarFunc::Left,
                args: vec![gen_expr(rng, d, Class::Text), lit_int(rng)],
            },
            3 => {
                let src = [Class::Num, Class::Temporal, Class::Text][rng.random_range(0..3usize)];
                PhysExpr::Cast {
                    expr: Box::new(gen_expr(rng, d, src)),
                    dtype: DataType::Text,
                    strict: false,
                }
            }
            _ => PhysExpr::Case {
                operand: Some(Box::new(gen_expr(rng, d, Class::Num))),
                whens: vec![(gen_expr(rng, d, Class::Num), gen_expr(rng, d, Class::Text))],
                else_: Some(Box::new(gen_expr(rng, d, Class::Text))),
            },
        },
        Class::Bool => match rng.random_range(0..8usize) {
            0..=1 => {
                let op = [
                    BinOp::Eq,
                    BinOp::NotEq,
                    BinOp::Lt,
                    BinOp::LtEq,
                    BinOp::Gt,
                    BinOp::GtEq,
                ][rng.random_range(0..6usize)];
                let cls = [Class::Num, Class::Text, Class::Temporal][rng.random_range(0..3usize)];
                bin(op, gen_expr(rng, d, cls), gen_expr(rng, d, cls))
            }
            2 => bin(
                [BinOp::And, BinOp::Or][rng.random_range(0..2usize)],
                gen_expr(rng, d, Class::Bool),
                gen_expr(rng, d, Class::Bool),
            ),
            3 => PhysExpr::Unary {
                op: UnOp::Not,
                expr: Box::new(gen_expr(rng, d, Class::Bool)),
            },
            4 => {
                let cls = [Class::Num, Class::Text, Class::Bool, Class::Temporal]
                    [rng.random_range(0..4usize)];
                PhysExpr::IsNull {
                    expr: Box::new(gen_expr(rng, d, cls)),
                    negated: rng.random::<bool>(),
                }
            }
            5 => PhysExpr::Between {
                expr: Box::new(gen_expr(rng, d, Class::Num)),
                low: Box::new(gen_expr(rng, d, Class::Num)),
                high: Box::new(gen_expr(rng, d, Class::Num)),
                negated: rng.random::<bool>(),
            },
            6 => {
                // Literal lists hit the pre-hashed fast path; expression
                // lists hit the generic one.
                let literal_list = rng.random::<bool>();
                let len = rng.random_range(1..4usize);
                let (expr, list): (PhysExpr, Vec<PhysExpr>) = if literal_list {
                    (
                        gen_expr(rng, d, Class::Num),
                        (0..len)
                            .map(|_| {
                                if rng.random_range(0..5usize) == 0 {
                                    PhysExpr::Literal(Value::Null)
                                } else {
                                    lit_int(rng)
                                }
                            })
                            .collect(),
                    )
                } else {
                    (
                        gen_expr(rng, d, Class::Text),
                        (0..len).map(|_| gen_expr(rng, d, Class::Text)).collect(),
                    )
                };
                PhysExpr::InList {
                    expr: Box::new(expr),
                    list,
                    negated: rng.random::<bool>(),
                }
            }
            _ => PhysExpr::Like {
                expr: Box::new(gen_expr(rng, d, Class::Text)),
                pattern: Box::new(if rng.random::<bool>() {
                    lit_pattern(rng)
                } else {
                    gen_expr(rng, d, Class::Text)
                }),
                negated: rng.random::<bool>(),
            },
        },
        Class::Temporal => match rng.random_range(0..4usize) {
            0 => bin(
                [BinOp::Add, BinOp::Sub][rng.random_range(0..2usize)],
                gen_expr(rng, d, Class::Temporal),
                lit_int(rng),
            ),
            1 => PhysExpr::Func {
                func: ScalarFunc::DateTrunc,
                args: vec![lit_unit(rng), gen_expr(rng, d, Class::Temporal)],
            },
            2 => PhysExpr::Func {
                func: ScalarFunc::DateAdd,
                args: vec![
                    lit_unit(rng),
                    lit_int(rng),
                    gen_expr(rng, d, Class::Temporal),
                ],
            },
            _ => PhysExpr::Case {
                operand: None,
                whens: vec![(
                    gen_expr(rng, d, Class::Bool),
                    gen_expr(rng, d, Class::Temporal),
                )],
                else_: Some(Box::new(gen_expr(rng, d, Class::Temporal))),
            },
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn vectorized_matches_row_interpreter(
        seed in any::<u64>(),
        rows in 0usize..48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let batch = gen_batch(&mut rng, rows);
        let ctx = EvalCtx::default();
        for _ in 0..8 {
            let class = [Class::Num, Class::Text, Class::Bool, Class::Temporal]
                [rng.random_range(0..4usize)];
            let depth = rng.random_range(1..4usize);
            let expr = gen_expr(&mut rng, depth, class);
            let vectorized = eval::eval(&expr, &batch, &ctx);
            let interp = eval::eval_interp(&expr, &batch, &ctx);
            match (vectorized, interp) {
                (Ok(v), Ok(o)) => assert_col_bit_identical(&v, &o, &expr),
                (Err(_), Err(_)) => {} // both reject — same semantics
                (v, o) => panic!(
                    "engines disagree on success for {expr:?}: vectorized {:?} vs interpreter {:?}",
                    v.map(|c| c.dtype()),
                    o.map(|c| c.dtype()),
                ),
            }
            // Selection vectors restrict evaluation to surviving rows:
            // must equal evaluating the gathered batch densely.
            if rows > 0 {
                let sel: Vec<usize> =
                    (0..rows).filter(|_| rng.random::<bool>()).collect();
                let selected = eval::eval_sel(&expr, &batch, Some(&sel), &ctx);
                let gathered = eval::eval_interp(&expr, &batch.take(&sel), &ctx);
                if let (Ok(v), Ok(o)) = (selected, gathered) {
                    assert_col_bit_identical(&v, &o, &expr);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// deterministic binary-op matrix
// ---------------------------------------------------------------------

/// Every binary operator over every (left type, right type) pair with a
/// valid row, a null-left row, and a null-right row — in column⊗column,
/// column⊗literal, and literal⊗column shapes. Both engines must agree on
/// values (bit-exact) and on which combinations are type errors.
#[test]
fn binary_op_matrix_matches_interpreter() {
    let ctx = EvalCtx::default();
    let columns: Vec<(DataType, Column, Value)> = vec![
        (
            DataType::Bool,
            Column::from_opt_bools(vec![Some(true), None, Some(false)]),
            Value::Bool(true),
        ),
        (
            DataType::Int,
            Column::from_opt_ints(vec![Some(7), None, Some(-3)]),
            Value::Int(7),
        ),
        (
            DataType::Float,
            Column::from_opt_floats(vec![Some(2.5), None, Some(-0.0)]),
            Value::Float(2.5),
        ),
        (
            DataType::Text,
            Column::from_opt_texts(vec![Some("m".into()), None, Some("".into())]),
            Value::Text("m".into()),
        ),
        (
            DataType::Date,
            Column::from_opt_dates(vec![Some(18_000), None, Some(0)]),
            Value::Date(18_000),
        ),
        (
            DataType::Timestamp,
            Column::from_opt_timestamps(vec![Some(1_550_000_000_000_000), None, Some(0)]),
            Value::Timestamp(1_550_000_000_000_000),
        ),
    ];
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::Concat,
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
        BinOp::And,
        BinOp::Or,
    ];
    let mut checked = 0usize;
    for (lt, lcol, llit) in &columns {
        for (rt, rcol, rlit) in &columns {
            let batch = Batch::new(
                Arc::new(Schema::new(vec![
                    Field::new("l", *lt),
                    Field::new("r", *rt),
                ])),
                vec![lcol.clone(), rcol.clone()],
            )
            .unwrap();
            let shapes: [(PhysExpr, PhysExpr); 3] = [
                (PhysExpr::Col(0), PhysExpr::Col(1)),
                (PhysExpr::Col(0), PhysExpr::Literal(rlit.clone())),
                (PhysExpr::Literal(llit.clone()), PhysExpr::Col(1)),
            ];
            for op in ops {
                for (l, r) in &shapes {
                    let expr = PhysExpr::Binary {
                        op,
                        left: Box::new(l.clone()),
                        right: Box::new(r.clone()),
                    };
                    let vectorized = eval::eval(&expr, &batch, &ctx);
                    let interp = eval::eval_interp(&expr, &batch, &ctx);
                    match (vectorized, interp) {
                        (Ok(v), Ok(o)) => assert_col_bit_identical(&v, &o, &expr),
                        (Err(_), Err(_)) => {}
                        (v, o) => panic!(
                            "engines disagree on {op:?} over ({lt:?}, {rt:?}): \
                             vectorized ok={} interpreter ok={}",
                            v.is_ok(),
                            o.is_ok(),
                        ),
                    }
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, columns.len() * columns.len() * ops.len() * 3);
}

// ---------------------------------------------------------------------
// whole-pipeline oracle: parallelism × memory budget
// ---------------------------------------------------------------------

/// Expression-heavy pipelines covering the operators that now consume
/// selection vectors (filter → project → filter chains, aggregation over
/// computed keys, join keys, sort keys).
const PIPELINES: &[&str] = &[
    // Filter -> project -> filter chain over computed expressions.
    "SELECT a, a * v AS av FROM \
       (SELECT v, v + 1 AS a, s FROM t WHERE v > -20 AND s LIKE '%a%') x \
     WHERE a % 3 = 1",
    // CASE / TRY-CAST / IN in projections over a filtered input.
    "SELECT v, CASE WHEN v % 2 = 0 THEN 'even' ELSE CAST(v AS VARCHAR) END AS tag, \
            CAST(s AS BIGINT) AS parsed \
     FROM t WHERE v IN (1, 2, 3, 5, 8, 13, 21, 34) OR f BETWEEN -1.0 AND 1.0",
    // Aggregation over computed group keys from a filtered selection.
    "SELECT v % 5 AS g, COUNT(*) AS n, SUM(f * 2.0 + v) AS s, MAX(UPPER(s)) AS mx \
     FROM t WHERE NOT (v BETWEEN -5 AND 5) GROUP BY v % 5",
    // Join on computed keys below a filter, aggregated above.
    "SELECT u.lab, COUNT(*) AS n, AVG(t.f) AS a \
     FROM t JOIN u ON t.v % 4 = u.k WHERE t.v > -50 GROUP BY u.lab",
    // Sort on an expression over a filtered projection.
    "SELECT v, f, v * v - f AS score FROM t WHERE s LIKE '_%' ORDER BY v * v - f DESC, v",
    // DISTINCT over computed columns under a filter chain.
    "SELECT DISTINCT v % 3 AS m, s LIKE 'a%' AS starts_a FROM t WHERE v + 2 > 0",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn pipelines_bit_identical_at_any_parallelism_and_budget(
        rows in proptest::collection::vec(
            (-60i64..60, proptest::option::of(-60i64..60), 0usize..9),
            1..80,
        ),
        partition_rows in 1usize..20,
    ) {
        let wh = Warehouse::default();
        let schema = Arc::new(Schema::new(vec![
            Field::new("v", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("s", DataType::Text),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                Column::from_ints(rows.iter().map(|(v, _, _)| *v).collect()),
                Column::from_opt_floats(
                    rows.iter().map(|(_, f, _)| f.map(|x| x as f64 / 3.0)).collect(),
                ),
                Column::from_texts(
                    rows.iter().map(|(_, _, s)| TEXT_POOL[*s].to_string()).collect(),
                ),
            ],
        )
        .unwrap();
        wh.load_table_partitioned("t", batch, partition_rows).unwrap();
        let dim = Batch::new(
            Arc::new(Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("lab", DataType::Text),
            ])),
            vec![
                Column::from_ints((-3..4).collect()),
                Column::from_texts((-3..4).map(|i| format!("l{i}")).collect()),
            ],
        )
        .unwrap();
        wh.load_table("u", dim).unwrap();

        for sql in PIPELINES {
            let mut oracle: Option<Batch> = None;
            for parallelism in [1usize, 4] {
                for budget in [None, Some(1usize)] {
                    wh.set_parallelism(parallelism);
                    wh.set_memory_budget(budget);
                    let got = wh.execute_sql(sql).unwrap().batch;
                    match &oracle {
                        None => oracle = Some(got),
                        Some(oracle) => assert_batch_bit_identical(
                            oracle,
                            &got,
                            &format!("{sql} @ p={parallelism} budget={budget:?}"),
                        ),
                    }
                }
            }
        }
    }
}
