//! The out-of-core contract: for any pipeline, executing under a memory
//! budget small enough to force multi-round spilling produces results
//! **bit-identical** (row order, column types, float bit patterns) to the
//! unbudgeted in-memory execution — at any parallelism.
//!
//! The in-memory oracle is `budget = ∞, parallelism = 1, morsel_rows =
//! None`; each generated table/query runs additionally at `(∞, 4)`,
//! `(1 byte, 1)` and `(1 byte, 4)` (a 1-byte budget forces every
//! aggregation, sort, and hash-join build out of core), each both on the
//! static path and with 3-row morsels — the latter drives the morselized
//! spilling sinks (per-morsel bucket routing into the spilled aggregate,
//! parallel sorted-run spills, morsel-evaluated Grace probe keys). A
//! deterministic companion test pins the
//! observability half of the contract: forced-spill runs report nonzero
//! `spilled_bytes` and ≥2 `spill_rounds` for aggregate, sort, and join —
//! and unbudgeted runs report exactly zero — through both `ResultSet` and
//! `Warehouse::explain_analyze`.

use proptest::prelude::*;
use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};
use std::sync::Arc;

/// Pipelines covering every spill-capable operator (and their fusions).
const QUERIES: &[&str] = &[
    // Grouped aggregation across every mergeable state (two-phase over
    // partitioned scans).
    "SELECT g, COUNT(*) AS c, COUNT(v) AS cv, COUNT(DISTINCT v) AS cd, \
            SUM(v) AS s, AVG(v) AS a, MIN(v) AS mn, MAX(v) AS mx, \
            STDDEV(v) AS sd, MEDIAN(v) AS md \
     FROM t GROUP BY g",
    // Multi-column grouping (wider keys stress the bucket router).
    "SELECT g, jk, SUM(d) AS s, AVG(d) AS a FROM t GROUP BY g, jk",
    // Aggregation over a filter (possibly-empty input under a budget).
    "SELECT g, COUNT(*) AS c, SUM(v) AS s FROM t WHERE v > 1000 GROUP BY g",
    // External sort: multi-key, mixed direction, nullable key column.
    "SELECT g, v, d FROM t ORDER BY v DESC, d, g",
    "SELECT g, v FROM t ORDER BY g",
    // Sort over an aggregate (spilled agg feeding spilled sort).
    "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY s DESC, g",
    // Grace hash joins of every kind (dangling keys on both sides).
    "SELECT t.g, t.v, u.lab FROM t JOIN u ON t.jk = u.k",
    "SELECT t.g, u.lab FROM t LEFT JOIN u ON t.jk = u.k",
    "SELECT t.g, u.lab FROM t FULL JOIN u ON t.jk = u.k",
    // Aggregation over a join (spilled join feeding two-phase aggregate).
    "SELECT u.lab, COUNT(*) AS n, SUM(t.v) AS s \
     FROM t LEFT JOIN u ON t.jk = u.k GROUP BY u.lab",
    // Aggregation over UNION ALL (partition structure preserved).
    "SELECT g, SUM(v) AS s FROM (SELECT g, v FROM t UNION ALL SELECT g, v FROM t) x GROUP BY g",
];

fn load(rows: &[(i64, Option<i64>, i64)], partition_rows: usize) -> Warehouse {
    // Open the shared worker pool so `parallelism = p` occupies p slots;
    // the sweep below then exercises pooled worker counts, and the morsel
    // paths (which gate off when execution is effectively serial) engage.
    sigma_cdw::grow_worker_pool_target(16);
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("d", DataType::Float),
        Field::new("jk", DataType::Int),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints(rows.iter().map(|(g, _, _)| *g).collect()),
            Column::from_opt_ints(rows.iter().map(|(_, v, _)| *v).collect()),
            Column::from_floats(
                rows.iter()
                    .map(|(_, v, j)| v.unwrap_or(*j) as f64 / 3.0)
                    .collect(),
            ),
            Column::from_ints(rows.iter().map(|(_, _, j)| *j).collect()),
        ],
    )
    .unwrap();
    wh.load_table_partitioned("t", batch, partition_rows)
        .unwrap();
    // Dimension keys 0..6, duplicated labels, so some fact keys (6..8)
    // dangle and some dimension rows multi-match.
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("lab", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..6).collect()),
            Column::from_texts((0..6).map(|i| format!("l{}", i % 3)).collect()),
        ],
    )
    .unwrap();
    wh.load_table("u", dim).unwrap();
    wh
}

/// Equality down to float bit patterns (NaN-safe, -0.0 ≠ 0.0 visible).
fn assert_bit_identical(oracle: &Batch, spilled: &Batch, what: &str) {
    assert_eq!(oracle.num_rows(), spilled.num_rows(), "row count: {what}");
    assert_eq!(
        oracle.num_columns(),
        spilled.num_columns(),
        "column count: {what}"
    );
    for c in 0..oracle.num_columns() {
        assert_eq!(
            oracle.column(c).dtype(),
            spilled.column(c).dtype(),
            "dtype of column {c}: {what}"
        );
        for r in 0..oracle.num_rows() {
            let (a, b) = (oracle.value(r, c), spilled.value(r, c));
            match (&a, &b) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "float bits at ({r}, {c}): {x} vs {y}: {what}"
                ),
                _ => assert_eq!(a, b, "value at ({r}, {c}): {what}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn spilled_execution_bit_identical_to_in_memory(
        rows in proptest::collection::vec(
            (0i64..5, proptest::option::of(-50i64..50), 0i64..8),
            1..120,
        ),
        partition_rows in 1usize..24,
    ) {
        let wh = load(&rows, partition_rows);
        for sql in QUERIES {
            wh.set_memory_budget(None);
            wh.set_parallelism(1);
            wh.set_morsel_rows(None);
            let oracle = wh.execute_sql(sql).unwrap();
            assert_eq!(oracle.spilled_bytes, 0, "unbudgeted must not spill: {sql}");
            assert_eq!(oracle.spill_rounds, 0, "unbudgeted must not spill: {sql}");
            for (budget, parallelism) in
                [(None, 4usize), (Some(1), 1), (Some(1), 4)]
            {
                wh.set_memory_budget(budget);
                wh.set_parallelism(parallelism);
                for morsel_rows in [None, Some(3)] {
                    wh.set_morsel_rows(morsel_rows);
                    let run = wh.execute_sql(sql).unwrap();
                    let what =
                        format!("{sql} [budget={budget:?} p={parallelism} morsel={morsel_rows:?}]");
                    assert_bit_identical(&oracle.batch, &run.batch, &what);
                    if budget.is_none() {
                        assert_eq!(run.spilled_bytes, 0, "{what}");
                    }
                }
            }
            wh.set_morsel_rows(None);
        }
    }
}

/// Parse `spilled_bytes=<n>` / `spill_rounds=<n>` out of the EXPLAIN
/// ANALYZE footer.
fn footer_stat(rendered: &str, stat: &str) -> usize {
    let tail = rendered
        .split(&format!("{stat}="))
        .nth(1)
        .unwrap_or_else(|| panic!("no {stat} in: {rendered}"));
    tail.split_whitespace()
        .next()
        .unwrap()
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("unparsable {stat} in: {rendered}"))
}

/// Observability contract on a deterministic workload: a budget that
/// forces each operator out of core yields ≥2 spill rounds and nonzero
/// spilled bytes (visible in `ResultSet` and `explain_analyze`); lifting
/// the budget zeroes both.
#[test]
fn forced_spill_reports_rounds_and_bytes() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..2000)
        .map(|i| {
            (
                i % 37,
                if i % 11 == 0 { None } else { Some(i % 251) },
                i % 8,
            )
        })
        .collect();
    let wh = load(&rows, 256); // 8 partitions

    // Per-case forcing budget: well under that operator's state estimate
    // (the join's build side is the small dimension table, so its budget
    // sits below the key-material estimate for 6 rows).
    let cases = [
        (
            "aggregate",
            "SELECT g, SUM(v) AS s, AVG(d) AS a, COUNT(*) AS c FROM t GROUP BY g",
            4096usize,
        ),
        ("sort", "SELECT g, v, d FROM t ORDER BY v DESC, g", 4096),
        ("join", "SELECT t.g, u.lab FROM t JOIN u ON t.jk = u.k", 64),
    ];
    for parallelism in [1usize, 4] {
        wh.set_parallelism(parallelism);
        for (name, sql, budget) in cases {
            // In-memory oracle.
            wh.set_memory_budget(None);
            let oracle = wh.execute_sql(sql).unwrap();
            assert_eq!(oracle.spilled_bytes, 0, "{name} p={parallelism}");
            assert_eq!(oracle.spill_rounds, 0, "{name} p={parallelism}");
            let rendered = wh.explain_analyze(sql).unwrap();
            assert!(rendered.contains("memory: budget=unbounded"), "{rendered}");
            assert_eq!(footer_stat(&rendered, "spilled_bytes"), 0, "{rendered}");
            assert_eq!(footer_stat(&rendered, "spill_rounds"), 0, "{rendered}");

            // Forced out-of-core.
            wh.set_memory_budget(Some(budget));
            let spilled = wh.execute_sql(sql).unwrap();
            assert!(
                spilled.spilled_bytes > 0,
                "{name} p={parallelism}: no bytes spilled"
            );
            assert!(
                spilled.spill_rounds >= 2,
                "{name} p={parallelism}: rounds={} (wanted multi-round spilling)",
                spilled.spill_rounds
            );
            assert_bit_identical(
                &oracle.batch,
                &spilled.batch,
                &format!("{name} p={parallelism}"),
            );
            let rendered = wh.explain_analyze(sql).unwrap();
            assert!(
                rendered.contains(&format!("memory: budget={budget}")),
                "{rendered}"
            );
            assert!(footer_stat(&rendered, "spilled_bytes") > 0, "{rendered}");
            assert!(footer_stat(&rendered, "spill_rounds") >= 2, "{rendered}");
        }
    }
    wh.set_memory_budget(None);
}

/// The morselized spilling sinks must actually engage: with 3-row
/// morsels and a 1-byte budget, the spill-capable operators both spill
/// (nonzero bytes) and consume morsels (nonzero `morsels` stat) — while
/// reproducing the unbudgeted static serial oracle bit-for-bit.
#[test]
fn morselized_spilling_spills_and_counts_morsels() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..400)
        .map(|i| (i % 13, if i % 7 == 0 { None } else { Some(i % 97) }, i % 8))
        .collect();
    let wh = load(&rows, 64); // 7 partitions
    let cases = [
        (
            "Aggregate[partial]",
            "SELECT g, SUM(v) AS s, AVG(d) AS a FROM t GROUP BY g",
        ),
        ("Sort", "SELECT g, v, d FROM t ORDER BY v DESC, g"),
        (
            "Join Inner",
            "SELECT t.g, u.lab FROM t JOIN u ON t.jk = u.k",
        ),
    ];
    for (op_prefix, sql) in cases {
        wh.set_memory_budget(None);
        wh.set_parallelism(1);
        wh.set_morsel_rows(None);
        let oracle = wh.execute_sql(sql).unwrap();

        wh.set_memory_budget(Some(1));
        wh.set_parallelism(4);
        wh.set_morsel_rows(Some(3));
        let run = wh.execute_sql(sql).unwrap();
        assert!(run.spilled_bytes > 0, "budget did not force a spill: {sql}");
        assert_bit_identical(&oracle.batch, &run.batch, sql);
        let op = run
            .operators
            .iter()
            .find(|o| o.op.starts_with(op_prefix))
            .unwrap_or_else(|| panic!("no {op_prefix} op: {:?}", run.operators));
        assert!(
            op.morsels > 0,
            "morselized spill path did not engage: {op:?} {sql}"
        );
    }
    wh.set_memory_budget(None);
    wh.set_morsel_rows(None);
}

/// DML wrapping a query (CTAS / INSERT ... SELECT) reports the inner
/// query's spill activity too.
#[test]
fn ctas_and_insert_report_spill_stats() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..200).map(|i| (i % 7, Some(i), i % 8)).collect();
    let wh = load(&rows, 32);
    wh.set_memory_budget(Some(1));
    let ctas = wh
        .execute_sql("CREATE TABLE agg AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    assert!(ctas.spilled_bytes > 0, "CTAS hid the inner query's spill");
    assert!(ctas.spill_rounds >= 2);
    let insert = wh
        .execute_sql("INSERT INTO agg SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    assert!(
        insert.spilled_bytes > 0,
        "INSERT hid the inner query's spill"
    );
    wh.set_memory_budget(None);
    let cold = wh
        .execute_sql("CREATE OR REPLACE TABLE agg2 AS SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    assert_eq!(cold.spilled_bytes, 0);
    assert_eq!(cold.spill_rounds, 0);
}

/// The two-phase partial/final split keeps working under spill: the plan
/// still shows the split, per-operator stats still report the partial
/// phase, and partition structure reaches the spilled aggregate.
#[test]
fn two_phase_split_survives_spilling() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..40).map(|i| (i % 4, Some(i), i % 8)).collect();
    let wh = load(&rows, 8); // 5 partitions
    wh.set_parallelism(4);
    wh.set_memory_budget(Some(1));
    let result = wh
        .execute_sql("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    assert_eq!(result.batch.num_rows(), 4);
    assert!(result.spilled_bytes > 0);
    let ops: Vec<&str> = result.operators.iter().map(|o| o.op.as_str()).collect();
    assert!(
        ops.iter().any(|o| o.starts_with("Aggregate[final]")),
        "{ops:?}"
    );
    let partial = result
        .operators
        .iter()
        .find(|o| o.op.starts_with("Aggregate[partial]"))
        .unwrap_or_else(|| panic!("no partial stats under spill: {ops:?}"));
    assert_eq!(partial.partitions, 5);
    // 5 partitions × up to 4 groups each, merged down to 4 final groups.
    assert!(partial.rows_out >= 4, "{partial:?}");
}
