//! The delta kernels' safety net: `sigma_cdw::delta::execute_simple_stage`
//! must be **bit-identical** — float bit patterns included — to parsing,
//! planning, and executing the same stage SQL through the full warehouse
//! over the same input. The sweep covers the shapes the browser tier
//! actually replays: wildcard filters, aliased projections with qualified
//! columns, duplicate output names, CASE/LIKE, and `ORDER BY` in both its
//! resolutions (output name and hidden input-scoped key), over batches
//! with nulls, NaN, ±0.0 and ties.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sigma_cdw::delta::{execute_simple_stage, simple_stage_select};
use sigma_cdw::eval::EvalCtx;
use sigma_cdw::Warehouse;
use sigma_sql::parse_query;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};
use std::sync::Arc;

const FLOAT_POOL: &[f64] = &[
    0.0,
    -0.0,
    1.5,
    -2.25,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
];
const TEXT_POOL: &[&str] = &["", "alpha", "Beta", "a%b", "aa", "no", "100"];

fn gen_parent(rng: &mut StdRng, rows: usize) -> Batch {
    let schema = Arc::new(Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("y", DataType::Int),
        Field::new("f", DataType::Float),
        Field::new("s", DataType::Text),
    ]));
    let nullable = |rng: &mut StdRng| rng.random_range(0..4usize) == 0;
    // Narrow ranges on purpose: ties exercise sort stability.
    let xs: Vec<i64> = (0..rows).map(|_| rng.random_range(-10i64..10)).collect();
    let ys: Vec<Option<i64>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| rng.random_range(-10i64..10)))
        .collect();
    let fs: Vec<Option<f64>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| FLOAT_POOL[rng.random_range(0..FLOAT_POOL.len())]))
        .collect();
    let ss: Vec<Option<String>> = (0..rows)
        .map(|_| (!nullable(rng)).then(|| TEXT_POOL[rng.random_range(0..TEXT_POOL.len())].into()))
        .collect();
    Batch::new(
        schema,
        vec![
            Column::from_ints(xs),
            Column::from_opt_ints(ys),
            Column::from_opt_floats(fs),
            Column::from_opt_texts(ss),
        ],
    )
    .unwrap()
}

/// The stage shapes the browser tier replays through the kernels.
const STAGE_SQL: &[&str] = &[
    // Filter-tweak shape (base_0_f / lvl_f stages).
    "SELECT * FROM base_0 WHERE y > 5",
    "SELECT * FROM base_0 WHERE s LIKE 'a%' ORDER BY y DESC, x",
    // Projection shape (base_0 recompute after a formula edit).
    "SELECT t.s AS name, t.f * 2 AS f2 FROM base_0 AS t ORDER BY t.f DESC",
    "SELECT CASE WHEN y > 0 THEN 'pos' ELSE 'neg' END AS sign, x FROM base_0 ORDER BY sign DESC, x",
    // Sink shape: qualified columns + ORDER BY resolved as a hidden key.
    "SELECT t.x AS x, t.y AS y FROM base_0 AS t ORDER BY t.x",
    // ORDER BY against an output name, with ties.
    "SELECT * FROM base_0 ORDER BY x",
    // Hidden expression key (not in the select list).
    "SELECT s FROM base_0 ORDER BY y + 1",
    // Duplicate output names dedup with " (k)".
    "SELECT t.x AS a, t.y AS a FROM base_0 AS t ORDER BY a",
];

fn assert_bit_identical(kernel: &Batch, oracle: &Batch, sql: &str) {
    assert_eq!(kernel.num_rows(), oracle.num_rows(), "{sql}");
    assert_eq!(kernel.num_columns(), oracle.num_columns(), "{sql}");
    for c in 0..kernel.num_columns() {
        let (kf, of) = (kernel.schema().field(c), oracle.schema().field(c));
        assert_eq!(kf.name, of.name, "{sql}");
        assert_eq!(kf.dtype, of.dtype, "{sql}");
        for r in 0..kernel.num_rows() {
            match (kernel.value(r, c), oracle.value(r, c)) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "float bits at ({r},{c}): {a} vs {b}: {sql}"
                ),
                (a, b) => assert_eq!(a, b, "value at ({r},{c}): {sql}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_stage_matches_plan_and_execute(seed in any::<u64>(), rows in 0usize..60) {
        let mut rng = StdRng::seed_from_u64(seed);
        let parent = gen_parent(&mut rng, rows);
        let wh = Warehouse::default();
        wh.load_table("base_0", parent.clone()).unwrap();
        let ctx = EvalCtx::default();
        for sql in STAGE_SQL {
            let query = parse_query(sql).unwrap();
            prop_assert!(simple_stage_select(&query).is_some(), "{sql} must stay kernelable");
            let kernel = execute_simple_stage(&query, &parent, &ctx).unwrap();
            let oracle = wh.execute_sql(sql).unwrap();
            assert_bit_identical(&kernel, &oracle.batch, sql);
        }
    }
}
