//! Exact-pool-size behavior of the persistent worker pool. The pool
//! target is process-global, so this binary holds the only tests that
//! *set* it exactly (everything else uses the grow-only API); the whole
//! sweep lives in one `#[test]` so no concurrently running test can
//! observe a half-applied target.
//!
//! What is pinned, per `set_worker_pool_target` value {1, 4, 16}:
//!
//! * **Bit-identity** — every query result matches the serial static
//!   oracle exactly, for parallelism {1, 4, 16} × morsel {None, 3, 4096}.
//!   The pool target only decides *where* work runs, never what it
//!   computes.
//! * **Serial collapse at pool = 1** — a 1-thread budget turns every
//!   parallel/morselized query into plain static execution: operators
//!   report `morsels = 0` and the scheduler counters show zero steals and
//!   zero unparks no matter what `parallelism`/`morsel_rows` ask for.
//! * **Thread cap** — after arbitrarily parallel queries, the pool's
//!   live worker count never exceeds its configured target.

use sigma_cdw::{set_worker_pool_target, worker_pool_stats, worker_pool_target, Warehouse};
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};
use std::sync::Arc;

const QUERIES: &[&str] = &[
    "SELECT g, COUNT(*) AS c, SUM(v) AS s, AVG(d) AS a FROM t GROUP BY g",
    "SELECT t.g, u.lab FROM t LEFT JOIN u ON t.jk = u.k",
    "SELECT g, v, d FROM t ORDER BY v DESC, d, g",
    "SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY v) AS w FROM t",
    "SELECT DISTINCT g, v FROM t",
];

fn load() -> Warehouse {
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("d", DataType::Float),
        Field::new("jk", DataType::Int),
    ]));
    let rows = 160usize;
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints((0..rows).map(|i| (i % 5) as i64).collect()),
            Column::from_ints((0..rows).map(|i| (i as i64 * 13) % 97).collect()),
            Column::from_floats((0..rows).map(|i| i as f64 / 3.0).collect()),
            Column::from_ints((0..rows).map(|i| (i % 8) as i64).collect()),
        ],
    )
    .unwrap();
    let wh = Warehouse::default();
    wh.load_table_partitioned("t", batch, 13).unwrap();
    wh.load_table(
        "u",
        Batch::new(
            Arc::new(Schema::new(vec![
                Field::new("k", DataType::Int),
                Field::new("lab", DataType::Text),
            ])),
            vec![
                Column::from_ints((0..6).collect()),
                Column::from_texts((0..6).map(|i| format!("l{i}")).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    wh
}

fn assert_bit_identical(oracle: &Batch, got: &Batch, what: &str) {
    assert_eq!(oracle.num_rows(), got.num_rows(), "rows: {what}");
    assert_eq!(oracle.num_columns(), got.num_columns(), "cols: {what}");
    for c in 0..oracle.num_columns() {
        for r in 0..oracle.num_rows() {
            match (oracle.value(r, c), got.value(r, c)) {
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "float bits ({r},{c}): {what}")
                }
                (a, b) => assert_eq!(a, b, "value ({r},{c}): {what}"),
            }
        }
    }
}

fn sched_counter(analyzed: &str, key: &str) -> usize {
    analyzed
        .lines()
        .find(|l| l.starts_with("scheduler:"))
        .and_then(|l| l.split_whitespace().find_map(|t| t.strip_prefix(key)))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no scheduler {key} in:\n{analyzed}"))
}

#[test]
fn exact_pool_sizes_stay_bit_identical_and_bounded() {
    let wh = load();
    wh.set_parallelism(1);
    wh.set_morsel_rows(None);
    let oracles: Vec<Batch> = QUERIES
        .iter()
        .map(|sql| wh.execute_sql(sql).unwrap().batch)
        .collect();

    for &pool in &[1usize, 4, 16] {
        set_worker_pool_target(pool);
        assert_eq!(worker_pool_target(), pool);
        for &parallelism in &[1usize, 4, 16] {
            wh.set_parallelism(parallelism);
            for morsel_rows in [None, Some(3), Some(4096)] {
                wh.set_morsel_rows(morsel_rows);
                for (sql, oracle) in QUERIES.iter().zip(&oracles) {
                    let got = wh.execute_sql(sql).unwrap();
                    let what =
                        format!("{sql} [pool={pool} p={parallelism} morsel={morsel_rows:?}]");
                    assert_bit_identical(oracle, &got.batch, &what);
                }
            }
        }
        let stats = worker_pool_stats();
        assert!(
            stats.live <= pool.max(stats.target),
            "pool {pool}: live workers exceed the budget: {stats:?}"
        );
    }

    // A 1-thread pool degrades every query to static serial execution:
    // no morsels, no steals, no worker wake-ups — regardless of the
    // requested parallelism and morsel height.
    set_worker_pool_target(1);
    wh.set_parallelism(16);
    wh.set_morsel_rows(Some(3));
    for sql in QUERIES {
        let result = wh.execute_sql(sql).unwrap();
        for op in &result.operators {
            assert_eq!(op.morsels, 0, "pool=1 must gate off morsels: {op:?} {sql}");
        }
        let analyzed = wh.explain_analyze(sql).unwrap();
        assert_eq!(sched_counter(&analyzed, "steals="), 0, "{analyzed}");
        assert_eq!(sched_counter(&analyzed, "unparks="), 0, "{analyzed}");
        let tasks = sched_counter(&analyzed, "tasks=");
        assert_eq!(
            sched_counter(&analyzed, "local="),
            tasks,
            "serial tasks all count as own-queue work: {analyzed}"
        );
    }

    // And reopening the pool re-engages the morsel path on the same
    // warehouse (the gate reads the live target, not captured state).
    set_worker_pool_target(4);
    let result = wh.execute_sql(QUERIES[0]).unwrap();
    assert!(
        result.operators.iter().any(|op| op.morsels > 0),
        "pool=4 must re-engage morsels: {:?}",
        result.operators
    );
    assert_bit_identical(&oracles[0], &result.batch, "reopened pool");
}
