//! Direct checks on the optimizer's three rewrites, via EXPLAIN-style
//! plan inspection.

use std::sync::Arc;

use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema};

fn wh() -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::new("b", DataType::Int),
        Field::new("c", DataType::Text),
        Field::new("d", DataType::Float),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints((0..100).collect()),
            Column::from_ints((0..100).map(|i| i * 2).collect()),
            Column::from_texts((0..100).map(|i| format!("t{i}")).collect()),
            Column::from_floats((0..100).map(|i| i as f64).collect()),
        ],
    )
    .unwrap();
    wh.load_table("t", batch).unwrap();
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("label", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..10).collect()),
            Column::from_texts((0..10).map(|i| format!("l{i}")).collect()),
        ],
    )
    .unwrap();
    wh.load_table("dim", dim).unwrap();
    wh
}

#[test]
fn constant_folding_inlines_literals() {
    let wh = wh();
    let plan = wh
        .plan_sql("SELECT a FROM t WHERE a > 1 + 2 * 3 AND LENGTH('abcd') = 4")
        .unwrap();
    let explain = format!("{plan:?}");
    // 1 + 2 * 3 folds to 7; LENGTH('abcd') = 4 folds to true.
    assert!(explain.contains("Int(7)"), "{explain}");
    assert!(!explain.contains("Length"), "{explain}");
}

#[test]
fn filter_pushed_below_projection_and_sort() {
    let wh = wh();
    let plan = wh
        .plan_sql("SELECT x FROM (SELECT a + 1 AS x, c FROM t ORDER BY a) s WHERE x > 10")
        .unwrap();
    let explain = plan.explain();
    let filter = explain.find("Filter").expect("filter exists");
    let sort = explain.find("Sort").expect("sort exists");
    let scan = explain.find("Scan").expect("scan exists");
    assert!(
        filter > 0 && filter < scan,
        "filter should sit near the scan:\n{explain}"
    );
    assert!(
        sort < filter,
        "filter should be pushed below the sort:\n{explain}"
    );
}

#[test]
fn filter_split_across_join_sides() {
    let wh = wh();
    let plan = wh
        .plan_sql(
            "SELECT t.a, dim.label FROM t JOIN dim ON t.a = dim.k \
             WHERE t.b > 50 AND dim.label <> 'l1'",
        )
        .unwrap();
    let explain = plan.explain();
    // Both conjuncts push into their own sides: two filters below the join.
    let join_pos = explain.find("Join").expect("join exists");
    let filters: Vec<usize> = explain.match_indices("Filter").map(|(i, _)| i).collect();
    assert_eq!(filters.len(), 2, "{explain}");
    assert!(filters.iter().all(|&f| f > join_pos), "{explain}");
}

#[test]
fn projection_pruning_narrows_scan() {
    let wh = wh();
    // Only `a` of four columns is needed.
    let plan = wh.plan_sql("SELECT a + 1 AS x FROM t").unwrap();
    fn scan_project_width(plan: &sigma_cdw::plan::Plan) -> Option<usize> {
        use sigma_cdw::plan::Plan;
        match plan {
            Plan::Project { input, exprs, .. } => {
                if matches!(**input, Plan::Scan { .. }) {
                    Some(exprs.len())
                } else {
                    scan_project_width(input)
                }
            }
            Plan::Filter { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Window { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input, .. } => scan_project_width(input),
            _ => None,
        }
    }
    // The narrow projection over the scan selects exactly 1 column.
    assert_eq!(scan_project_width(&plan), Some(1), "{}", plan.explain());
}

#[test]
fn aggregate_splits_two_phase_over_partitioned_scan() {
    let wh = wh();
    let plan = wh
        .plan_sql("SELECT c, SUM(a) AS s FROM t GROUP BY c")
        .unwrap();
    let explain = plan.explain();
    let final_pos = explain.find("Aggregate[final]").expect("final half");
    let partial_pos = explain.find("Aggregate[partial]").expect("partial half");
    assert!(final_pos < partial_pos, "{explain}");
}

#[test]
fn distinct_splits_two_phase_over_partitioned_scan() {
    let wh = wh();
    let plan = wh.plan_sql("SELECT DISTINCT c FROM t").unwrap();
    let explain = plan.explain();
    let final_pos = explain.find("Distinct[final]").expect("final half");
    let partial_pos = explain.find("Distinct[partial]").expect("partial half");
    assert!(final_pos < partial_pos, "{explain}");
}

#[test]
fn no_split_over_collapsing_input() {
    let wh = wh();
    // Limit collapses to one batch, so a two-phase split above it would
    // only add a pointless merge pass — the aggregate stays Single.
    let plan = wh
        .plan_sql("SELECT SUM(x) AS s FROM (SELECT a AS x FROM t ORDER BY a LIMIT 10) s")
        .unwrap();
    let explain = plan.explain();
    assert!(!explain.contains("Aggregate[final]"), "{explain}");
    assert!(!explain.contains("Aggregate[partial]"), "{explain}");
    assert!(explain.contains("Aggregate"), "{explain}");
}

#[test]
fn aggregate_over_join_splits_on_probe_partitions() {
    let wh = wh();
    // The join emits one part per probe (left) partition, so the
    // aggregate above it still splits two-phase.
    let plan = wh
        .plan_sql(
            "SELECT dim.label, COUNT(*) AS n FROM t JOIN dim ON t.a = dim.k GROUP BY dim.label",
        )
        .unwrap();
    let explain = plan.explain();
    assert!(explain.contains("Aggregate[final]"), "{explain}");
    assert!(explain.contains("Aggregate[partial]"), "{explain}");
}

#[test]
fn left_join_right_filter_not_pushed() {
    let wh = wh();
    // For LEFT JOIN, a WHERE on the right side cannot push into the right
    // input (it would change null-extension semantics) — it must stay above.
    let plan = wh
        .plan_sql("SELECT t.a FROM t LEFT JOIN dim ON t.a = dim.k WHERE dim.label IS NULL")
        .unwrap();
    let explain = plan.explain();
    let join_pos = explain.find("Join").expect("join");
    let filter_pos = explain.find("Filter").expect("filter");
    assert!(
        filter_pos < join_pos,
        "filter must stay above the join:\n{explain}"
    );
    // And the semantics hold: rows 10..99 have no dim match.
    let rows = wh
        .execute_sql(
            "SELECT COUNT(*) AS n FROM t LEFT JOIN dim ON t.a = dim.k WHERE dim.label IS NULL",
        )
        .unwrap()
        .batch;
    assert_eq!(rows.value(0, 0), sigma_value::Value::Int(90));
}

/// Pipeline decomposition is derived purely from plan shape: streaming
/// Filter/Project chains fuse into one pipeline line, breakers (sort,
/// final aggregation, join build) start new ones, and the partial
/// aggregate is marked as the fused pipeline's sink.
#[test]
fn explain_pipelines_shows_fused_chains_and_breakers() {
    let wh = wh();
    let agg = wh
        .explain_pipelines("SELECT c, SUM(b) AS s FROM t WHERE a > 10 GROUP BY c ORDER BY s")
        .unwrap();
    assert!(agg.contains("break: Sort"), "{agg}");
    assert!(agg.contains("break: Aggregate[final]"), "{agg}");
    // Granularity annotations: sort and the fused two-phase aggregate run
    // morsel-driven.
    assert!(agg.contains("break: Sort (1 keys) [morsel]"), "{agg}");
    assert!(
        agg.contains("Aggregate[partial]") && agg.contains("[sink] [morsel]"),
        "{agg}"
    );
    // The scan-side chain fuses scan, filter, and projections into one
    // pipeline that sinks into the partial aggregate.
    assert!(
        agg.contains("=> Filter ") && agg.contains("=> Aggregate[partial]"),
        "{agg}"
    );
    assert!(agg.contains("[sink]"), "{agg}");
    assert!(agg.contains("source: Scan t"), "{agg}");

    let join = wh
        .explain_pipelines("SELECT t.a, dim.label FROM t JOIN dim ON t.b = dim.k WHERE t.a < 50")
        .unwrap();
    assert!(
        join.contains("break: Join Inner (1 keys) [build: right, probe: left]"),
        "{join}"
    );
    // Probe side keeps its own streaming pipeline; build side is a bare
    // source.
    assert!(join.contains("pipeline: Scan t => Filter"), "{join}");
    assert!(join.contains("source: Scan dim"), "{join}");
    assert!(
        join.contains("[build: right, probe: left] [morsel]"),
        "{join}"
    );

    // Window probes morselize; LIMIT still collapses partition-granular.
    let win = wh
        .explain_pipelines("SELECT a, SUM(b) OVER (PARTITION BY c) AS r FROM t LIMIT 5")
        .unwrap();
    assert!(
        win.contains("break: Limit Some(5) offset 0 [partition]"),
        "{win}"
    );
    assert!(win.contains("break: Window (1 calls) [morsel]"), "{win}");
}
