//! End-to-end SQL execution tests: text in, rows out.

use std::sync::Arc;

use sigma_cdw::{Warehouse, WarehouseConfig};
use sigma_value::{calendar, Batch, Column, DataType, Field, Schema, Value};

fn wh() -> Warehouse {
    let wh = Warehouse::new(WarehouseConfig::default());
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("carrier", DataType::Text),
        Field::new("delay", DataType::Float),
        Field::new("cancelled", DataType::Bool),
        Field::new("day", DataType::Date),
    ]));
    let d = |y, m, dd| calendar::days_from_civil(y, m, dd);
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints(vec![1, 2, 3, 4, 5, 6]),
            Column::from_texts(
                ["AA", "AA", "UA", "UA", "DL", "DL"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            ),
            Column::from_opt_floats(vec![
                Some(5.0),
                Some(15.0),
                None,
                Some(45.0),
                Some(0.0),
                Some(30.0),
            ]),
            Column::from_bools(vec![false, false, true, false, false, true]),
            Column::from_dates(vec![
                d(2020, 1, 1),
                d(2020, 1, 2),
                d(2020, 1, 2),
                d(2020, 2, 1),
                d(2020, 2, 15),
                d(2020, 3, 1),
            ]),
        ],
    )
    .unwrap();
    wh.load_table("flights", batch).unwrap();
    wh
}

fn q(wh: &Warehouse, sql: &str) -> Batch {
    wh.execute_sql(sql)
        .unwrap_or_else(|e| panic!("query failed: {e}\n{sql}"))
        .batch
}

fn cell(b: &Batch, r: usize, c: usize) -> Value {
    b.value(r, c)
}

#[test]
fn select_where_order() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT id, delay FROM flights WHERE delay > 10 ORDER BY delay DESC",
    );
    assert_eq!(b.num_rows(), 3);
    assert_eq!(cell(&b, 0, 0), Value::Int(4)); // 45.0
    assert_eq!(cell(&b, 1, 0), Value::Int(6)); // 30.0
    assert_eq!(cell(&b, 2, 0), Value::Int(2)); // 15.0
}

#[test]
fn group_by_with_having() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT carrier, COUNT(*) AS n, AVG(delay) AS avg_delay \
         FROM flights GROUP BY carrier HAVING COUNT(*) = 2 ORDER BY carrier",
    );
    assert_eq!(b.num_rows(), 3);
    assert_eq!(cell(&b, 0, 0), Value::Text("AA".into()));
    assert_eq!(cell(&b, 0, 1), Value::Int(2));
    assert_eq!(cell(&b, 0, 2), Value::Float(10.0));
    // UA has one NULL delay: AVG ignores it.
    assert_eq!(cell(&b, 2, 2), Value::Float(45.0));
}

#[test]
fn global_aggregate_over_empty_filter() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT COUNT(*) AS n, SUM(delay) AS s FROM flights WHERE id > 100",
    );
    assert_eq!(b.num_rows(), 1);
    assert_eq!(cell(&b, 0, 0), Value::Int(0));
    assert_eq!(cell(&b, 0, 1), Value::Null);
}

#[test]
fn count_distinct_and_attr() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT COUNT(DISTINCT carrier) AS c, ATTR(carrier) AS a FROM flights",
    );
    assert_eq!(cell(&b, 0, 0), Value::Int(3));
    assert_eq!(cell(&b, 0, 1), Value::Null); // conflicting values
    let b2 = q(
        &wh,
        "SELECT ATTR(carrier) AS a FROM flights WHERE carrier = 'AA'",
    );
    assert_eq!(cell(&b2, 0, 0), Value::Text("AA".into()));
}

#[test]
fn median_stddev_percentile() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT MEDIAN(delay) AS med, PERCENTILE_CONT(delay, 0.0) AS p0, STDDEV(delay) AS sd \
         FROM flights",
    );
    // Non-null delays: 0, 5, 15, 30, 45 -> median 15.
    assert_eq!(cell(&b, 0, 0), Value::Float(15.0));
    assert_eq!(cell(&b, 0, 1), Value::Float(0.0));
    if let Value::Float(sd) = cell(&b, 0, 2) {
        assert!((sd - 18.506755523321747).abs() < 1e-9, "{sd}");
    } else {
        panic!("stddev not float");
    }
}

#[test]
fn case_and_scalar_functions() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT id, CASE WHEN delay > 15 THEN 'late' WHEN delay IS NULL THEN 'unknown' \
         ELSE 'ok' END AS status, UPPER(carrier) AS c FROM flights ORDER BY id",
    );
    assert_eq!(cell(&b, 0, 1), Value::Text("ok".into()));
    assert_eq!(cell(&b, 2, 1), Value::Text("unknown".into()));
    assert_eq!(cell(&b, 3, 1), Value::Text("late".into()));
    assert_eq!(cell(&b, 0, 2), Value::Text("AA".into()));
}

#[test]
fn date_functions_in_sql() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT DATE_TRUNC('month', day) AS m, COUNT(*) AS n FROM flights \
         GROUP BY DATE_TRUNC('month', day) ORDER BY m",
    );
    assert_eq!(b.num_rows(), 3);
    assert_eq!(
        cell(&b, 0, 0),
        Value::Date(calendar::days_from_civil(2020, 1, 1))
    );
    assert_eq!(cell(&b, 0, 1), Value::Int(3));
}

#[test]
fn joins_inner_left() {
    let wh = wh();
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("code", DataType::Text),
            Field::new("name", DataType::Text),
        ])),
        vec![
            Column::from_texts(vec!["AA".into(), "UA".into()]),
            Column::from_texts(vec!["American".into(), "United".into()]),
        ],
    )
    .unwrap();
    wh.load_table("carriers", dim).unwrap();
    let inner = q(
        &wh,
        "SELECT f.id, c.name FROM flights f JOIN carriers c ON f.carrier = c.code ORDER BY f.id",
    );
    assert_eq!(inner.num_rows(), 4); // DL rows drop out
    let left = q(
        &wh,
        "SELECT f.id, c.name FROM flights f LEFT JOIN carriers c ON f.carrier = c.code \
         ORDER BY f.id",
    );
    assert_eq!(left.num_rows(), 6);
    assert_eq!(cell(&left, 4, 1), Value::Null); // DL unmatched
}

#[test]
fn full_join_and_residual() {
    let wh = wh();
    let dim = Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("code", DataType::Text),
            Field::new("min_delay", DataType::Float),
        ])),
        vec![
            Column::from_texts(vec!["AA".into(), "ZZ".into()]),
            Column::from_floats(vec![10.0, 0.0]),
        ],
    )
    .unwrap();
    wh.load_table("rules", dim).unwrap();
    let full = q(
        &wh,
        "SELECT f.id, r.code FROM flights f FULL JOIN rules r ON f.carrier = r.code \
         ORDER BY f.id NULLS LAST",
    );
    // 6 flight rows + unmatched ZZ.
    assert_eq!(full.num_rows(), 7);
    assert_eq!(cell(&full, 6, 1), Value::Text("ZZ".into()));
    // Residual: equality + non-equi condition.
    let resid = q(
        &wh,
        "SELECT f.id FROM flights f JOIN rules r ON f.carrier = r.code AND f.delay > r.min_delay \
         ORDER BY f.id",
    );
    assert_eq!(resid.num_rows(), 1);
    assert_eq!(cell(&resid, 0, 0), Value::Int(2)); // AA with 15 > 10
}

#[test]
fn window_functions_end_to_end() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT id, carrier, \
                ROW_NUMBER() OVER (PARTITION BY carrier ORDER BY day) AS rn, \
                LAG(day) OVER (PARTITION BY carrier ORDER BY day) AS prev_day, \
                SUM(delay) OVER (PARTITION BY carrier ORDER BY day) AS run \
         FROM flights ORDER BY id",
    );
    assert_eq!(cell(&b, 0, 2), Value::Int(1));
    assert_eq!(cell(&b, 1, 2), Value::Int(2));
    assert_eq!(cell(&b, 0, 3), Value::Null);
    assert_eq!(
        cell(&b, 1, 3),
        Value::Date(calendar::days_from_civil(2020, 1, 1))
    );
    assert_eq!(cell(&b, 1, 4), Value::Float(20.0)); // 5 + 15
}

#[test]
fn last_value_ignore_nulls_filldown() {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("pos", DataType::Int),
        Field::new("marker", DataType::Text),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints(vec![1, 2, 3, 4, 5]),
            Column::from_opt_texts(vec![Some("a".into()), None, None, Some("b".into()), None]),
        ],
    )
    .unwrap();
    wh.load_table("events", batch).unwrap();
    let b = q(
        &wh,
        "SELECT pos, LAST_VALUE(marker) IGNORE NULLS OVER (ORDER BY pos \
         ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW) AS filled \
         FROM events ORDER BY pos",
    );
    let got: Vec<Value> = (0..5).map(|i| cell(&b, i, 1)).collect();
    assert_eq!(
        got,
        vec![
            Value::Text("a".into()),
            Value::Text("a".into()),
            Value::Text("a".into()),
            Value::Text("b".into()),
            Value::Text("b".into()),
        ]
    );
}

#[test]
fn qualify_filters_window() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT id, carrier FROM flights \
         QUALIFY ROW_NUMBER() OVER (PARTITION BY carrier ORDER BY day) = 1 ORDER BY carrier",
    );
    assert_eq!(b.num_rows(), 3); // first flight per carrier
}

#[test]
fn moving_average_frame() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT id, AVG(delay) OVER (ORDER BY id ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) \
         AS ma FROM flights ORDER BY id",
    );
    assert_eq!(cell(&b, 0, 1), Value::Float(5.0));
    assert_eq!(cell(&b, 1, 1), Value::Float(10.0)); // (5+15)/2
                                                    // Row 3: delay NULL; frame covers (15, NULL) -> avg 15.
    assert_eq!(cell(&b, 2, 1), Value::Float(15.0));
}

#[test]
fn union_values_cte() {
    let wh = wh();
    let b = q(
        &wh,
        "WITH extra AS (SELECT 'XX' AS carrier) \
         SELECT carrier FROM extra UNION ALL SELECT DISTINCT carrier FROM flights \
         ORDER BY carrier",
    );
    assert_eq!(b.num_rows(), 4);
    assert_eq!(cell(&b, 3, 0), Value::Text("XX".into()));
    let v = q(&wh, "VALUES (1, 'a'), (2, 'b') ORDER BY column1 DESC");
    assert_eq!(cell(&v, 0, 0), Value::Int(2));
}

#[test]
fn union_coerces_types() {
    let wh = wh();
    let b = q(&wh, "SELECT 1 AS x UNION ALL SELECT 2.5 ORDER BY x");
    assert_eq!(b.schema().field(0).dtype, DataType::Float);
    assert_eq!(cell(&b, 0, 0), Value::Float(1.0));
}

#[test]
fn limit_offset() {
    let wh = wh();
    let b = q(&wh, "SELECT id FROM flights ORDER BY id LIMIT 2 OFFSET 3");
    assert_eq!(b.num_rows(), 2);
    assert_eq!(cell(&b, 0, 0), Value::Int(4));
}

#[test]
fn order_by_non_projected_column() {
    let wh = wh();
    let b = q(&wh, "SELECT carrier FROM flights ORDER BY id DESC LIMIT 1");
    assert_eq!(cell(&b, 0, 0), Value::Text("DL".into()));
    assert_eq!(b.num_columns(), 1); // hidden sort column dropped
}

#[test]
fn ddl_dml_lifecycle() {
    let wh = wh();
    wh.execute_sql("CREATE TABLE notes (id BIGINT, txt VARCHAR)")
        .unwrap();
    wh.execute_sql("INSERT INTO notes VALUES (1, 'first'), (2, 'second')")
        .unwrap();
    let r = wh
        .execute_sql("INSERT INTO notes (txt, id) VALUES ('third', 3)")
        .unwrap();
    assert_eq!(r.rows_affected, 1);
    let b = q(&wh, "SELECT * FROM notes ORDER BY id");
    assert_eq!(b.num_rows(), 3);
    assert_eq!(cell(&b, 2, 1), Value::Text("third".into()));

    let u = wh
        .execute_sql("UPDATE notes SET txt = 'edited' WHERE id = 2")
        .unwrap();
    assert_eq!(u.rows_affected, 1);
    let b = q(&wh, "SELECT txt FROM notes WHERE id = 2");
    assert_eq!(cell(&b, 0, 0), Value::Text("edited".into()));

    let d = wh.execute_sql("DELETE FROM notes WHERE id = 1").unwrap();
    assert_eq!(d.rows_affected, 1);
    assert_eq!(
        q(&wh, "SELECT COUNT(*) AS n FROM notes").value(0, 0),
        Value::Int(2)
    );

    wh.execute_sql("DROP TABLE notes").unwrap();
    assert!(wh.execute_sql("SELECT * FROM notes").is_err());
}

#[test]
fn create_table_as_and_result_scan() {
    let wh = wh();
    wh.execute_sql("CREATE OR REPLACE TABLE mat AS SELECT carrier, COUNT(*) AS n FROM flights GROUP BY carrier")
        .unwrap();
    let b = q(&wh, "SELECT * FROM mat ORDER BY carrier");
    assert_eq!(b.num_rows(), 3);

    let r = wh
        .execute_sql("SELECT id FROM flights WHERE cancelled ORDER BY id")
        .unwrap();
    assert_eq!(r.batch.num_rows(), 2);
    let re = q(
        &wh,
        &format!(
            "SELECT COUNT(*) AS n FROM TABLE(RESULT_SCAN('{}')) AS r",
            r.query_id
        ),
    );
    assert_eq!(re.value(0, 0), Value::Int(2));
}

#[test]
fn parallel_scan_matches_serial() {
    let wh = Warehouse::default();
    let n = 10_000i64;
    let schema = Arc::new(Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("y", DataType::Float),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints((0..n).collect()),
            Column::from_floats((0..n).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .unwrap();
    // Small partitions to exercise the parallel path.
    let stored = sigma_cdw::storage::StoredTable::from_batch(batch.clone(), 512);
    assert!(stored.partitions().len() > 4);
    wh.load_table("nums", batch).unwrap();

    let sql = "SELECT COUNT(*) AS n, SUM(y) AS s FROM nums WHERE x % 3 = 0";
    let serial = q(&wh, sql);
    wh.set_parallelism(4);
    let parallel = q(&wh, sql);
    assert_eq!(serial.value(0, 0), parallel.value(0, 0));
    assert_eq!(serial.value(0, 1), parallel.value(0, 1));
}

#[test]
fn plan_is_optimized() {
    let wh = wh();
    let plan = wh
        .plan_sql("SELECT id FROM (SELECT id, carrier FROM flights) sub WHERE id > 3")
        .unwrap();
    let explain = plan.explain();
    // The filter must sit below the outer projection, adjacent to the scan.
    let filter_pos = explain.find("Filter").expect("filter present");
    let scan_pos = explain.find("Scan").expect("scan present");
    assert!(filter_pos < scan_pos, "pushdown failed:\n{explain}");
}

#[test]
fn error_isolation_dirty_cast() {
    let wh = wh();
    let b = q(&wh, "SELECT CAST(carrier AS BIGINT) AS x FROM flights");
    assert_eq!(b.column(0).null_count(), 6);
}

#[test]
fn nonexistent_table_and_column_errors() {
    let wh = wh();
    assert!(wh.execute_sql("SELECT * FROM nope").is_err());
    assert!(wh.execute_sql("SELECT nope FROM flights").is_err());
    assert!(wh
        .execute_sql("SELECT delay FROM flights GROUP BY carrier")
        .is_err());
}

#[test]
fn in_between_like() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT id FROM flights WHERE carrier IN ('AA', 'DL') AND delay BETWEEN 0 AND 30 \
         ORDER BY id",
    );
    assert_eq!(b.num_rows(), 4);
    let l = q(
        &wh,
        "SELECT id FROM flights WHERE carrier LIKE 'A%' ORDER BY id",
    );
    assert_eq!(l.num_rows(), 2);
}

#[test]
fn distinct_rows() {
    let wh = wh();
    let b = q(&wh, "SELECT DISTINCT carrier FROM flights ORDER BY carrier");
    assert_eq!(b.num_rows(), 3);
}

#[test]
fn aggregate_of_expression_and_group_expr_reuse() {
    let wh = wh();
    let b = q(
        &wh,
        "SELECT DATE_PART('month', day) AS m, SUM(delay * 2.0) AS d2 FROM flights \
         GROUP BY DATE_PART('month', day) ORDER BY m",
    );
    assert_eq!(b.num_rows(), 3);
    assert_eq!(cell(&b, 0, 0), Value::Int(1));
    assert_eq!(cell(&b, 0, 1), Value::Float(40.0)); // (5+15)*2
}
