//! Window-frame semantics checked against a naive O(n^2) oracle.

use proptest::prelude::*;
use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};
use std::sync::Arc;

fn load(values: &[(i64, Option<i64>)]) -> Warehouse {
    let wh = Warehouse::default();
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("pos", DataType::Int),
        Field::new("v", DataType::Int),
    ]));
    let batch = Batch::new(
        schema,
        vec![
            Column::from_ints(values.iter().map(|(g, _)| *g).collect()),
            Column::from_ints((0..values.len() as i64).collect()),
            Column::from_opt_ints(values.iter().map(|(_, v)| *v).collect()),
        ],
    )
    .unwrap();
    wh.load_table("t", batch).unwrap();
    wh
}

/// Naive frame sum: rows of the same group ordered by pos, ROWS BETWEEN
/// `back` PRECEDING AND `fwd` FOLLOWING.
fn oracle_sum(values: &[(i64, Option<i64>)], back: usize, fwd: usize) -> Vec<Option<i64>> {
    let n = values.len();
    let mut out = vec![None; n];
    for g in values
        .iter()
        .map(|(g, _)| *g)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let rows: Vec<usize> = (0..n).filter(|&i| values[i].0 == g).collect();
        for (idx, &row) in rows.iter().enumerate() {
            let start = idx.saturating_sub(back);
            let end = (idx + fwd + 1).min(rows.len());
            let mut sum = None;
            for &peer in &rows[start..end] {
                if let Some(v) = values[peer].1 {
                    sum = Some(sum.unwrap_or(0) + v);
                }
            }
            out[row] = sum;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn moving_frame_sum_matches_oracle(
        values in proptest::collection::vec((0i64..4, proptest::option::of(-20i64..20)), 1..60),
        back in 0usize..5,
        fwd in 0usize..5,
    ) {
        let wh = load(&values);
        let sql = format!(
            "SELECT pos, SUM(v) OVER (PARTITION BY g ORDER BY pos \
             ROWS BETWEEN {back} PRECEDING AND {fwd} FOLLOWING) AS s \
             FROM t ORDER BY pos"
        );
        let got = wh.execute_sql(&sql).unwrap().batch;
        let expected = oracle_sum(&values, back, fwd);
        for (i, e) in expected.iter().enumerate() {
            let want = e.map(Value::Int).unwrap_or(Value::Null);
            prop_assert_eq!(got.value(i, 1), want, "row {} (back={}, fwd={})", i, back, fwd);
        }
    }

    #[test]
    fn rank_and_row_number_consistent(
        values in proptest::collection::vec((0i64..3, 0i64..5), 1..60),
    ) {
        let wh = load(&values.iter().map(|&(g, v)| (g, Some(v))).collect::<Vec<_>>());
        let got = wh.execute_sql(
            "SELECT g, v, ROW_NUMBER() OVER (PARTITION BY g ORDER BY v) AS rn, \
                    RANK() OVER (PARTITION BY g ORDER BY v) AS rk, \
                    DENSE_RANK() OVER (PARTITION BY g ORDER BY v) AS dr \
             FROM t ORDER BY g, v, rn",
        ).unwrap().batch;
        // Invariants per partition: rn is 1..n; rk <= rn; dr <= rk; equal
        // v => equal rk/dr; rn strictly increasing.
        let mut last: Option<(Value, Value, i64)> = None; // (g, v, rn)
        for i in 0..got.num_rows() {
            let g = got.value(i, 0);
            let v = got.value(i, 1);
            let rn = got.value(i, 2).as_i64().unwrap();
            let rk = got.value(i, 3).as_i64().unwrap();
            let dr = got.value(i, 4).as_i64().unwrap();
            prop_assert!(rk <= rn);
            prop_assert!(dr <= rk);
            if let Some((lg, lv, lrn)) = &last {
                if *lg == g {
                    prop_assert_eq!(rn, lrn + 1);
                    if *lv == v {
                        // peers share rank
                        let prev_rk = got.value(i - 1, 3).as_i64().unwrap();
                        prop_assert_eq!(rk, prev_rk);
                    }
                } else {
                    prop_assert_eq!(rn, 1);
                }
            } else {
                prop_assert_eq!(rn, 1);
            }
            last = Some((g, v, rn));
        }
    }

    #[test]
    fn lag_lead_inverse(
        values in proptest::collection::vec(0i64..100, 2..50),
        offset in 1usize..4,
    ) {
        let wh = load(&values.iter().map(|&v| (0, Some(v))).collect::<Vec<_>>());
        let sql = format!(
            "SELECT pos, LAG(v, {offset}) OVER (ORDER BY pos) AS lagged, \
                    LEAD(v, {offset}) OVER (ORDER BY pos) AS led \
             FROM t ORDER BY pos"
        );
        let got = wh.execute_sql(&sql).unwrap().batch;
        let n = values.len();
        for i in 0..n {
            let lag_want = if i >= offset { Value::Int(values[i - offset]) } else { Value::Null };
            let lead_want = if i + offset < n { Value::Int(values[i + offset]) } else { Value::Null };
            prop_assert_eq!(got.value(i, 1), lag_want, "lag at {}", i);
            prop_assert_eq!(got.value(i, 2), lead_want, "lead at {}", i);
        }
    }
}
