//! The two-phase split's safety net: for generated GROUP BY / JOIN /
//! DISTINCT queries over randomly partitioned tables, `parallelism = 1`
//! and `parallelism = 4` must produce **bit-identical** batches (same
//! rows, same order, same float bit patterns). The optimizer decides the
//! partial/final placement purely from plan shape and the executor merges
//! partial states in partition-index order, so thread count can never
//! change a result — this test pins that invariant.
//!
//! The skew suite extends the pin to the morsel-driven path: pathological
//! partition layouts (one ~90% partition, empties, 1-row tails) at
//! parallelism {1, 4, 16} and morsel sizes {None = static oracle, 3,
//! default} must all agree bit-for-bit, because morsels regroup by
//! (partition, morsel index) before anything order-sensitive happens.
//! That now covers the long tail — LEFT/FULL probes, ORDER BY, and
//! window pipelines — and each skew case additionally re-runs the 3-row
//! morsel setting under a 1-byte memory budget, so the morselized
//! spilling sinks (per-morsel bucket routing, parallel sorted-run
//! spills, Grace probes) are pinned against the same oracle.

use proptest::prelude::*;
use sigma_cdw::Warehouse;
use sigma_value::{Batch, Column, DataType, Field, Schema, Value};
use std::sync::Arc;

/// Open the persistent worker pool to 16 slots for every test in this
/// binary. `parallelism = p` then occupies `min(p, 16)` pool slots, so
/// sweeping `parallelism` {1, 4, 16} is exactly a sweep of pooled worker
/// counts {1, 4, 16} — the per-query knob and the pool budget clamp
/// through `effective_workers(min(requested, pool_target))`. Grow-only
/// (monotonic `fetch_max`) so concurrent tests in this binary can't race
/// each other's budgets.
fn open_pool() {
    sigma_cdw::grow_worker_pool_target(16);
}

/// Queries covering the operators the two-phase refactor touches.
const QUERIES: &[&str] = &[
    // Grouped aggregation across every mergeable state.
    "SELECT g, COUNT(*) AS c, COUNT(v) AS cv, COUNT(DISTINCT v) AS cd, \
            SUM(v) AS s, AVG(v) AS a, MIN(v) AS mn, MAX(v) AS mx, \
            STDDEV(v) AS sd, MEDIAN(v) AS md \
     FROM t GROUP BY g",
    // Global aggregate (one row even over empty filters).
    "SELECT COUNT(*) AS c, SUM(d) AS s, AVG(d) AS a, STDDEV(d) AS sd FROM t",
    "SELECT COUNT(*) AS c, SUM(v) AS s FROM t WHERE v > 1000",
    // DISTINCT: partial dedup per partition + global merge.
    "SELECT DISTINCT g, v FROM t",
    // Partitioned hash join (shared build side).
    "SELECT t.g, t.v, u.lab FROM t JOIN u ON t.jk = u.k",
    "SELECT t.g, u.lab FROM t LEFT JOIN u ON t.jk = u.k",
    // Aggregation over a join: the join's per-partition output feeds a
    // two-phase aggregate.
    "SELECT u.lab, COUNT(*) AS n, SUM(t.v) AS s \
     FROM t LEFT JOIN u ON t.jk = u.k GROUP BY u.lab",
    // Aggregation over UNION ALL (parts from both inputs retained).
    "SELECT g, SUM(v) AS s FROM (SELECT g, v FROM t UNION ALL SELECT g, v FROM t) x GROUP BY g",
    // FULL join: unmatched lefts regroup per (partition, morsel) and the
    // matched-right flags union across probe morsels.
    "SELECT t.g, t.v, u.lab FROM t FULL JOIN u ON t.jk = u.k",
    // ORDER BY: per-morsel sorted runs k-way merged by (keys, row id).
    "SELECT g, v, d FROM t ORDER BY v DESC, d, g",
    "SELECT g, v FROM t ORDER BY g",
    // Windows: per-morsel expression eval + partition grouping merged in
    // chunk order, partitions computed in parallel.
    "SELECT g, v, SUM(v) OVER (PARTITION BY g ORDER BY v) AS w, \
            ROW_NUMBER() OVER (PARTITION BY g ORDER BY v DESC) AS rn FROM t",
    "SELECT g, AVG(d) OVER (PARTITION BY jk) AS a, LAG(v) OVER (ORDER BY g) AS l FROM t",
];

fn fact_batch(rows: &[(i64, Option<i64>, i64)]) -> Batch {
    let schema = Arc::new(Schema::new(vec![
        Field::new("g", DataType::Int),
        Field::new("v", DataType::Int),
        Field::new("d", DataType::Float),
        Field::new("jk", DataType::Int),
    ]));
    Batch::new(
        schema,
        vec![
            Column::from_ints(rows.iter().map(|(g, _, _)| *g).collect()),
            Column::from_opt_ints(rows.iter().map(|(_, v, _)| *v).collect()),
            Column::from_floats(
                rows.iter()
                    .map(|(_, v, j)| v.unwrap_or(*j) as f64 / 3.0)
                    .collect(),
            ),
            Column::from_ints(rows.iter().map(|(_, _, j)| *j).collect()),
        ],
    )
    .unwrap()
}

/// Small dimension table: keys 0..6 so some jk values (6..8) dangle.
fn dim_batch() -> Batch {
    Batch::new(
        Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("lab", DataType::Text),
        ])),
        vec![
            Column::from_ints((0..6).collect()),
            Column::from_texts((0..6).map(|i| format!("l{i}")).collect()),
        ],
    )
    .unwrap()
}

fn load(rows: &[(i64, Option<i64>, i64)], partition_rows: usize) -> Warehouse {
    open_pool();
    let wh = Warehouse::default();
    wh.load_table_partitioned("t", fact_batch(rows), partition_rows)
        .unwrap();
    wh.load_table("u", dim_batch()).unwrap();
    wh
}

/// Load `t` with a deliberately pathological partition layout: one
/// partition holding ~90% of the rows, empty partitions interleaved, and
/// `tails` single-row partitions (which morselize into 1-row morsels).
/// This is the layout static `i % threads` chunking handled worst and the
/// work-stealing scheduler must handle without changing a single bit.
fn load_skewed(rows: &[(i64, Option<i64>, i64)], tails: usize) -> Warehouse {
    open_pool();
    let wh = Warehouse::default();
    let batch = fact_batch(rows);
    let n = batch.num_rows();
    let tails = tails.min(n.saturating_sub(1));
    let big = n - tails;
    let schema = batch.schema().clone();
    let mut parts = vec![
        Batch::empty(schema.clone()),
        batch.slice(0, big),
        Batch::empty(schema.clone()),
    ];
    for i in 0..tails {
        parts.push(batch.slice(big + i, 1));
    }
    parts.push(Batch::empty(schema));
    wh.load_table_parts("t", parts).unwrap();
    wh.load_table("u", dim_batch()).unwrap();
    wh
}

/// Equality down to float bit patterns (NaN-safe, -0.0 ≠ 0.0 visible).
fn assert_bit_identical(serial: &Batch, parallel: &Batch, sql: &str) {
    assert_eq!(serial.num_rows(), parallel.num_rows(), "row count: {sql}");
    assert_eq!(
        serial.num_columns(),
        parallel.num_columns(),
        "column count: {sql}"
    );
    for c in 0..serial.num_columns() {
        assert_eq!(
            serial.column(c).dtype(),
            parallel.column(c).dtype(),
            "dtype of column {c}: {sql}"
        );
        for r in 0..serial.num_rows() {
            let (a, b) = (serial.value(r, c), parallel.value(r, c));
            match (&a, &b) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "float bits at ({r}, {c}): {x} vs {y}: {sql}"
                ),
                _ => assert_eq!(a, b, "value at ({r}, {c}): {sql}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_and_serial_execution_bit_identical(
        rows in proptest::collection::vec(
            (0i64..5, proptest::option::of(-50i64..50), 0i64..8),
            1..120,
        ),
        partition_rows in 1usize..24,
    ) {
        let wh = load(&rows, partition_rows);
        for sql in QUERIES {
            wh.set_parallelism(1);
            let serial = wh.execute_sql(sql).unwrap().batch;
            wh.set_parallelism(4);
            let parallel = wh.execute_sql(sql).unwrap().batch;
            assert_bit_identical(&serial, &parallel, sql);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Skewed layouts are the scheduler's worst case: one ~90% partition,
    /// empty partitions, and 1-row morsel tails. Serial static execution
    /// (`parallelism = 1`, `morsel_rows = None`) is the oracle; every
    /// combination of parallelism {1, 4, 16} × morsel setting {static,
    /// 3-row morsels, default} must reproduce it bit-for-bit. The 3-row
    /// morsel size forces the big partition through multi-morsel
    /// regrouping while the tails exercise single-row morsels.
    #[test]
    fn skewed_partitions_bit_identical(
        rows in proptest::collection::vec(
            (0i64..5, proptest::option::of(-50i64..50), 0i64..8),
            30..140,
        ),
        tails in 1usize..6,
    ) {
        let wh = load_skewed(&rows, tails);
        for sql in QUERIES {
            wh.set_parallelism(1);
            wh.set_morsel_rows(None);
            wh.set_memory_budget(None);
            let oracle = wh.execute_sql(sql).unwrap().batch;
            for &parallelism in &[1usize, 4, 16] {
                wh.set_parallelism(parallelism);
                // (morsel size, memory budget): the unbudgeted sweep pins
                // the in-memory morsel paths; the 1-byte run forces every
                // spill-capable sink out of core *while* consuming 3-row
                // morsels, pinning the morselized spilling code.
                for (morsel_rows, budget) in [
                    (None, None),
                    (Some(3), None),
                    (Some(4096), None),
                    (Some(3), Some(1)),
                ] {
                    wh.set_morsel_rows(morsel_rows);
                    wh.set_memory_budget(budget);
                    let got = wh.execute_sql(sql).unwrap().batch;
                    let what = format!("{sql} [p={parallelism} morsel={morsel_rows:?} budget={budget:?}]");
                    assert_bit_identical(&oracle, &got, &what);
                }
                wh.set_memory_budget(None);
            }
        }
    }
}

/// Adaptive per-pipeline morsel sizing (the default config) is a pure
/// scheduling choice: over the skewed layout, every query must match the
/// static serial oracle bit-for-bit at parallelism {1, 4}, and an
/// explicit `set_morsel_rows` must win over adaptivity (sweeping a fixed
/// 3-row size after enabling adaptive mode still matches).
#[test]
fn adaptive_morsel_sizing_bit_identical() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..60).map(|i| (i % 4, Some(i * 7), i % 8)).collect();
    let wh = load_skewed(&rows, 4);
    for sql in QUERIES {
        wh.set_parallelism(1);
        wh.set_morsel_rows(None); // static oracle; also disables adaptive
        let oracle = wh.execute_sql(sql).unwrap().batch;
        for &parallelism in &[1usize, 4] {
            wh.set_parallelism(parallelism);
            wh.set_morsel_rows(Some(sigma_cdw::exec::DEFAULT_MORSEL_ROWS));
            wh.set_adaptive_morsels(true);
            let adaptive = wh.execute_sql(sql).unwrap().batch;
            assert_bit_identical(
                &oracle,
                &adaptive,
                &format!("{sql} [adaptive p={parallelism}]"),
            );
            // Explicit size overrides adaptivity.
            wh.set_morsel_rows(Some(3));
            assert!(!wh.config().adaptive_morsels);
            let fixed = wh.execute_sql(sql).unwrap().batch;
            assert_bit_identical(&oracle, &fixed, &format!("{sql} [fixed-3 p={parallelism}]"));
        }
    }
}

/// Deterministic worst-case layout, checked down to the morsel counters:
/// `[empty, 36-row, empty, 1-row × 4, empty]` under 3-row morsels must
/// split into 19 morsels over 8 partitions (12 for the big partition, one
/// each for the rest) and still match the static serial oracle exactly.
#[test]
fn skewed_layout_morsel_stats_and_equivalence() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..40).map(|i| (i % 4, Some(i), i % 8)).collect();
    let wh = load_skewed(&rows, 4);
    let sql = "SELECT g, COUNT(*) AS c, SUM(v) AS s, AVG(d) AS a FROM t GROUP BY g";
    wh.set_parallelism(1);
    wh.set_morsel_rows(None);
    let oracle = wh.execute_sql(sql).unwrap().batch;

    wh.set_parallelism(4);
    wh.set_morsel_rows(Some(3));
    let result = wh.execute_sql(sql).unwrap();
    assert_bit_identical(&oracle, &result.batch, sql);
    let partial = result
        .operators
        .iter()
        .find(|o| o.op.starts_with("Aggregate[partial]"))
        .unwrap();
    assert_eq!(partial.partitions, 8, "{partial:?}");
    assert_eq!(partial.morsels, 19, "{partial:?}");
    let analyzed = wh.explain_analyze(sql).unwrap();
    assert!(analyzed.contains("morsels=19"), "{analyzed}");

    // The pooled scheduler reports per-query counters: a 4-way morselized
    // aggregate dispatches parallel tasks, and every task is accounted to
    // either an own-queue pop or a steal.
    assert!(analyzed.contains("scheduler: tasks="), "{analyzed}");
    assert!(
        analyzed.contains("local=") && analyzed.contains("steals="),
        "{analyzed}"
    );
    let sched_line = analyzed
        .lines()
        .find(|l| l.starts_with("scheduler:"))
        .unwrap();
    let field = |k: &str| -> usize {
        sched_line
            .split_whitespace()
            .find_map(|t| t.strip_prefix(k))
            .unwrap()
            .parse()
            .unwrap()
    };
    let (tasks, local, steals) = (field("tasks="), field("local="), field("steals="));
    assert!(
        tasks > 0,
        "parallel query dispatched no tasks: {sched_line}"
    );
    assert_eq!(
        local + steals,
        tasks,
        "every task is an own-queue pop or a steal: {sched_line}"
    );
}

/// The newly morselized operators must actually engage the morsel path
/// and say so: under 3-row morsels, LEFT join probes, sort, and window
/// all report nonzero `morsels` in their [`OpStats`] entry and in
/// `explain_analyze` — while matching the static serial oracle exactly.
#[test]
fn long_tail_operators_report_morsels() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..40).map(|i| (i % 4, Some(i), i % 8)).collect();
    let wh = load_skewed(&rows, 4);
    let cases = [
        (
            "Join Left",
            "SELECT t.g, u.lab FROM t LEFT JOIN u ON t.jk = u.k",
        ),
        ("Sort", "SELECT g, v, d FROM t ORDER BY v DESC, g"),
        (
            "Window",
            "SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY v) AS w FROM t",
        ),
    ];
    for (op_prefix, sql) in cases {
        wh.set_parallelism(1);
        wh.set_morsel_rows(None);
        let oracle = wh.execute_sql(sql).unwrap();
        let static_op = oracle
            .operators
            .iter()
            .find(|o| o.op.starts_with(op_prefix))
            .unwrap_or_else(|| panic!("no {op_prefix} op: {:?}", oracle.operators));
        assert_eq!(static_op.morsels, 0, "static path counted morsels: {sql}");

        wh.set_parallelism(4);
        wh.set_morsel_rows(Some(3));
        let result = wh.execute_sql(sql).unwrap();
        assert_bit_identical(&oracle.batch, &result.batch, sql);
        let op = result
            .operators
            .iter()
            .find(|o| o.op.starts_with(op_prefix))
            .unwrap_or_else(|| panic!("no {op_prefix} op: {:?}", result.operators));
        assert!(op.morsels > 0, "morsel path did not engage: {op:?} {sql}");
        let analyzed = wh.explain_analyze(sql).unwrap();
        assert!(analyzed.contains("morsels="), "{analyzed}");
    }
    wh.set_morsel_rows(None);
}

/// The split must actually engage: a grouped aggregate over a partitioned
/// scan plans as Final-over-Partial and reports per-operator stats.
#[test]
fn two_phase_split_visible_in_plan_and_stats() {
    let rows: Vec<(i64, Option<i64>, i64)> = (0..40).map(|i| (i % 4, Some(i), i % 8)).collect();
    let wh = load(&rows, 8); // 5 partitions
    let plan = wh
        .plan_sql("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    let explain = plan.explain();
    assert!(explain.contains("Aggregate[final]"), "{explain}");
    assert!(explain.contains("Aggregate[partial]"), "{explain}");

    wh.set_parallelism(4);
    let result = wh
        .execute_sql("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    assert_eq!(result.batch.num_rows(), 4);
    assert_eq!(result.partitions_scanned, 5);
    let ops: Vec<&str> = result.operators.iter().map(|o| o.op.as_str()).collect();
    assert!(
        ops.iter().any(|o| o.starts_with("Aggregate[final]")),
        "{ops:?}"
    );
    assert!(
        ops.iter().any(|o| o.starts_with("Aggregate[partial]")),
        "{ops:?}"
    );
    let partial = result
        .operators
        .iter()
        .find(|o| o.op.starts_with("Aggregate[partial]"))
        .unwrap();
    // 5 partitions × up to 4 groups each, merged down to 4 final groups.
    assert_eq!(partial.partitions, 5);
    assert!(partial.rows_out >= 4, "{partial:?}");
    let analyzed = wh
        .explain_analyze("SELECT g, SUM(v) AS s FROM t GROUP BY g")
        .unwrap();
    assert!(analyzed.contains("Aggregate[partial]"), "{analyzed}");
    assert!(analyzed.contains("rows_out="), "{analyzed}");
}
