//! The networked Sigma front end: a session-per-client TCP server over
//! the in-process [`SigmaService`].
//!
//! The paper's deployment shape (§2, Figure 2) is a multi-tenant web
//! service: thousands of concurrent workbook sessions share one service
//! tier in front of the customer's warehouse. This crate provides that
//! boundary: a [`TcpListener`] accept loop spawns one thread per client,
//! each running a read-frame → dispatch → write-frame session loop over
//! [`sigma_protocol`] messages.
//!
//! Two properties the session loop guarantees:
//!
//! * **Revocation is immediate.** The session remembers only the bearer
//!   token, never the resolved user; every request re-authenticates
//!   against [`sigma_service::tenancy::Tenancy`] under its linearizable
//!   lock. Revoking a token fails the session's *next* request even if it
//!   authenticated hours ago.
//! * **Backpressure is explicit.** Admission rejections from the workload
//!   manager surface as [`Response::Overloaded`] with a `retry_after`
//!   hint; the session stays healthy and the client decides when to
//!   retry. A session thread never queues unboundedly on behalf of a
//!   tenant whose quota is exhausted.

use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sigma_protocol::{
    ErrorKind, FrameError, Request, Response, WireBatch, WireOutcome, WirePriority,
};
use sigma_service::workload::Priority;
use sigma_service::{QueryRequest, ServedFrom, ServiceError, SigmaService};

pub mod client;

pub use client::{ClientError, QueryReply, RemoteOutcome, SigmaClient};

/// A running server: the accept loop plus its shutdown switch.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<SigmaService>,
    shutdown: Arc<AtomicBool>,
    sessions: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 to let the OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the socket — tests and benches use this to run
    /// the same requests in process and assert bit-identical answers.
    pub fn service(&self) -> &Arc<SigmaService> {
        &self.service
    }

    /// Sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.sessions.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the accept loop. Already-connected
    /// sessions drain on their own threads; their next read fails once
    /// the client hangs up.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` and serve the given service until the handle shuts down.
pub fn serve(service: Arc<SigmaService>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let sessions = Arc::new(AtomicUsize::new(0));
    let accept_thread = {
        let service = service.clone();
        let shutdown = shutdown.clone();
        let sessions = sessions.clone();
        std::thread::Builder::new()
            .name("sigma-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let service = service.clone();
                    let sessions = sessions.clone();
                    sessions.fetch_add(1, Ordering::SeqCst);
                    let _ = std::thread::Builder::new()
                        .name("sigma-session".into())
                        .spawn(move || {
                            // The guard keeps the gauge honest even if the
                            // session loop panics.
                            struct Gauge(Arc<AtomicUsize>);
                            impl Drop for Gauge {
                                fn drop(&mut self) {
                                    self.0.fetch_sub(1, Ordering::SeqCst);
                                }
                            }
                            let _gauge = Gauge(sessions);
                            run_session(&service, stream);
                        });
                }
            })?
    };
    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        sessions,
        accept_thread: Some(accept_thread),
    })
}

/// Per-connection session state: only the *token*, never the resolved
/// user — resolution happens per request so revocation bites immediately.
#[derive(Default)]
struct Session {
    token: Option<String>,
    connection: Option<String>,
}

fn run_session(service: &SigmaService, stream: TcpStream) {
    // Request/response frames are small; Nagle would trade interactive
    // latency for nothing here.
    stream.set_nodelay(true).ok();
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut session = Session::default();
    loop {
        let request = match sigma_protocol::read_request(&mut reader) {
            Ok(r) => r,
            Err(FrameError::Closed) => return,
            Err(e @ (FrameError::Io(_) | FrameError::Truncated)) => {
                // Stream is unusable; a reply could not be delivered.
                let _ = e;
                return;
            }
            Err(e) => {
                // Framing-level rejection (bad magic/version/CRC/length):
                // tell the peer why, then hang up — resynchronizing a
                // corrupt frame stream is not worth the ambiguity.
                let resp = Response::Error {
                    kind: ErrorKind::BadRequest,
                    message: e.to_string(),
                };
                let _ = sigma_protocol::write_response(&mut writer, &resp);
                return;
            }
        };
        let close = matches!(request, Request::CloseSession);
        let response = handle_request(service, &mut session, request);
        if sigma_protocol::write_response(&mut writer, &response).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn handle_request(service: &SigmaService, session: &mut Session, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::CloseSession => Response::Closed,
        Request::Auth { token } => match service.tenancy.authenticate(&token) {
            Ok(user) => {
                session.token = Some(token);
                Response::AuthOk {
                    user_id: user.id,
                    org: user.org,
                    name: user.name,
                    role: format!("{:?}", user.role).to_ascii_lowercase(),
                }
            }
            Err(e) => error_response(e),
        },
        Request::OpenSession { connection } => {
            let Some(token) = session.token.clone() else {
                return not_authenticated();
            };
            match service.check_connection(&token, &connection) {
                Ok(()) => {
                    session.connection = Some(connection.clone());
                    Response::SessionOpened { connection }
                }
                Err(e) => error_response(e),
            }
        }
        Request::QueryElement {
            workbook_json,
            element,
            priority,
            deadline_ms,
        } => {
            let Some(token) = session.token.clone() else {
                return not_authenticated();
            };
            let Some(connection) = session.connection.clone() else {
                return no_session();
            };
            let req = QueryRequest {
                token: &token,
                connection: &connection,
                workbook_json: &workbook_json,
                element: &element,
                priority: match priority {
                    WirePriority::Interactive => Priority::Interactive,
                    WirePriority::Background => Priority::Background,
                },
            };
            let deadline = deadline_ms.map(Duration::from_millis);
            match service.run_query_deadline(&req, deadline) {
                Ok(outcome) => Response::Query(WireOutcome {
                    batch: WireBatch::from_batch(&outcome.batch),
                    query_id: outcome.query_id,
                    sql: outcome.sql,
                    served_from: match outcome.served_from {
                        ServedFrom::Warehouse => "warehouse",
                        ServedFrom::QueryDirectory => "query_directory",
                        ServedFrom::StageReuse => "stage_reuse",
                    }
                    .to_string(),
                    queue_wait_us: outcome.queue_wait.as_micros() as u64,
                    stage_hits: outcome.stage_hits as u64,
                    stages_executed: outcome.stages_executed as u64,
                    rows_scanned: outcome.rows_scanned as u64,
                }),
                Err(e) => error_response(e),
            }
        }
        Request::Explain {
            workbook_json,
            element,
        } => {
            let Some(token) = session.token.clone() else {
                return not_authenticated();
            };
            let Some(connection) = session.connection.clone() else {
                return no_session();
            };
            let workbook = match sigma_core::Workbook::from_json(&workbook_json) {
                Ok(wb) => wb,
                Err(e) => {
                    return Response::Error {
                        kind: ErrorKind::BadRequest,
                        message: e.to_string(),
                    }
                }
            };
            match service.compile_with_token(&token, &connection, &workbook, &element) {
                Ok(compiled) => Response::Explained { sql: compiled.sql },
                Err(e) => error_response(e),
            }
        }
        Request::UploadCsv { table, csv } => {
            let Some(token) = session.token.clone() else {
                return not_authenticated();
            };
            let Some(connection) = session.connection.clone() else {
                return no_session();
            };
            match service.upload_csv(&token, &connection, &table, &csv) {
                Ok(rows) => Response::Uploaded { rows: rows as u64 },
                Err(e) => error_response(e),
            }
        }
    }
}

fn not_authenticated() -> Response {
    Response::Error {
        kind: ErrorKind::Unauthenticated,
        message: "authenticate first (send Auth)".into(),
    }
}

fn no_session() -> Response {
    Response::Error {
        kind: ErrorKind::BadRequest,
        message: "open a session first (send OpenSession)".into(),
    }
}

fn error_response(e: ServiceError) -> Response {
    match e {
        ServiceError::Overloaded { retry_after } => Response::Overloaded {
            retry_after_ms: retry_after.as_millis().max(1) as u64,
        },
        ServiceError::DeadlineExceeded { waited } => Response::Error {
            kind: ErrorKind::DeadlineExceeded,
            message: format!("deadline exceeded after waiting {waited:?}"),
        },
        ServiceError::Unauthenticated => Response::Error {
            kind: ErrorKind::Unauthenticated,
            message: "unauthenticated".into(),
        },
        ServiceError::Forbidden(m) => Response::Error {
            kind: ErrorKind::Forbidden,
            message: m,
        },
        ServiceError::NotFound(m) => Response::Error {
            kind: ErrorKind::NotFound,
            message: m,
        },
        ServiceError::BadRequest(m) => Response::Error {
            kind: ErrorKind::BadRequest,
            message: m,
        },
        ServiceError::Core(m) | ServiceError::Warehouse(m) => Response::Error {
            kind: ErrorKind::Internal,
            message: m,
        },
    }
}
