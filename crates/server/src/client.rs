//! Blocking client for the Sigma wire protocol.
//!
//! One [`SigmaClient`] is one session: a TCP stream plus the
//! auth → open-session handshake state. Methods map one-to-one onto
//! [`Request`] variants and block until the server's reply frame arrives.
//!
//! Backpressure is part of the API, not an error to swallow:
//! [`SigmaClient::query_element`] returns [`QueryReply`], forcing callers
//! to decide what a shed request means for them (retry after the hint,
//! drop the keystroke, surface a spinner). Genuine failures — transport
//! errors, auth rejections — stay in [`ClientError`].

use std::io::BufWriter;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sigma_protocol::{ErrorKind, FrameError, Request, Response, WirePriority};
use sigma_value::Batch;

/// Client-side failure: transport trouble, a server-reported error, or a
/// reply that does not fit the request that was sent.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Frame(FrameError),
    /// The server answered with an error response.
    Server {
        kind: ErrorKind,
        message: String,
    },
    /// The server answered with a response of the wrong shape.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Server { kind, message } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A query answer with the wire batch already decoded.
#[derive(Debug, Clone)]
pub struct RemoteOutcome {
    pub batch: Batch,
    pub query_id: String,
    pub sql: String,
    /// `"warehouse"`, `"query_directory"`, or `"stage_reuse"`.
    pub served_from: String,
    pub queue_wait: Duration,
    pub stage_hits: u64,
    pub stages_executed: u64,
    pub rows_scanned: u64,
}

/// Outcome of a query submission: an answer, or explicit backpressure.
#[derive(Debug)]
pub enum QueryReply {
    Ok(RemoteOutcome),
    /// The tenant's admission queue was full; retry no sooner than the
    /// hint.
    Overloaded {
        retry_after: Duration,
    },
}

/// Identity echoed back by a successful [`SigmaClient::auth`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionUser {
    pub user_id: u64,
    pub org: u64,
    pub name: String,
    pub role: String,
}

/// One blocking protocol session over TCP.
pub struct SigmaClient {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

impl SigmaClient {
    /// Connect to a server (no handshake yet — call [`auth`](Self::auth)
    /// next).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SigmaClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        Ok(SigmaClient {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        sigma_protocol::write_request(&mut self.writer, request)?;
        Ok(sigma_protocol::read_response(&mut self.reader)?)
    }

    /// Present a bearer token. The server re-validates it on *every*
    /// subsequent request, so a mid-session revocation fails the next
    /// call even after a successful `auth`.
    pub fn auth(&mut self, token: &str) -> Result<SessionUser, ClientError> {
        match self.call(&Request::Auth {
            token: token.to_string(),
        })? {
            Response::AuthOk {
                user_id,
                org,
                name,
                role,
            } => Ok(SessionUser {
                user_id,
                org,
                name,
                role,
            }),
            other => Err(unexpected("AuthOk", other)),
        }
    }

    /// Bind this session to a warehouse connection.
    pub fn open_session(&mut self, connection: &str) -> Result<(), ClientError> {
        match self.call(&Request::OpenSession {
            connection: connection.to_string(),
        })? {
            Response::SessionOpened { .. } => Ok(()),
            other => Err(unexpected("SessionOpened", other)),
        }
    }

    /// Run one element query. Admission shedding comes back as
    /// [`QueryReply::Overloaded`]; every other server-side failure is a
    /// [`ClientError::Server`].
    pub fn query_element(
        &mut self,
        workbook_json: &str,
        element: &str,
        priority: WirePriority,
        deadline: Option<Duration>,
    ) -> Result<QueryReply, ClientError> {
        match self.call(&Request::QueryElement {
            workbook_json: workbook_json.to_string(),
            element: element.to_string(),
            priority,
            deadline_ms: deadline.map(|d| d.as_millis().max(1) as u64),
        })? {
            Response::Query(outcome) => {
                let batch = outcome
                    .batch
                    .to_batch()
                    .map_err(|e| ClientError::UnexpectedResponse(format!("bad wire batch: {e}")))?;
                Ok(QueryReply::Ok(RemoteOutcome {
                    batch,
                    query_id: outcome.query_id,
                    sql: outcome.sql,
                    served_from: outcome.served_from,
                    queue_wait: Duration::from_micros(outcome.queue_wait_us),
                    stage_hits: outcome.stage_hits,
                    stages_executed: outcome.stages_executed,
                    rows_scanned: outcome.rows_scanned,
                }))
            }
            Response::Overloaded { retry_after_ms } => Ok(QueryReply::Overloaded {
                retry_after: Duration::from_millis(retry_after_ms),
            }),
            other => Err(unexpected("Query", other)),
        }
    }

    /// Compile an element and return its SQL without executing it.
    pub fn explain(&mut self, workbook_json: &str, element: &str) -> Result<String, ClientError> {
        match self.call(&Request::Explain {
            workbook_json: workbook_json.to_string(),
            element: element.to_string(),
        })? {
            Response::Explained { sql } => Ok(sql),
            other => Err(unexpected("Explained", other)),
        }
    }

    /// Upload a CSV as a warehouse table; returns the row count.
    pub fn upload_csv(&mut self, table: &str, csv: &str) -> Result<u64, ClientError> {
        match self.call(&Request::UploadCsv {
            table: table.to_string(),
            csv: csv.to_string(),
        })? {
            Response::Uploaded { rows } => Ok(rows),
            other => Err(unexpected("Uploaded", other)),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", other)),
        }
    }

    /// Graceful close: the server acknowledges and ends the session.
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.call(&Request::CloseSession)? {
            Response::Closed => Ok(()),
            other => Err(unexpected("Closed", other)),
        }
    }
}

fn unexpected(wanted: &str, got: Response) -> ClientError {
    if let Response::Error { kind, message } = got {
        return ClientError::Server { kind, message };
    }
    ClientError::UnexpectedResponse(format!("wanted {wanted}, got {got:?}"))
}
