//! Thread-count probe for the shared execution pool, alone in its own
//! binary so /proc/self/task arithmetic cannot race other tests'
//! threads.
//!
//! Many concurrent sessions run aggressively parallel queries against
//! one server while the admission policy pins the process-wide execution
//! budget to two worker threads. The pin: after pool warmup, the process
//! spawns **no per-query threads** — total OS threads never rise beyond
//! the baseline plus the execution budget, and the pool's own workers
//! never exceed that budget. Under the old per-operator scoped-thread
//! dispatch this probe saw sessions × parallelism fresh threads per
//! query wave.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::Workbook;
use sigma_protocol::WirePriority;
use sigma_server::{serve, QueryReply, SigmaClient};
use sigma_service::AdmissionConfig;
use sigma_value::Value;
use sigma_workbook::demo::{demo_service, demo_warehouse};

const SESSIONS: usize = 6;
const EXEC_THREADS: usize = 2;

fn flights_workbook(min_delay: f64) -> Workbook {
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Float(min_delay)),
            max: None,
        },
    });
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    let mut wb = Workbook::new(Some("cap"));
    wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
    wb
}

/// Snapshot of live threads: (total count, count named `cdw-worker*`).
/// `None` off Linux (the /proc probe is the whole point of this test, so
/// it simply passes elsewhere).
fn thread_census() -> Option<(usize, usize)> {
    let mut total = 0;
    let mut workers = 0;
    for entry in std::fs::read_dir("/proc/self/task").ok()? {
        let Ok(entry) = entry else { continue };
        total += 1;
        let comm = std::fs::read_to_string(entry.path().join("comm")).unwrap_or_default();
        if comm.trim_end().starts_with("cdw-worker") {
            workers += 1;
        }
    }
    Some((total, workers))
}

#[test]
fn concurrent_sessions_share_one_capped_worker_pool() {
    let warehouse = demo_warehouse(4_000);
    // Each query asks for 8-way parallelism; the shared pool budget must
    // clamp what they collectively get.
    warehouse.set_parallelism(8);
    let (service, token) = demo_service(warehouse);
    let handle = serve(service, "127.0.0.1:0").expect("bind");
    assert!(handle.service().set_connection_admission(
        "primary",
        AdmissionConfig {
            max_concurrent: SESSIONS,
            tenant_quota: SESSIONS,
            queue_bound: 64,
            default_deadline: None,
            exec_threads: EXEC_THREADS,
        },
    ));

    let addr = handle.addr();
    let warmed = Arc::new(Barrier::new(SESSIONS + 1));
    let wave = Arc::new(Barrier::new(SESSIONS + 1));
    let done = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..SESSIONS)
        .map(|c| {
            let token = token.clone();
            let warmed = warmed.clone();
            let wave = wave.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut client = SigmaClient::connect(addr).expect("connect");
                client.auth(&token).expect("auth");
                client.open_session("primary").expect("open session");
                // Warmup: one query per session spins the pool up to its
                // budget before the baseline census.
                let json = flights_workbook(c as f64).to_json().unwrap();
                let QueryReply::Ok(_) = client
                    .query_element(&json, "Delays", WirePriority::Interactive, None)
                    .expect("warmup query")
                else {
                    panic!("warmup shed under an {SESSIONS}-slot limit");
                };
                warmed.wait();
                wave.wait();
                for rep in 0..5 {
                    // Unique threshold per request: each compiles to a
                    // distinct query, so every one executes for real.
                    let min = (c * 100 + rep) as f64 / 7.0;
                    let json = flights_workbook(min).to_json().unwrap();
                    let QueryReply::Ok(outcome) = client
                        .query_element(&json, "Delays", WirePriority::Interactive, None)
                        .expect("wave query")
                    else {
                        panic!("wave query shed under an {SESSIONS}-slot limit");
                    };
                    assert!(outcome.batch.num_rows() > 0);
                }
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();

    warmed.wait();
    let baseline = thread_census();
    wave.wait();

    // Sample the census while the wave runs; the peak is what per-query
    // spawning would inflate.
    let mut peak_total = 0usize;
    let mut peak_workers = 0usize;
    while done.load(Ordering::SeqCst) < SESSIONS {
        if let Some((total, workers)) = thread_census() {
            peak_total = peak_total.max(total);
            peak_workers = peak_workers.max(workers);
        }
        std::thread::yield_now();
    }
    for t in threads {
        t.join().expect("client thread");
    }

    if let Some((baseline_total, baseline_workers)) = baseline {
        assert!(
            peak_workers <= EXEC_THREADS,
            "pool grew past its {EXEC_THREADS}-thread budget: {peak_workers} workers"
        );
        // The only threads that may appear after warmup are pool workers
        // the warmup didn't force into existence yet.
        let allowed = baseline_total + EXEC_THREADS.saturating_sub(baseline_workers);
        assert!(
            peak_total <= allowed,
            "threads grew from {baseline_total} to {peak_total} during the query wave \
             (budget {EXEC_THREADS}, {baseline_workers} pool workers at baseline): \
             something spawns per-query threads"
        );
    }
    handle.shutdown();
}
