//! End-to-end tests over a real TCP socket: client ↔ server ↔ service.
//!
//! The pins that matter:
//!
//! 1. **Bit-identical transport** — a query answered over the wire is
//!    byte-for-byte the batch the in-process service returns.
//! 2. **Immediate revocation** — revoking a token fails the *next*
//!    request of an already-authenticated, already-connected session.
//! 3. **Explicit shedding** — under admission pressure the server answers
//!    `Overloaded` with a retry hint instead of queueing without bound.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec};
use sigma_core::Workbook;
use sigma_protocol::{ErrorKind, WirePriority};
use sigma_server::{serve, ClientError, QueryReply, SigmaClient};
use sigma_service::workload::Priority;
use sigma_service::{AdmissionConfig, QueryRequest};
use sigma_value::Value;
use sigma_workbook::demo::{demo_service, demo_warehouse};

/// A grouped flights workbook whose fingerprint varies with `min_delay`,
/// so distinct thresholds compile to distinct queries (no free rides from
/// the query directory).
fn flights_workbook(min_delay: f64) -> Workbook {
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Float(min_delay)),
            max: None,
        },
    });
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    let mut wb = Workbook::new(Some("net"));
    wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();
    wb
}

fn start_server(rows: usize) -> (sigma_server::ServerHandle, String) {
    let (service, token) = demo_service(demo_warehouse(rows));
    let handle = serve(service, "127.0.0.1:0").expect("bind");
    (handle, token)
}

#[test]
fn networked_query_is_bit_identical_to_in_process() {
    let (handle, token) = start_server(2_000);
    let addr = handle.addr();

    let mut client = SigmaClient::connect(addr).expect("connect");
    let user = client.auth(&token).expect("auth");
    assert_eq!(user.name, "analyst");
    client.open_session("primary").expect("open session");

    let wb = flights_workbook(5.0);
    let json = wb.to_json().unwrap();
    let QueryReply::Ok(remote) = client
        .query_element(&json, "Delays", WirePriority::Interactive, None)
        .expect("query")
    else {
        panic!("unexpected shed in an idle server");
    };

    // The same request in process, against the same service instance.
    let local = handle
        .service()
        .run_query(&QueryRequest {
            token: &token,
            connection: "primary",
            workbook_json: &json,
            element: "Delays",
            priority: Priority::Interactive,
        })
        .expect("in-process query");

    assert_eq!(
        sigma_value::codec::encode_batch(&remote.batch),
        sigma_value::codec::encode_batch(&local.batch),
        "networked answer must be byte-identical to the in-process answer"
    );
    assert_eq!(remote.sql, local.sql);
    assert!(remote.batch.num_rows() > 0);

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn explain_upload_and_ping_roundtrip() {
    let (handle, token) = start_server(500);
    let mut client = SigmaClient::connect(handle.addr()).expect("connect");
    client.auth(&token).expect("auth");
    client.open_session("primary").expect("open session");

    client.ping().expect("ping");

    let wb = flights_workbook(0.0);
    let sql = client
        .explain(&wb.to_json().unwrap(), "Delays")
        .expect("explain");
    assert!(sql.to_ascii_lowercase().contains("select"));

    let rows = client
        .upload_csv("regions", "region,code\nWest,W\nEast,E\n")
        .expect("upload");
    assert_eq!(rows, 2);
    // The uploaded table is immediately queryable through the service.
    assert!(handle.service().check_connection(&token, "primary").is_ok());

    client.close().expect("close");
}

#[test]
fn requests_before_auth_or_session_are_rejected() {
    let (handle, token) = start_server(200);
    let mut client = SigmaClient::connect(handle.addr()).expect("connect");

    // No auth yet: everything but ping/auth is Unauthenticated.
    let err = client.open_session("primary").unwrap_err();
    let ClientError::Server { kind, .. } = err else {
        panic!("want server error, got {err:?}");
    };
    assert_eq!(kind, ErrorKind::Unauthenticated);

    // Authenticated but no session: queries are a clean BadRequest.
    client.auth(&token).expect("auth");
    let wb = flights_workbook(1.0).to_json().unwrap();
    let err = client
        .query_element(&wb, "Delays", WirePriority::Interactive, None)
        .unwrap_err();
    let ClientError::Server { kind, .. } = err else {
        panic!("want server error, got {err:?}");
    };
    assert_eq!(kind, ErrorKind::BadRequest);

    // A bad token is rejected at auth time.
    let err = client.auth("not-a-token").unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::Unauthenticated,
            ..
        }
    ));
}

/// Satellite 2's server-tier half: a session that authenticated and ran
/// queries successfully loses access the moment its token is revoked —
/// no cached identity keeps it alive.
#[test]
fn revocation_takes_effect_mid_session() {
    let (handle, token) = start_server(500);
    let mut client = SigmaClient::connect(handle.addr()).expect("connect");
    client.auth(&token).expect("auth");
    client.open_session("primary").expect("open session");

    let wb = flights_workbook(2.0).to_json().unwrap();
    assert!(matches!(
        client
            .query_element(&wb, "Delays", WirePriority::Interactive, None)
            .expect("pre-revocation query"),
        QueryReply::Ok(_)
    ));

    assert!(handle.service().tenancy.revoke_token(&token));

    // Same session, same socket, next request: dead immediately.
    let err = client
        .query_element(&wb, "Delays", WirePriority::Interactive, None)
        .unwrap_err();
    assert!(
        matches!(
            err,
            ClientError::Server {
                kind: ErrorKind::Unauthenticated,
                ..
            }
        ),
        "revoked session must fail its next request, got {err:?}"
    );
    // Explain is gated the same way.
    let err = client.explain(&wb, "Delays").unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            kind: ErrorKind::Unauthenticated,
            ..
        }
    ));
}

/// Under admission pressure the server sheds with `Overloaded` + a retry
/// hint; admitted requests still complete. Tight quota (1 slot, 1 queued)
/// with 6 concurrent sessions issuing distinct queries guarantees
/// overlap far beyond capacity.
#[test]
fn overload_sheds_with_retry_hint_instead_of_queueing() {
    let (handle, token) = start_server(4_000);
    assert!(handle.service().set_connection_admission(
        "primary",
        AdmissionConfig {
            max_concurrent: 1,
            tenant_quota: 1,
            queue_bound: 1,
            default_deadline: None,
            exec_threads: 0,
        },
    ));

    let addr = handle.addr();
    let shed = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(6));
    let threads: Vec<_> = (0..6)
        .map(|c| {
            let token = token.clone();
            let shed = shed.clone();
            let ok = ok.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = SigmaClient::connect(addr).expect("connect");
                client.auth(&token).expect("auth");
                client.open_session("primary").expect("open session");
                barrier.wait();
                for rep in 0..10 {
                    // Unique threshold per request: every query compiles
                    // fresh, so admission control sees real work.
                    let min = (c * 100 + rep) as f64 / 10.0;
                    let json = flights_workbook(min).to_json().unwrap();
                    match client
                        .query_element(&json, "Delays", WirePriority::Interactive, None)
                        .expect("transport stays healthy under shed")
                    {
                        QueryReply::Ok(outcome) => {
                            assert!(outcome.batch.num_rows() > 0);
                            ok.fetch_add(1, Ordering::SeqCst);
                        }
                        QueryReply::Overloaded { retry_after } => {
                            assert!(retry_after >= Duration::from_millis(1));
                            assert!(retry_after <= Duration::from_secs(5));
                            shed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let shed = shed.load(Ordering::SeqCst);
    let ok = ok.load(Ordering::SeqCst);
    assert!(ok > 0, "some requests must be admitted");
    assert!(
        shed > 0,
        "6 sessions against a 1-slot/1-queued connection must shed (ok={ok})"
    );
    // The shed counter made it into the service-side stats too.
    let stats = handle.service().workload_stats("primary").expect("stats");
    assert_eq!(stats.shed, shed as u64);
    assert!(stats.peak_waiting <= 1, "queue bound was never exceeded");
}

/// Sessions are independent: closing one (or it crashing mid-frame) does
/// not disturb another, and the active-session gauge tracks both.
#[test]
fn sessions_are_isolated() {
    let (handle, token) = start_server(200);
    let addr = handle.addr();

    let mut a = SigmaClient::connect(addr).expect("connect a");
    let mut b = SigmaClient::connect(addr).expect("connect b");
    a.auth(&token).expect("auth a");
    b.auth(&token).expect("auth b");
    a.open_session("primary").unwrap();
    b.open_session("primary").unwrap();

    // Kill A abruptly (drop without CloseSession). B keeps working.
    drop(a);
    b.ping().expect("b outlives a's disconnect");
    let wb = flights_workbook(3.0).to_json().unwrap();
    assert!(matches!(
        b.query_element(&wb, "Delays", WirePriority::Interactive, None)
            .expect("query on b"),
        QueryReply::Ok(_)
    ));
    b.close().expect("close b");

    // The gauge drains once both sockets are gone.
    for _ in 0..100 {
        if handle.active_sessions() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(handle.active_sessions(), 0);
}
