//! Request/response messages for the Sigma session protocol.
//!
//! Messages are serde structures printed as JSON inside a CRC-checked
//! frame (see [`crate::frame`]). Result batches cross the wire through
//! [`WireBatch`] — the **bit-exact** `sigma_value::codec` binary encoding,
//! hex-armored so it embeds in JSON — which is what makes the networked
//! path byte-identical to an in-process `SigmaService` call: the client
//! decodes exactly the bytes the engine produced, floats, null slots,
//! validity bitmaps and all.
//!
//! Session lifecycle:
//!
//! ```text
//! connect → Auth{token} → OpenSession{connection}
//!         → (QueryElement | Explain | UploadCsv | Ping)*
//!         → CloseSession → disconnect
//! ```
//!
//! Authentication is re-checked server-side on **every** request (the
//! session only remembers the token, never the resolved user), so a
//! revoked token fails its next request even on a connection that
//! authenticated long ago.

use serde::{Deserialize, Serialize};
use sigma_value::{codec, Batch};

use crate::frame::{self, FrameError};

/// Request priority class on the wire (mirrors the service's
/// `workload::Priority` without depending on the service crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WirePriority {
    Background,
    Interactive,
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Present a bearer token. Must precede any other request.
    Auth { token: String },
    /// Bind the session to a warehouse connection by name.
    OpenSession { connection: String },
    /// Run one element query; the workbook state ships as JSON exactly as
    /// the in-process API takes it. `deadline_ms` bounds each admission
    /// wait server-side; `None` leaves it to the server's default.
    QueryElement {
        workbook_json: String,
        element: String,
        priority: WirePriority,
        deadline_ms: Option<u64>,
    },
    /// Compile only: return the SQL the element would run.
    Explain {
        workbook_json: String,
        element: String,
    },
    /// Marshal a CSV into the warehouse as a table (§3.4 ad-hoc data).
    UploadCsv { table: String, csv: String },
    /// Liveness probe.
    Ping,
    /// Orderly end of session; the server replies `Closed` and hangs up.
    CloseSession,
}

/// Machine-readable error class, so clients can branch without parsing
/// message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    Unauthenticated,
    Forbidden,
    NotFound,
    BadRequest,
    DeadlineExceeded,
    Internal,
}

/// A query answer on the wire: the in-process `QueryOutcome` observables
/// plus the bit-exact result batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOutcome {
    pub batch: WireBatch,
    pub query_id: String,
    pub sql: String,
    /// "warehouse" | "query_directory" | "stage_reuse".
    pub served_from: String,
    pub queue_wait_us: u64,
    pub stage_hits: u64,
    pub stages_executed: u64,
    pub rows_scanned: u64,
}

/// One server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Token accepted; echoes the resolved identity.
    AuthOk {
        user_id: u64,
        org: u64,
        name: String,
        role: String,
    },
    SessionOpened {
        connection: String,
    },
    Query(WireOutcome),
    Explained {
        sql: String,
    },
    Uploaded {
        rows: u64,
    },
    Pong,
    Closed,
    /// Admission control shed the request; retry after the hinted
    /// backoff. Deliberately distinct from `Error` so replay harnesses
    /// and clients treat backpressure as flow control, not failure.
    Overloaded {
        retry_after_ms: u64,
    },
    Error {
        kind: ErrorKind,
        message: String,
    },
}

/// A batch as hex-armored `sigma_value::codec` bytes. The codec is the
/// same bit-exact encoding the spill files use, so
/// `decode(encode(batch))` reproduces the batch byte-for-byte — NaN
/// payloads, ±0.0, null-slot defaults and validity bitmaps included.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireBatch {
    pub hex: String,
}

impl WireBatch {
    pub fn from_batch(batch: &Batch) -> WireBatch {
        let bytes = codec::encode_batch(batch);
        let mut hex = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            use std::fmt::Write;
            write!(hex, "{b:02x}").expect("writing to String cannot fail");
        }
        WireBatch { hex }
    }

    pub fn to_batch(&self) -> Result<Batch, FrameError> {
        let s = self.hex.as_bytes();
        if !s.len().is_multiple_of(2) {
            return Err(FrameError::Io("odd-length batch hex".into()));
        }
        let nibble = |c: u8| -> Result<u8, FrameError> {
            match c {
                b'0'..=b'9' => Ok(c - b'0'),
                b'a'..=b'f' => Ok(c - b'a' + 10),
                b'A'..=b'F' => Ok(c - b'A' + 10),
                _ => Err(FrameError::Io(format!("bad hex byte {c:#x}"))),
            }
        };
        let mut bytes = Vec::with_capacity(s.len() / 2);
        for pair in s.chunks_exact(2) {
            bytes.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
        }
        codec::decode_batch(&bytes).map_err(|e| FrameError::Io(format!("batch decode: {e}")))
    }
}

fn encode_message<T: Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    serde_json::to_string(msg)
        .map(String::into_bytes)
        .map_err(|e| FrameError::Io(format!("encode: {e}")))
}

fn decode_message<T: Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Io(format!("payload not utf-8: {e}")))?;
    let value = serde_json::from_str(text).map_err(|e| FrameError::Io(format!("parse: {e}")))?;
    serde_json::from_value(&value).map_err(|e| FrameError::Io(format!("decode: {e}")))
}

/// Encode a request into a complete frame.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, FrameError> {
    encode_message(req).and_then(|p| frame::encode_frame(&p))
}

/// Decode a request from a frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    decode_message(payload)
}

/// Encode a response into a complete frame.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, FrameError> {
    encode_message(resp).and_then(|p| frame::encode_frame(&p))
}

/// Decode a response from a frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    decode_message(payload)
}

/// Write a request to a stream as one frame.
pub fn write_request<W: std::io::Write>(w: &mut W, req: &Request) -> Result<(), FrameError> {
    encode_message(req).and_then(|p| frame::write_frame(w, &p))
}

/// Read one request frame from a stream.
pub fn read_request<R: std::io::Read>(r: &mut R) -> Result<Request, FrameError> {
    frame::read_frame(r).and_then(|p| decode_request(&p))
}

/// Write a response to a stream as one frame.
pub fn write_response<W: std::io::Write>(w: &mut W, resp: &Response) -> Result<(), FrameError> {
    encode_message(resp).and_then(|p| frame::write_frame(w, &p))
}

/// Read one response frame from a stream.
pub fn read_response<R: std::io::Read>(r: &mut R) -> Result<Response, FrameError> {
    frame::read_frame(r).and_then(|p| decode_response(&p))
}
