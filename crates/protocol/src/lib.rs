//! The Sigma wire protocol: how browsers talk to the networked service.
//!
//! Two layers:
//!
//! * [`frame`] — length-prefixed, CRC-32-checked, versioned envelopes over
//!   any `Read`/`Write` stream. A corrupt, truncated, oversized, or
//!   wrong-version frame is a clean [`FrameError`], never a panic or a
//!   runaway allocation.
//! * [`message`] — serde-encoded [`Request`]/[`Response`] payloads
//!   covering the session lifecycle (auth → open session → query/upload/
//!   explain → close). Result batches travel as the bit-exact
//!   `sigma_value::codec` encoding, so a networked query answer is
//!   byte-identical to the same query answered in process.
//!
//! This crate is deliberately transport- and service-agnostic: it depends
//! only on `sigma-value` and the serde shims, so clients can speak the
//! protocol without linking the engine.

pub mod frame;
pub mod message;

pub use frame::{
    crc32, encode_frame, read_frame, write_frame, FrameError, HEADER_BYTES, MAGIC, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use message::{
    decode_request, decode_response, encode_request, encode_response, read_request, read_response,
    write_request, write_response, ErrorKind, Request, Response, WireBatch, WireOutcome,
    WirePriority,
};
