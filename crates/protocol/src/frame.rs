//! The frame layer: length-prefixed, CRC-checked, versioned envelopes.
//!
//! Every message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic    b"SGWP"
//! 4       2     version  u16 LE (PROTOCOL_VERSION)
//! 6       2     reserved (zero; room for flags/compression)
//! 8       4     length   u32 LE, payload bytes
//! 12      4     crc32    u32 LE, CRC-32/IEEE of the payload
//! 16      n     payload
//! ```
//!
//! The design mirrors the spill codec in `sigma_cdw::storage` (length
//! prefix bounds every allocation before it happens) and adds what a
//! network boundary needs on top of a trusted local disk: a magic number
//! so a stray connection fails fast, a version so old clients get a clean
//! [`FrameError::UnsupportedVersion`] instead of a parse panic, and a CRC
//! so corruption is detected before the payload reaches serde.

use std::io::{Read, Write};

/// Frame magic: "SiGma Wire Protocol".
pub const MAGIC: [u8; 4] = *b"SGWP";

/// Current protocol version. Bump on any incompatible message change.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on payload size (64 MiB): a corrupt or hostile length prefix
/// must not size an arbitrary allocation.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Frame header size in bytes.
pub const HEADER_BYTES: usize = 16;

/// Everything that can go wrong at the frame layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying stream failed (includes clean EOF between frames).
    Io(String),
    /// The peer closed the connection cleanly before a frame started.
    Closed,
    /// The stream ended mid-frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a protocol version we do not.
    UnsupportedVersion(u16),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The payload arrived but its CRC does not match.
    Corrupt { expected: u32, actual: u32 },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(m) => write!(f, "frame io: {m}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (ours: {PROTOCOL_VERSION})"
                )
            }
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "frame of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
                )
            }
            FrameError::Corrupt { expected, actual } => write!(
                f,
                "frame payload corrupt: crc {actual:08x}, header says {expected:08x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32/IEEE (the polynomial used by zip, PNG, and Ethernet), bytewise
/// table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Serialize one payload into a self-contained frame.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.len() > MAX_FRAME_BYTES as usize {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    let frame = encode_frame(payload)?;
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

/// Read one frame's payload from a stream, validating magic, version,
/// length, and CRC. A clean EOF *before* any header byte reads as
/// [`FrameError::Closed`]; an EOF mid-frame is [`FrameError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut filled = 0;
    while filled < HEADER_BYTES {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    decode_header(&header).and_then(|len| {
        let mut payload = vec![0u8; len as usize];
        read_exact(r, &mut payload)?;
        let expected = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        let actual = crc32(&payload);
        if actual != expected {
            return Err(FrameError::Corrupt { expected, actual });
        }
        Ok(payload)
    })
}

/// Validate a header and return the payload length it promises.
fn decode_header(header: &[u8; HEADER_BYTES]) -> Result<u32, FrameError> {
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic(
            header[..4].try_into().expect("4 bytes"),
        ));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge(len));
    }
    Ok(len)
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_round_trip() {
        let payload = b"hello workbook".to_vec();
        let frame = encode_frame(&payload).unwrap();
        assert_eq!(frame.len(), HEADER_BYTES + payload.len());
        let mut cursor = std::io::Cursor::new(frame);
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        // Stream exhausted: the next read reports a clean close.
        assert_eq!(read_frame(&mut cursor).unwrap_err(), FrameError::Closed);
    }

    #[test]
    fn two_frames_back_to_back() {
        let mut stream = encode_frame(b"first").unwrap();
        stream.extend(encode_frame(b"second").unwrap());
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"second");
    }
}
