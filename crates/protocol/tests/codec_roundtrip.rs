//! Protocol codec pins:
//!
//! 1. **Roundtrip**: `decode(encode(m)) == m` for arbitrary requests and
//!    responses, including batches with adversarial floats and non-ASCII
//!    text (proptest over a seeded generator).
//! 2. **Rejection**: truncated frames, corrupt payloads, bad magic, and
//!    oversized length prefixes are clean errors, never panics or huge
//!    allocations.
//! 3. **Versioning**: a frame stamped with an unknown version decodes to
//!    [`FrameError::UnsupportedVersion`] without touching the payload.

use std::sync::Arc;

use proptest::prelude::*;
use sigma_protocol::{
    decode_request, decode_response, encode_request, encode_response, frame, read_frame, ErrorKind,
    FrameError, Request, Response, WireBatch, WireOutcome, WirePriority,
};
use sigma_value::{Batch, ColumnBuilder, DataType, Field, Schema, Value};

/// Tiny deterministic generator: one u64 seed yields a full message.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn string(&mut self) -> String {
        const POOL: &[&str] = &[
            "",
            "flights",
            "Dep Delay",
            "naïve—台北",
            "with \"quotes\" and \\ slashes",
            "line\nbreak\ttab",
            "tok-1-42",
        ];
        POOL[self.pick(POOL.len() as u64) as usize].to_string()
    }
}

/// Adversarial float pool: values most likely to break a codec that
/// routes through text.
const FLOATS: &[f64] = &[
    0.0,
    -0.0,
    1.5,
    -1.0e300,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::MIN_POSITIVE,
    f64::NAN,
];

fn build_batch(rng: &mut Lcg) -> Batch {
    let cols = rng.pick(4) as usize;
    let rows = rng.pick(24) as usize;
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for c in 0..cols {
        let dtype = match rng.pick(4) {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            _ => DataType::Bool,
        };
        fields.push(Field::new(format!("c{c}"), dtype));
        let mut b = ColumnBuilder::new(dtype, rows);
        for _ in 0..rows {
            if rng.pick(5) == 0 {
                b.push(Value::Null).unwrap();
                continue;
            }
            let v = match dtype {
                DataType::Int => Value::Int(rng.next() as i64),
                DataType::Float => Value::Float(FLOATS[rng.pick(FLOATS.len() as u64) as usize]),
                DataType::Text => Value::Text(rng.string()),
                _ => Value::Bool(rng.next().is_multiple_of(2)),
            };
            b.push(v).unwrap();
        }
        columns.push(b.finish());
    }
    let schema = Arc::new(Schema::new(fields));
    Batch::new(schema, columns).expect("builder columns match schema")
}

fn build_request(rng: &mut Lcg) -> Request {
    match rng.pick(7) {
        0 => Request::Auth {
            token: rng.string(),
        },
        1 => Request::OpenSession {
            connection: rng.string(),
        },
        2 => Request::QueryElement {
            workbook_json: rng.string(),
            element: rng.string(),
            priority: if rng.pick(2) == 0 {
                WirePriority::Interactive
            } else {
                WirePriority::Background
            },
            deadline_ms: if rng.pick(2) == 0 {
                None
            } else {
                Some(rng.pick(100_000))
            },
        },
        3 => Request::Explain {
            workbook_json: rng.string(),
            element: rng.string(),
        },
        4 => Request::UploadCsv {
            table: rng.string(),
            csv: rng.string(),
        },
        5 => Request::Ping,
        _ => Request::CloseSession,
    }
}

fn build_response(rng: &mut Lcg) -> Response {
    match rng.pick(8) {
        0 => Response::AuthOk {
            user_id: rng.next(),
            org: rng.next(),
            name: rng.string(),
            role: "creator".into(),
        },
        1 => Response::SessionOpened {
            connection: rng.string(),
        },
        2 => Response::Query(WireOutcome {
            batch: WireBatch::from_batch(&build_batch(rng)),
            query_id: rng.string(),
            sql: rng.string(),
            served_from: "warehouse".into(),
            queue_wait_us: rng.pick(1_000_000),
            stage_hits: rng.pick(8),
            stages_executed: rng.pick(8),
            rows_scanned: rng.pick(100_000),
        }),
        3 => Response::Explained { sql: rng.string() },
        4 => Response::Uploaded {
            rows: rng.pick(1000),
        },
        5 => Response::Pong,
        6 => Response::Overloaded {
            retry_after_ms: rng.pick(10_000),
        },
        _ => Response::Error {
            kind: match rng.pick(6) {
                0 => ErrorKind::Unauthenticated,
                1 => ErrorKind::Forbidden,
                2 => ErrorKind::NotFound,
                3 => ErrorKind::BadRequest,
                4 => ErrorKind::DeadlineExceeded,
                _ => ErrorKind::Internal,
            },
            message: rng.string(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn request_roundtrip(seed in any::<u64>()) {
        let req = build_request(&mut Lcg(seed));
        let frame_bytes = encode_request(&req).expect("encode");
        let mut cursor = std::io::Cursor::new(frame_bytes);
        let payload = read_frame(&mut cursor).expect("framing");
        prop_assert_eq!(decode_request(&payload).expect("decode"), req);
    }

    #[test]
    fn response_roundtrip(seed in any::<u64>()) {
        let resp = build_response(&mut Lcg(seed));
        let frame_bytes = encode_response(&resp).expect("encode");
        let mut cursor = std::io::Cursor::new(frame_bytes);
        let payload = read_frame(&mut cursor).expect("framing");
        prop_assert_eq!(decode_response(&payload).expect("decode"), resp);
    }

    /// Batches survive the hex armor bit-exactly: re-encoding the decoded
    /// batch reproduces the original codec bytes.
    #[test]
    fn wire_batch_is_bit_exact(seed in any::<u64>()) {
        let batch = build_batch(&mut Lcg(seed));
        let wire = WireBatch::from_batch(&batch);
        let decoded = wire.to_batch().expect("decode");
        prop_assert_eq!(
            sigma_value::codec::encode_batch(&decoded),
            sigma_value::codec::encode_batch(&batch)
        );
    }

    /// Truncating a valid frame anywhere yields a clean error, not a
    /// panic: mid-header is Closed/Truncated, mid-payload Truncated.
    #[test]
    fn truncated_frame_rejected(seed in any::<u64>(), frac in 0.0f64..1.0) {
        let req = build_request(&mut Lcg(seed));
        let bytes = encode_request(&req).expect("encode");
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match read_frame(&mut cursor) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0),
            Err(FrameError::Truncated) => {}
            other => prop_assert!(false, "truncation at {} gave {:?}", cut, other),
        }
    }

    /// Any single flipped payload byte is caught by the CRC.
    #[test]
    fn corrupt_payload_rejected(seed in any::<u64>(), victim in any::<u64>()) {
        let req = build_request(&mut Lcg(seed));
        let mut bytes = encode_request(&req).expect("encode");
        // Every request payload is non-empty JSON, so there is always a
        // payload byte to corrupt.
        prop_assert!(bytes.len() > frame::HEADER_BYTES);
        let idx = frame::HEADER_BYTES
            + (victim as usize) % (bytes.len() - frame::HEADER_BYTES);
        bytes[idx] ^= 0x40;
        let mut cursor = std::io::Cursor::new(bytes);
        prop_assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Corrupt { .. })
        ));
    }
}

#[test]
fn unknown_version_is_a_clean_error() {
    let mut bytes = encode_request(&Request::Ping).unwrap();
    // Stamp a future version into the header.
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    let mut cursor = std::io::Cursor::new(bytes);
    assert_eq!(
        read_frame(&mut cursor).unwrap_err(),
        FrameError::UnsupportedVersion(99)
    );
}

#[test]
fn bad_magic_rejected() {
    let mut bytes = encode_request(&Request::Ping).unwrap();
    bytes[0] = b'X';
    let mut cursor = std::io::Cursor::new(bytes);
    assert!(matches!(
        read_frame(&mut cursor).unwrap_err(),
        FrameError::BadMagic(_)
    ));
}

/// A hostile length prefix is rejected before any allocation is sized
/// from it.
#[test]
fn oversized_length_prefix_rejected() {
    let mut bytes = encode_request(&Request::Ping).unwrap();
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut cursor = std::io::Cursor::new(bytes);
    assert_eq!(
        read_frame(&mut cursor).unwrap_err(),
        FrameError::TooLarge(u32::MAX)
    );
}

/// Garbage that parses as JSON but not as a message is a decode error.
#[test]
fn wrong_shape_payload_rejected() {
    let payload = br#"{"definitely": "not a request"}"#;
    assert!(decode_request(payload).is_err());
    assert!(decode_response(payload).is_err());
    assert!(decode_request(b"\xff\xfe not utf8").is_err());
}
