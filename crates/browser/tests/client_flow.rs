//! Browser-session tests: the cache hierarchy in action.

use std::sync::Arc;
use std::time::Duration;

use sigma_browser::{BrowserSession, PrefetchPolicy, Source};
use sigma_cdw::Warehouse;
use sigma_core::document::ElementKind;
use sigma_core::table::{ColumnDef, DataSource, Level, TableSpec};
use sigma_core::Workbook;
use sigma_flights::{load_airports, load_flights, FlightsConfig};
use sigma_service::SigmaService;
use sigma_value::Value;

fn setup() -> (Arc<SigmaService>, Arc<Warehouse>, String) {
    let service = SigmaService::new();
    let org = service.tenancy.create_org("acme");
    let user = service
        .tenancy
        .create_user(org, "ada", sigma_service::tenancy::Role::Creator)
        .unwrap();
    let token = service.tenancy.issue_token(user).unwrap();
    let wh = Arc::new(Warehouse::default());
    load_flights(&wh, &FlightsConfig::with_rows(3_000)).unwrap();
    load_airports(&wh).unwrap();
    service.add_connection(org, "primary", wh.clone());
    (Arc::new(service), wh, token)
}

fn carrier_workbook() -> Workbook {
    let mut wb = Workbook::new(Some("demo"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByCarrier", ElementKind::Table(t))
        .unwrap();
    wb
}

#[test]
fn cache_hierarchy_sources() {
    let (service, _wh, token) = setup();
    let session = BrowserSession::new(service, token, "primary");
    let wb = carrier_workbook();

    // Cold: warehouse execution.
    let first = session.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(first.source, Source::Warehouse);
    assert_eq!(first.batch.num_rows(), 8);

    // Same state again: browser cache (undo / page switch path).
    let second = session.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(second.source, Source::BrowserCache);
    assert_eq!(second.batch, first.batch);

    // A *different tab* (fresh cache) of the same state: query directory.
    let session2 = BrowserSession::new(session.service.clone(), session.token.clone(), "primary");
    let third = session2.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(third.source, Source::ServiceDirectory);
    assert_eq!(third.batch.num_rows(), 8);
}

#[test]
fn control_change_misses_then_undo_hits() {
    let (service, _wh, token) = setup();
    let session = BrowserSession::new(service, token, "primary");
    let mut wb = carrier_workbook();
    wb.add_element(
        0,
        "Min Flights",
        ElementKind::Control(sigma_core::controls::ControlSpec::slider(
            0.0, 10_000.0, 1.0, 0.0,
        )),
    )
    .unwrap();
    {
        let t = wb.table_mut("ByCarrier").unwrap();
        t.add_column(ColumnDef::formula(
            "Enough",
            "[Flights] >= [Min Flights]",
            1,
        ))
        .unwrap();
    }

    let a = session.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(a.source, Source::Warehouse);

    // Move the slider: new fingerprint, so the result cache misses — but
    // the unchanged prefix of the stage DAG is in the browser stage cache,
    // so only the invalidated suffix re-runs, locally.
    if let Some(e) = wb.element_mut("Min Flights") {
        if let ElementKind::Control(c) = &mut e.kind {
            c.set_value(Value::Float(500.0)).unwrap();
        }
    }
    let b = session.query_element(&wb, "ByCarrier").unwrap();
    assert!(
        matches!(b.source, Source::LocalDelta | Source::LocalResidual),
        "{:?}",
        b.source
    );
    // Bit-identical to a cold service recompute of the same state.
    let fresh = BrowserSession::new(session.service.clone(), session.token.clone(), "primary");
    let service_b = fresh.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(b.batch, service_b.batch);

    // Undo (slider back): browser cache hit, no round trip.
    if let Some(e) = wb.element_mut("Min Flights") {
        if let ElementKind::Control(c) = &mut e.kind {
            c.set_value(Value::Float(0.0)).unwrap();
        }
    }
    let c = session.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(c.source, Source::BrowserCache);
}

#[test]
fn prefetched_tables_evaluate_locally() {
    let (service, wh, token) = setup();
    let session = BrowserSession::new(service, token, "primary");
    // Airports is tiny: prefetched. Flights is large: not.
    let policy = PrefetchPolicy {
        max_rows: 1_000,
        max_bytes: 8 << 20,
        ..Default::default()
    };
    let fetched = session.prefetch(&wh, &policy);
    assert!(fetched.contains(&"airports".to_string()), "{fetched:?}");
    assert!(!fetched.contains(&"flights".to_string()));

    // A workbook over the airports dimension runs locally.
    let mut wb = Workbook::new(Some("dims"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "airports".into(),
    });
    t.add_column(ColumnDef::source("State", "state")).unwrap();
    t.add_level(1, Level::keyed("By State", vec!["State".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Airports", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "ByState", ElementKind::Table(t)).unwrap();

    let queries_before = wh.queries_executed();
    let out = session.query_element(&wb, "ByState").unwrap();
    assert_eq!(out.source, Source::LocalEngine);
    assert!(out.batch.num_rows() >= 10);
    // No warehouse query was issued.
    assert_eq!(wh.queries_executed(), queries_before);
    assert_eq!(session.local.local_evals(), 1);

    // Refinements (a filter) stay local too.
    {
        let t = wb.table_mut("ByState").unwrap();
        t.filters.push(sigma_core::table::FilterSpec {
            column: "State".into(),
            predicate: sigma_core::table::FilterPredicate::OneOf(vec!["CA".into(), "TX".into()]),
        });
    }
    let refined = session.query_element(&wb, "ByState").unwrap();
    assert!(
        matches!(
            refined.source,
            Source::LocalEngine | Source::LocalDelta | Source::LocalResidual
        ),
        "{:?}",
        refined.source
    );
    assert_eq!(refined.batch.num_rows(), 2);
    assert_eq!(wh.queries_executed(), queries_before);
}

#[test]
fn network_latency_charged_only_on_round_trips() {
    let (service, _wh, token) = setup();
    let session = BrowserSession::new(service, token, "primary")
        .with_network_latency(Duration::from_millis(30));
    let wb = carrier_workbook();
    let cold = session.query_element(&wb, "ByCarrier").unwrap();
    assert!(
        cold.elapsed >= Duration::from_millis(60),
        "{:?}",
        cold.elapsed
    );
    let warm = session.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(warm.source, Source::BrowserCache);
    assert!(
        warm.elapsed < Duration::from_millis(30),
        "{:?}",
        warm.elapsed
    );
}

#[test]
fn edit_invalidation_forces_refetch() {
    let (service, _wh, token) = setup();
    let session = BrowserSession::new(service, token, "primary");
    let wb = carrier_workbook();
    let first = session.query_element(&wb, "ByCarrier").unwrap();
    assert_eq!(session.on_element_edited("ByCarrier"), 1);
    let again = session.query_element(&wb, "ByCarrier").unwrap();
    // The result cache was invalidated, so the batch is recomputed — but
    // the interior stages shipped with the first answer let the browser
    // rebuild it without a round trip.
    assert!(
        matches!(again.source, Source::LocalDelta | Source::LocalResidual),
        "{:?}",
        again.source
    );
    assert_eq!(again.batch, first.batch);
}
