//! Property oracle for incremental local evaluation (the tier ladder in
//! `BrowserSession::query_element`).
//!
//! Generates random edit sequences over a grouped flights workbook —
//! filter-threshold tweaks, formula-constant changes, group-key changes,
//! and structural source edits (toggling a join link) — and checks, step
//! by step:
//!
//! 1. **Bit-identity**: the incremental session's answer equals a cold
//!    service recompute of the same state by a fresh session.
//! 2. **Tier discipline**: a state whose *source stage* was never seen
//!    (structural change: the join link alters the source SQL) must fall
//!    back to the service; any other new state over a seen structure must
//!    be served from a local tier with **zero** warehouse queries; a
//!    repeated state must hit the browser result cache.

use std::collections::HashSet;
use std::sync::Arc;

use proptest::prelude::*;
use sigma_browser::{BrowserSession, Source};
use sigma_cdw::Warehouse;
use sigma_core::document::ElementKind;
use sigma_core::table::{
    ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, SourceLink, TableSpec,
};
use sigma_core::Workbook;
use sigma_flights::{load_airports, load_flights, FlightsConfig};
use sigma_service::SigmaService;
use sigma_value::Value;

/// Group-key combos the regroup edit cycles through. The source stage
/// projects every warehouse field either way, so regrouping only changes
/// interior stages — it stays locally servable.
const KEY_COMBOS: &[&[(&str, &str)]] = &[
    &[("Carrier", "carrier")],
    &[("Carrier", "carrier"), ("Origin", "origin")],
    &[("Carrier", "carrier"), ("Dest", "dest")],
];

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Detail filter: distance >= threshold.
    threshold: u32,
    /// Formula constant: Score = [Flights] * k.
    k: i64,
    /// Index into KEY_COMBOS.
    keys: usize,
    /// Whether the airports join link is present (changes the source
    /// stage SQL — the only *structural* axis here).
    joined: bool,
}

impl State {
    fn initial() -> State {
        State {
            threshold: 0,
            k: 1,
            keys: 0,
            joined: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Edit {
    /// Tweak the detail filter threshold.
    Filter(u32),
    /// Change the formula constant.
    Formula(i64),
    /// Advance the group-key combo (interior stages only).
    Regroup,
    /// Toggle the airports join link (changes the source stage).
    Structural,
}

fn apply(state: &mut State, edit: Edit) {
    match edit {
        Edit::Filter(t) => state.threshold = t,
        Edit::Formula(k) => state.k = k,
        Edit::Regroup => state.keys = (state.keys + 1) % KEY_COMBOS.len(),
        Edit::Structural => state.joined = !state.joined,
    }
}

fn build(state: State) -> Workbook {
    let mut wb = Workbook::new(Some("oracle"));
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    if state.joined {
        t.links.push(SourceLink::Join {
            source: DataSource::WarehouseTable {
                table: "airports".into(),
            },
            on: vec![("origin".into(), "code".into())],
            left_outer: true,
            prefix: "ap_".into(),
        });
    }
    for (name, col) in KEY_COMBOS[state.keys] {
        t.add_column(ColumnDef::source(*name, *col)).unwrap();
    }
    t.add_column(ColumnDef::source("Distance", "distance"))
        .unwrap();
    let keys: Vec<String> = KEY_COMBOS[state.keys]
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    t.add_level(1, Level::keyed("Grouped", keys)).unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Score",
        format!("[Flights] * {}", state.k),
        1,
    ))
    .unwrap();
    t.filters.push(FilterSpec {
        column: "Distance".into(),
        predicate: FilterPredicate::Range {
            min: Some(Value::Float(f64::from(state.threshold))),
            max: None,
        },
    });
    t.detail_level = 1;
    wb.add_element(0, "Grouped", ElementKind::Table(t)).unwrap();
    wb
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0u32..8).prop_map(|t| Edit::Filter(t * 100)),
        (1i64..6).prop_map(Edit::Formula),
        Just(Edit::Regroup),
        Just(Edit::Structural),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn edit_sequences_match_cold_service_recompute(
        edits in proptest::collection::vec(edit_strategy(), 1..6)
    ) {
        let service = SigmaService::new();
        let org = service.tenancy.create_org("acme");
        let user = service
            .tenancy
            .create_user(org, "ada", sigma_service::tenancy::Role::Creator)
            .unwrap();
        let token = service.tenancy.issue_token(user).unwrap();
        let wh = Arc::new(Warehouse::default());
        load_flights(&wh, &FlightsConfig::with_rows(800)).unwrap();
        load_airports(&wh).unwrap();
        service.add_connection(org, "primary", wh.clone());
        let service = Arc::new(service);

        let session = BrowserSession::new(service.clone(), token.clone(), "primary");
        let mut seen_states: HashSet<State> = HashSet::new();
        let mut seen_structures: HashSet<bool> = HashSet::new();

        let mut state = State::initial();
        let mut steps: Vec<Option<Edit>> = vec![None];
        steps.extend(edits.iter().copied().map(Some));
        for step in steps {
            if let Some(edit) = step {
                apply(&mut state, edit);
            }
            let wb = build(state);
            let before = wh.queries_executed();
            let out = session.query_element(&wb, "Grouped").unwrap();
            let scanned = wh.queries_executed() - before;

            if seen_states.contains(&state) {
                prop_assert_eq!(out.source, Source::BrowserCache);
                prop_assert_eq!(scanned, 0);
            } else if seen_structures.contains(&state.joined) {
                // Same source structure: the unchanged prefix is in the
                // stage cache, so the edit is served locally without a
                // single warehouse query.
                prop_assert!(
                    matches!(out.source, Source::LocalDelta | Source::LocalResidual),
                    "expected local tier for {:?}, got {:?}",
                    state,
                    out.source
                );
                prop_assert_eq!(scanned, 0);
            } else {
                // Structural change: the source stage itself is new and
                // its base table is not prefetched — service round trip.
                prop_assert!(
                    matches!(out.source, Source::Warehouse | Source::ServiceDirectory),
                    "expected service fallback for {:?}, got {:?}",
                    state,
                    out.source
                );
            }
            seen_states.insert(state);
            seen_structures.insert(state.joined);

            // Pin against a cold recompute by a session with no caches.
            let fresh = BrowserSession::new(service.clone(), token.clone(), "primary");
            let oracle = fresh.query_element(&wb, "Grouped").unwrap();
            prop_assert_eq!(&out.batch, &oracle.batch);
        }
    }
}
