//! The browser caches: the LRU result cache (keyed by element + root
//! fingerprint) and the stage cache (keyed by interior stage
//! fingerprints) that feeds local residual-suffix execution.

use std::collections::HashMap;

use parking_lot::Mutex;
use sigma_value::Batch;

/// Cache statistics (experiment E4/E5 observables).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bytes: usize,
}

struct Entry {
    batch: Batch,
    /// Elements this result depends on (for edit invalidation).
    depends_on: Vec<String>,
    bytes: usize,
    last_used: u64,
}

/// LRU result cache with a byte budget.
pub struct ResultCache {
    entries: Mutex<HashMap<String, Entry>>,
    stats: Mutex<CacheStats>,
    clock: Mutex<u64>,
    budget_bytes: usize,
}

impl ResultCache {
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            entries: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            clock: Mutex::new(0),
            budget_bytes: budget_bytes.max(1),
        }
    }

    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    fn tick(&self) -> u64 {
        let mut c = self.clock.lock();
        *c += 1;
        *c
    }

    pub fn get(&self, key: &str) -> Option<Batch> {
        let now = self.tick();
        let mut entries = self.entries.lock();
        let hit = entries.get_mut(key).map(|e| {
            e.last_used = now;
            e.batch.clone()
        });
        let mut stats = self.stats.lock();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        hit
    }

    pub fn put(&self, key: &str, batch: Batch, depends_on: Vec<String>) {
        let now = self.tick();
        let bytes = batch.byte_size();
        let mut entries = self.entries.lock();
        entries.insert(
            key.to_string(),
            Entry {
                batch,
                depends_on,
                bytes,
                last_used: now,
            },
        );
        // Evict least-recently-used entries until within budget.
        let mut total: usize = entries.values().map(|e| e.bytes).sum();
        let mut evictions = 0;
        while total > self.budget_bytes && entries.len() > 1 {
            let victim = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            if victim == key && entries.len() == 1 {
                break;
            }
            if let Some(e) = entries.remove(&victim) {
                total -= e.bytes;
                evictions += 1;
            }
        }
        let mut stats = self.stats.lock();
        stats.evictions += evictions;
        stats.bytes = total;
    }

    /// Drop every result that depends on the given element (edits to an
    /// input table invalidate downstream results).
    pub fn invalidate_element(&self, element: &str) -> usize {
        let mut entries = self.entries.lock();
        let victims: Vec<String> = entries
            .iter()
            .filter(|(_, e)| e.depends_on.iter().any(|d| d.eq_ignore_ascii_case(element)))
            .map(|(k, _)| k.clone())
            .collect();
        for v in &victims {
            entries.remove(v);
        }
        let mut stats = self.stats.lock();
        stats.bytes = entries.values().map(|e| e.bytes).sum();
        victims.len()
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct StageEntry {
    batch: Batch,
    /// Warehouse tables (lower-cased) the stage result was computed from;
    /// table-targeted invalidation drops dependents, mirroring the
    /// service directory's precision.
    tables: Vec<String>,
    bytes: usize,
    last_used: u64,
}

/// Browser-side cache of **interior stage results**, keyed by the stage's
/// Merkle fingerprint (hex). This is the client half of the service's
/// query directory: where the service keeps `(fingerprint → query id)`
/// pointers into the CDW, the browser keeps the small batches themselves,
/// so an edit's unchanged prefix never leaves the tab. LRU over a byte
/// budget, like [`ResultCache`].
pub struct StageCache {
    entries: Mutex<HashMap<String, StageEntry>>,
    stats: Mutex<CacheStats>,
    clock: Mutex<u64>,
    budget_bytes: usize,
}

impl StageCache {
    pub fn new(budget_bytes: usize) -> StageCache {
        StageCache {
            entries: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            clock: Mutex::new(0),
            budget_bytes: budget_bytes.max(1),
        }
    }

    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    fn tick(&self) -> u64 {
        let mut c = self.clock.lock();
        *c += 1;
        *c
    }

    /// Fetch a stage result by fingerprint, counting hit/miss and
    /// promoting the entry.
    pub fn get(&self, fingerprint: &str) -> Option<Batch> {
        let now = self.tick();
        let mut entries = self.entries.lock();
        let hit = entries.get_mut(fingerprint).map(|e| {
            e.last_used = now;
            e.batch.clone()
        });
        let mut stats = self.stats.lock();
        if hit.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        hit
    }

    /// Uncounted presence check (planning walks peek without skewing the
    /// hit rate).
    pub fn contains(&self, fingerprint: &str) -> bool {
        self.entries.lock().contains_key(fingerprint)
    }

    pub fn put(&self, fingerprint: &str, batch: Batch, tables: Vec<String>) {
        let now = self.tick();
        let bytes = batch.byte_size();
        if bytes > self.budget_bytes {
            return; // would evict everything else for one oversized entry
        }
        let tables = tables.into_iter().map(|t| t.to_ascii_lowercase()).collect();
        let mut entries = self.entries.lock();
        entries.insert(
            fingerprint.to_string(),
            StageEntry {
                batch,
                tables,
                bytes,
                last_used: now,
            },
        );
        let mut total: usize = entries.values().map(|e| e.bytes).sum();
        let mut evictions = 0;
        while total > self.budget_bytes && entries.len() > 1 {
            let victim = entries
                .iter()
                .filter(|(k, _)| k.as_str() != fingerprint)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            if let Some(e) = entries.remove(&victim) {
                total -= e.bytes;
                evictions += 1;
            }
        }
        let mut stats = self.stats.lock();
        stats.evictions += evictions;
        stats.bytes = total;
    }

    /// Drop every stage result computed from any of the given warehouse
    /// tables (case-insensitive). Re-installing a table with new contents
    /// must call this, or stale stage batches would keep serving.
    pub fn invalidate_tables<S: AsRef<str>>(&self, tables: &[S]) -> usize {
        let needles: Vec<String> = tables
            .iter()
            .map(|t| t.as_ref().to_ascii_lowercase())
            .collect();
        let mut entries = self.entries.lock();
        let victims: Vec<String> = entries
            .iter()
            .filter(|(_, e)| e.tables.iter().any(|t| needles.contains(t)))
            .map(|(k, _)| k.clone())
            .collect();
        for v in &victims {
            entries.remove(v);
        }
        let mut stats = self.stats.lock();
        stats.bytes = entries.values().map(|e| e.bytes).sum();
        victims.len()
    }

    /// Drop every cached stage result (hit/miss/eviction counters keep
    /// their history). Harnesses that want to measure the no-stage-reuse
    /// tiers use this; ordinary invalidation should stay table-targeted.
    pub fn clear(&self) -> usize {
        let mut entries = self.entries.lock();
        let dropped = entries.len();
        entries.clear();
        self.stats.lock().bytes = 0;
        dropped
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Column, DataType, Field, Schema};
    use std::sync::Arc;

    fn batch(n: usize) -> Batch {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Batch::new(schema, vec![Column::from_ints((0..n as i64).collect())]).unwrap()
    }

    #[test]
    fn hit_miss_counting() {
        let cache = ResultCache::new(1 << 20);
        assert!(cache.get("a").is_none());
        cache.put("a", batch(10), vec!["E".into()]);
        assert!(cache.get("a").is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_eviction_under_budget() {
        // Budget fits two 100-row Int batches (plus slack) but not three.
        let one = batch(100).byte_size();
        let cache = ResultCache::new(2 * one + one / 2);
        cache.put("a", batch(100), vec![]);
        cache.put("b", batch(100), vec![]);
        let _ = cache.get("a"); // freshen a
        cache.put("c", batch(100), vec![]); // evicts b (LRU)
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn dependency_invalidation() {
        let cache = ResultCache::new(1 << 20);
        cache.put("q1", batch(5), vec!["Notes".into(), "Flights".into()]);
        cache.put("q2", batch(5), vec!["Flights".into()]);
        assert_eq!(cache.invalidate_element("notes"), 1);
        assert!(cache.get("q1").is_none());
        assert!(cache.get("q2").is_some());
    }

    #[test]
    fn stage_cache_lru_and_table_invalidation() {
        let one = batch(100).byte_size();
        let cache = StageCache::new(2 * one + one / 2);
        cache.put("fp-a", batch(100), vec!["Flights".into()]);
        cache.put("fp-b", batch(100), vec!["airports".into()]);
        assert!(cache.contains("fp-a"));
        let _ = cache.get("fp-a"); // freshen a
        cache.put("fp-c", batch(100), vec![]); // evicts b (LRU)
        assert!(cache.get("fp-a").is_some());
        assert!(cache.get("fp-b").is_none());
        assert_eq!(cache.invalidate_tables(&["FLIGHTS"]), 1);
        assert!(!cache.contains("fp-a"));
        assert!(cache.contains("fp-c"));
    }

    #[test]
    fn stage_cache_rejects_oversized_entries() {
        let cache = StageCache::new(64);
        cache.put("big", batch(10_000), vec![]);
        assert!(cache.is_empty());
    }
}
