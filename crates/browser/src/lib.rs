//! The browser runtime (paper §4): the first cache level plus the
//! in-browser evaluation engine.
//!
//! "The first level of caching is within the browser itself. Recent query
//! results are remembered and re-used, helping the interactivity of
//! undoing operations or switching to a previous page."
//!
//! "The browser query-result cache is augmented with an evaluation engine,
//! written in C++ and compiled to WebAssembly, which in many cases can
//! synthesize new results from existing rows already fetched from the CDW.
//! These local evaluations avoid the latency of a round-trip to the
//! database … In some cases (e.g. lower cardinality tables), we are able to
//! prefetch a resultset that could be used to fully evaluate all future
//! operations on the table locally in the browser."
//!
//! The substitution (documented in DESIGN.md): the paper's C++→WASM engine
//! is modeled by an embedded instance of the same vectorized kernels the
//! warehouse uses (`sigma-cdw`), holding only prefetched tables. What
//! matters for the experiments is *where* evaluation happens; the service
//! round-trip is simulated with a configurable network RTT.

pub mod cache;
pub mod client;
pub mod local;
pub mod prefetch;

pub use cache::{ResultCache, StageCache};
pub use client::{BrowserSession, ClientOutcome, Source};
pub use local::{LocalEngine, LocalEval};
pub use prefetch::PrefetchPolicy;
