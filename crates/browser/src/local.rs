//! The in-browser evaluation engine.
//!
//! Holds fully prefetched tables in an embedded instance of the warehouse
//! kernels and answers a compiled query locally when every base table it
//! scans is present. This models the paper's WASM engine synthesizing "new
//! results from existing rows already fetched from the CDW".

use std::collections::HashSet;
use std::sync::Arc;

use sigma_cdw::{CdwError, Warehouse};
use sigma_sql::{Query, SetExpr, TableRef};
use sigma_value::Batch;

/// The local evaluation engine.
pub struct LocalEngine {
    engine: Warehouse,
    /// Lower-cased names of fully prefetched tables.
    tables: parking_lot::RwLock<HashSet<String>>,
    /// Local evaluations performed (experiment observable).
    local_evals: std::sync::atomic::AtomicU64,
}

impl Default for LocalEngine {
    fn default() -> Self {
        LocalEngine::new()
    }
}

impl LocalEngine {
    pub fn new() -> LocalEngine {
        LocalEngine {
            engine: Warehouse::default(),
            tables: parking_lot::RwLock::new(HashSet::new()),
            local_evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn local_evals(&self) -> u64 {
        self.local_evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Install a fully fetched table.
    pub fn install_table(&self, name: &str, batch: Batch) -> Result<(), CdwError> {
        self.engine.load_table(name, batch)?;
        self.tables.write().insert(name.to_ascii_lowercase());
        Ok(())
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains(&name.to_ascii_lowercase())
    }

    pub fn installed_tables(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().iter().cloned().collect();
        v.sort();
        v
    }

    /// Schema access for compiling against local data.
    pub fn table_schema(&self, name: &str) -> Option<Arc<sigma_value::Schema>> {
        if !self.has_table(name) {
            return None;
        }
        self.engine.table_schema(name)
    }

    /// Can this compiled query be answered entirely from prefetched rows?
    pub fn can_answer(&self, query: &Query) -> bool {
        let mut tables = Vec::new();
        collect_base_tables(query, &mut tables);
        let installed = self.tables.read();
        !tables.is_empty()
            && tables
                .iter()
                .all(|t| installed.contains(&t.to_ascii_lowercase()))
    }

    /// Evaluate locally (no round trip). Callers check `can_answer` first;
    /// a missing table surfaces as an error.
    pub fn evaluate(&self, sql: &str) -> Result<Batch, CdwError> {
        let result = self.engine.execute_sql(sql)?;
        self.local_evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(result.batch)
    }
}

/// Collect base-table names referenced by a query, excluding its own CTEs.
pub fn collect_base_tables(query: &Query, out: &mut Vec<String>) {
    let mut cte_names: HashSet<String> = HashSet::new();
    collect_query(query, &mut cte_names, out);
}

fn collect_query(query: &Query, ctes_in_scope: &mut HashSet<String>, out: &mut Vec<String>) {
    // CTEs bind sequentially: each body may reference earlier CTEs.
    let mut scope = ctes_in_scope.clone();
    for (name, cte) in &query.ctes {
        collect_query(cte, &mut scope, out);
        scope.insert(name.to_ascii_lowercase());
    }
    collect_set(&query.body, &scope, out);
}

fn collect_set(body: &SetExpr, scope: &HashSet<String>, out: &mut Vec<String>) {
    match body {
        SetExpr::Select(s) => {
            let mut handle = |t: &TableRef| match t {
                TableRef::Table { name, .. } => {
                    let base = name.to_dotted();
                    if (name.0.len() > 1 || !scope.contains(&base.to_ascii_lowercase()))
                        && !out.iter().any(|o| o.eq_ignore_ascii_case(&base))
                    {
                        out.push(base);
                    }
                }
                TableRef::Subquery { query, .. } => {
                    let mut inner_scope = scope.clone();
                    collect_query(query, &mut inner_scope, out);
                }
                TableRef::Function { .. } => {
                    // RESULT_SCAN needs the warehouse: mark unanswerable by
                    // inventing an impossible table name.
                    out.push("$result_scan".into());
                }
            };
            if let Some(from) = &s.from {
                handle(from);
            }
            for j in &s.joins {
                handle(&j.relation);
            }
        }
        SetExpr::UnionAll(l, r) => {
            collect_set(l, scope, out);
            collect_set(r, scope, out);
        }
        SetExpr::Values(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_sql::parse_query;
    use sigma_value::{Column, DataType, Field, Schema, Value};

    fn sample() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Text),
            Field::new("v", DataType::Int),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_texts(vec!["a".into(), "b".into(), "a".into()]),
                Column::from_ints(vec![1, 2, 3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn base_table_collection_skips_ctes() {
        let q = parse_query(
            "WITH x AS (SELECT * FROM t1) SELECT * FROM x JOIN t2 ON x.a = t2.a \
             JOIN (SELECT * FROM t3) s ON s.b = t2.b",
        )
        .unwrap();
        let mut tables = Vec::new();
        collect_base_tables(&q, &mut tables);
        assert_eq!(tables, vec!["t1".to_string(), "t2".into(), "t3".into()]);
    }

    #[test]
    fn answerability_and_local_eval() {
        let engine = LocalEngine::new();
        engine.install_table("dim", sample()).unwrap();
        let local = parse_query("SELECT k, SUM(v) AS s FROM dim GROUP BY k").unwrap();
        assert!(engine.can_answer(&local));
        let remote = parse_query("SELECT * FROM dim JOIN facts ON dim.k = facts.k").unwrap();
        assert!(!engine.can_answer(&remote));
        let b = engine
            .evaluate("SELECT k, SUM(v) AS s FROM dim GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.value(0, 1), Value::Int(4));
        assert_eq!(engine.local_evals(), 1);
    }

    #[test]
    fn result_scan_is_never_local() {
        let engine = LocalEngine::new();
        let q = parse_query("SELECT * FROM TABLE(RESULT_SCAN('q-1')) AS r").unwrap();
        assert!(!engine.can_answer(&q));
    }
}
