//! The in-browser evaluation engine.
//!
//! Holds fully prefetched tables in an embedded instance of the warehouse
//! kernels and answers a compiled query locally when every base table it
//! scans is present. This models the paper's WASM engine synthesizing "new
//! results from existing rows already fetched from the CDW".
//!
//! Beyond whole-query evaluation, the engine executes the **residual
//! suffix** of an edited element ([`LocalEngine::execute_plan`]): given
//! the compiled stage DAG and a fingerprint-keyed [`StageCache`] of
//! previously seen stage results, it finds the deepest cached frontier
//! and recomputes only the invalidated stages — through the bare
//! selection-vector kernels when a stage is a simple filter/projection
//! over one input (the delta fast path for slider drags and formula
//! edits), through the embedded engine otherwise.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use sigma_cdw::{CdwError, Warehouse};
use sigma_core::StagePlan;
use sigma_sql::{Query, SetExpr, TableRef};
use sigma_value::Batch;

use crate::cache::{CacheStats, StageCache};

/// How one residual-suffix evaluation was served.
#[derive(Debug, Clone)]
pub struct LocalEval {
    /// The sink's result.
    pub batch: Batch,
    /// Stages answered from the browser stage cache (the reuse frontier).
    pub stage_hits: usize,
    /// Stages recomputed by the delta kernels alone (filter re-selection
    /// / formula projection over a cached parent — no plan, no scan).
    pub kernel_stages: usize,
    /// Stages recomputed through the embedded engine (grouping, joins,
    /// sorts — anything beyond a simple select).
    pub engine_stages: usize,
}

/// What the reverse cache walk decided for one stage.
enum StageAction {
    /// Behind the reuse frontier: never touched.
    Skip,
    /// Served from the stage cache.
    Reuse(Batch),
    /// Simple filter/projection over a single input stage: recompute via
    /// [`sigma_cdw::delta::execute_simple_stage`].
    Kernel,
    /// Recompute through the embedded engine (inputs installed as
    /// ephemeral RESULT_SCAN tables).
    Engine,
}

/// The local evaluation engine.
pub struct LocalEngine {
    engine: Warehouse,
    /// Lower-cased names of fully prefetched tables.
    tables: parking_lot::RwLock<HashSet<String>>,
    /// Interior stage results by Merkle fingerprint (hex).
    stages: StageCache,
    /// Local evaluations performed (experiment observable).
    local_evals: std::sync::atomic::AtomicU64,
}

impl Default for LocalEngine {
    fn default() -> Self {
        LocalEngine::new()
    }
}

impl LocalEngine {
    pub fn new() -> LocalEngine {
        LocalEngine {
            engine: Warehouse::default(),
            tables: parking_lot::RwLock::new(HashSet::new()),
            stages: StageCache::new(32 << 20),
            local_evals: std::sync::atomic::AtomicU64::new(0),
        }
    }

    pub fn local_evals(&self) -> u64 {
        self.local_evals.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Install a fully fetched table. Re-installing a known name (an
    /// edited input table re-projected, a refreshed prefetch) drops every
    /// cached stage result computed from it — fingerprint-keyed,
    /// table-targeted invalidation, mirroring the service directory —
    /// so stale batches can never serve a residual suffix.
    pub fn install_table(&self, name: &str, batch: Batch) -> Result<(), CdwError> {
        self.engine.load_table(name, batch)?;
        let fresh = self.tables.write().insert(name.to_ascii_lowercase());
        if !fresh {
            self.stages.invalidate_tables(&[name]);
        }
        Ok(())
    }

    /// Seed the stage cache with a result the service shipped alongside
    /// an answer (see `QueryOutcome::stage_results`).
    pub fn install_stage(&self, fingerprint: &str, batch: Batch, tables: Vec<String>) {
        self.stages.put(fingerprint, batch, tables);
    }

    /// Uncounted stage-cache presence check.
    pub fn has_stage(&self, fingerprint: &str) -> bool {
        self.stages.contains(fingerprint)
    }

    /// Drop every cached stage result, forcing the next evaluation to run
    /// the full plan through the engine (no delta/residual reuse).
    pub fn clear_stages(&self) -> usize {
        self.stages.clear()
    }

    pub fn stage_stats(&self) -> CacheStats {
        self.stages.stats()
    }

    /// Execute the residual suffix of a compiled element locally.
    ///
    /// Walking the stage DAG from the sink, each interior stage is looked
    /// up in the stage cache by fingerprint; a hit becomes a reuse
    /// frontier and its inputs are never visited. Every remaining stage
    /// must be computable here: a **simple stage** (single-input
    /// filter/projection) runs through the delta kernels, anything else
    /// runs on the embedded engine with its stage inputs installed as
    /// ephemeral `RESULT_SCAN` results — which requires any base tables
    /// it scans to be prefetched. If some residual stage is not
    /// computable, returns `Ok(None)`: the caller falls back to the
    /// service.
    ///
    /// Results are bit-identical to a full service recompile: the kernel
    /// path mirrors the planner's resolution/naming/coercion exactly
    /// (pinned by `sigma-cdw`'s delta tests), the engine path *is* the
    /// warehouse code, and stage decomposition is the same DAG the
    /// service executes.
    pub fn execute_plan(&self, plan: &StagePlan) -> Result<Option<LocalEval>, CdwError> {
        let n = plan.nodes.len();
        let sink = n - 1;
        let mut actions: Vec<StageAction> = (0..n).map(|_| StageAction::Skip).collect();
        let mut needed = vec![false; n];
        needed[sink] = true;
        for idx in (0..n).rev() {
            if !needed[idx] {
                continue;
            }
            let node = &plan.nodes[idx];
            if idx != sink {
                if let Some(batch) = self.stages.get(&node.fingerprint.hex()) {
                    actions[idx] = StageAction::Reuse(batch);
                    continue;
                }
            }
            let kernel_simple = node.tables.is_empty()
                && node.inputs.len() == 1
                && sigma_cdw::delta::simple_stage_select(&node.query).is_some()
                && sigma_cdw::delta::simple_stage_input(&node.query)
                    .is_some_and(|t| plan.nodes[node.inputs[0]].name.eq_ignore_ascii_case(&t));
            if kernel_simple {
                actions[idx] = StageAction::Kernel;
            } else {
                let installed = self.tables.read();
                if !node
                    .tables
                    .iter()
                    .all(|t| installed.contains(&t.to_ascii_lowercase()))
                {
                    return Ok(None); // needs the warehouse
                }
                actions[idx] = StageAction::Engine;
            }
            for &input in &node.inputs {
                needed[input] = true;
            }
        }

        // Forward pass over the residual suffix in topological order.
        let mut results: Vec<Option<Batch>> = (0..n).map(|_| None).collect();
        let mut ephemeral: Vec<String> = Vec::new();
        let (mut stage_hits, mut kernel_stages, mut engine_stages) = (0usize, 0usize, 0usize);
        let eval_ctx = sigma_cdw::eval::EvalCtx::default();
        let outcome = (|| -> Result<Batch, CdwError> {
            for idx in 0..n {
                match &actions[idx] {
                    StageAction::Skip => {}
                    StageAction::Reuse(batch) => {
                        stage_hits += 1;
                        results[idx] = Some(batch.clone());
                    }
                    StageAction::Kernel => {
                        let node = &plan.nodes[idx];
                        let parent = results[node.inputs[0]]
                            .as_ref()
                            .expect("input stage resolved");
                        let batch =
                            sigma_cdw::delta::execute_simple_stage(&node.query, parent, &eval_ctx)?;
                        kernel_stages += 1;
                        results[idx] = Some(batch);
                    }
                    StageAction::Engine => {
                        let node = &plan.nodes[idx];
                        let mut query = node.query.clone();
                        let scans: HashMap<String, String> = node
                            .inputs
                            .iter()
                            .map(|&i| {
                                let qid = self.engine.install_result(
                                    results[i].clone().expect("input stage resolved"),
                                );
                                ephemeral.push(qid.clone());
                                (plan.nodes[i].name.to_ascii_lowercase(), qid)
                            })
                            .collect();
                        sigma_sql::substitute_result_scans(&mut query, &scans);
                        let r = self
                            .engine
                            .execute_statement(&sigma_sql::Statement::Query(query))?;
                        ephemeral.push(r.query_id.clone());
                        engine_stages += 1;
                        results[idx] = Some(r.batch);
                    }
                }
            }
            Ok(results[sink].clone().expect("sink computed"))
        })();
        // The embedded warehouse only ever holds prefetched tables plus
        // these transient RESULT_SCAN installs; drop them now.
        for qid in &ephemeral {
            self.engine.evict_result(qid);
        }
        let batch = outcome?;

        // Remember every freshly computed interior stage so the next edit
        // reuses it (the cache walk above is how it gets found).
        for idx in 0..sink {
            if matches!(actions[idx], StageAction::Kernel | StageAction::Engine) {
                if let Some(b) = &results[idx] {
                    let node = &plan.nodes[idx];
                    self.stages
                        .put(&node.fingerprint.hex(), b.clone(), node.all_tables.clone());
                }
            }
        }
        self.local_evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(Some(LocalEval {
            batch,
            stage_hits,
            kernel_stages,
            engine_stages,
        }))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains(&name.to_ascii_lowercase())
    }

    pub fn installed_tables(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().iter().cloned().collect();
        v.sort();
        v
    }

    /// Schema access for compiling against local data.
    pub fn table_schema(&self, name: &str) -> Option<Arc<sigma_value::Schema>> {
        if !self.has_table(name) {
            return None;
        }
        self.engine.table_schema(name)
    }

    /// Can this compiled query be answered entirely from prefetched rows?
    pub fn can_answer(&self, query: &Query) -> bool {
        let mut tables = Vec::new();
        collect_base_tables(query, &mut tables);
        let installed = self.tables.read();
        !tables.is_empty()
            && tables
                .iter()
                .all(|t| installed.contains(&t.to_ascii_lowercase()))
    }

    /// Evaluate locally (no round trip). Callers check `can_answer` first;
    /// a missing table surfaces as an error.
    pub fn evaluate(&self, sql: &str) -> Result<Batch, CdwError> {
        let result = self.engine.execute_sql(sql)?;
        self.local_evals
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(result.batch)
    }
}

/// Collect base-table names referenced by a query, excluding its own CTEs.
pub fn collect_base_tables(query: &Query, out: &mut Vec<String>) {
    let mut cte_names: HashSet<String> = HashSet::new();
    collect_query(query, &mut cte_names, out);
}

fn collect_query(query: &Query, ctes_in_scope: &mut HashSet<String>, out: &mut Vec<String>) {
    // CTEs bind sequentially: each body may reference earlier CTEs.
    let mut scope = ctes_in_scope.clone();
    for (name, cte) in &query.ctes {
        collect_query(cte, &mut scope, out);
        scope.insert(name.to_ascii_lowercase());
    }
    collect_set(&query.body, &scope, out);
}

fn collect_set(body: &SetExpr, scope: &HashSet<String>, out: &mut Vec<String>) {
    match body {
        SetExpr::Select(s) => {
            let mut handle = |t: &TableRef| match t {
                TableRef::Table { name, .. } => {
                    let base = name.to_dotted();
                    if (name.0.len() > 1 || !scope.contains(&base.to_ascii_lowercase()))
                        && !out.iter().any(|o| o.eq_ignore_ascii_case(&base))
                    {
                        out.push(base);
                    }
                }
                TableRef::Subquery { query, .. } => {
                    let mut inner_scope = scope.clone();
                    collect_query(query, &mut inner_scope, out);
                }
                TableRef::Function { .. } => {
                    // RESULT_SCAN needs the warehouse: mark unanswerable by
                    // inventing an impossible table name.
                    out.push("$result_scan".into());
                }
            };
            if let Some(from) = &s.from {
                handle(from);
            }
            for j in &s.joins {
                handle(&j.relation);
            }
        }
        SetExpr::UnionAll(l, r) => {
            collect_set(l, scope, out);
            collect_set(r, scope, out);
        }
        SetExpr::Values(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_sql::parse_query;
    use sigma_value::{Column, DataType, Field, Schema, Value};

    fn sample() -> Batch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Text),
            Field::new("v", DataType::Int),
        ]));
        Batch::new(
            schema,
            vec![
                Column::from_texts(vec!["a".into(), "b".into(), "a".into()]),
                Column::from_ints(vec![1, 2, 3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn base_table_collection_skips_ctes() {
        let q = parse_query(
            "WITH x AS (SELECT * FROM t1) SELECT * FROM x JOIN t2 ON x.a = t2.a \
             JOIN (SELECT * FROM t3) s ON s.b = t2.b",
        )
        .unwrap();
        let mut tables = Vec::new();
        collect_base_tables(&q, &mut tables);
        assert_eq!(tables, vec!["t1".to_string(), "t2".into(), "t3".into()]);
    }

    #[test]
    fn answerability_and_local_eval() {
        let engine = LocalEngine::new();
        engine.install_table("dim", sample()).unwrap();
        let local = parse_query("SELECT k, SUM(v) AS s FROM dim GROUP BY k").unwrap();
        assert!(engine.can_answer(&local));
        let remote = parse_query("SELECT * FROM dim JOIN facts ON dim.k = facts.k").unwrap();
        assert!(!engine.can_answer(&remote));
        let b = engine
            .evaluate("SELECT k, SUM(v) AS s FROM dim GROUP BY k ORDER BY k")
            .unwrap();
        assert_eq!(b.num_rows(), 2);
        assert_eq!(b.value(0, 1), Value::Int(4));
        assert_eq!(engine.local_evals(), 1);
    }

    #[test]
    fn result_scan_is_never_local() {
        let engine = LocalEngine::new();
        let q = parse_query("SELECT * FROM TABLE(RESULT_SCAN('q-1')) AS r").unwrap();
        assert!(!engine.can_answer(&q));
    }
}
