//! Prefetch policy (paper §4): "In some cases (e.g. lower cardinality
//! tables), we are able to prefetch a resultset that could be used to
//! fully evaluate all future operations on the table locally in the
//! browser."

use sigma_cdw::Warehouse;

use crate::local::LocalEngine;

/// Decides which warehouse tables are small enough to ship wholesale.
#[derive(Debug, Clone)]
pub struct PrefetchPolicy {
    /// Tables at or below this row count are prefetched.
    pub max_rows: usize,
    /// ... as long as they also fit this byte budget.
    pub max_bytes: usize,
    /// Interior stage results shipped back on query outcomes are kept
    /// locally only at or below this size (they feed residual-suffix
    /// execution; an oversized intermediate is cheaper to recompute or
    /// re-request than to hold).
    pub max_stage_bytes: usize,
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        PrefetchPolicy {
            max_rows: 10_000,
            max_bytes: 8 << 20,
            max_stage_bytes: 8 << 20,
        }
    }
}

impl PrefetchPolicy {
    /// Should this table be prefetched?
    pub fn wants(&self, row_count: usize, byte_size: usize) -> bool {
        row_count <= self.max_rows && byte_size <= self.max_bytes
    }

    /// Should a shipped interior stage result be kept in the stage cache?
    pub fn wants_stage(&self, byte_size: usize) -> bool {
        byte_size <= self.max_stage_bytes
    }

    /// Scan the warehouse catalog and install every qualifying table into
    /// the local engine. Returns the names prefetched.
    pub fn prefetch_all(&self, warehouse: &Warehouse, engine: &LocalEngine) -> Vec<String> {
        let mut fetched = Vec::new();
        for name in warehouse.table_names() {
            if engine.has_table(&name) {
                continue;
            }
            let Ok(stats) = warehouse.table_stats(&name) else {
                continue;
            };
            if !self.wants(stats.row_count, stats.byte_size) {
                continue;
            }
            // Full fetch: SELECT * (one warehouse query per table).
            let Ok(result) = warehouse.execute_sql(&format!("SELECT * FROM {name}")) else {
                continue;
            };
            if engine.install_table(&name, result.batch).is_ok() {
                fetched.push(name);
            }
        }
        fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_value::{Batch, Column, DataType, Field, Schema};
    use std::sync::Arc;

    fn table(n: usize) -> Batch {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        Batch::new(schema, vec![Column::from_ints((0..n as i64).collect())]).unwrap()
    }

    #[test]
    fn only_small_tables_prefetched() {
        let wh = Warehouse::default();
        wh.load_table("small", table(100)).unwrap();
        wh.load_table("large", table(50_000)).unwrap();
        let engine = LocalEngine::new();
        let policy = PrefetchPolicy {
            max_rows: 1_000,
            max_bytes: 1 << 20,
            ..Default::default()
        };
        let fetched = policy.prefetch_all(&wh, &engine);
        assert_eq!(fetched, vec!["small".to_string()]);
        assert!(engine.has_table("small"));
        assert!(!engine.has_table("large"));
    }

    #[test]
    fn byte_budget_respected() {
        let policy = PrefetchPolicy {
            max_rows: 1_000_000,
            max_bytes: 100,
            ..Default::default()
        };
        assert!(!policy.wants(10, 101));
        assert!(policy.wants(10, 99));
    }

    #[test]
    fn idempotent() {
        let wh = Warehouse::default();
        wh.load_table("small", table(10)).unwrap();
        let engine = LocalEngine::new();
        let policy = PrefetchPolicy::default();
        assert_eq!(policy.prefetch_all(&wh, &engine).len(), 1);
        assert_eq!(policy.prefetch_all(&wh, &engine).len(), 0);
    }
}
