//! The browser session: ties the result cache, the local engine, and the
//! service round-trip together, choosing the cheapest source for each
//! query (cache → local delta / residual suffix → full local evaluation
//! → service).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sigma_core::schema::SchemaProvider;
use sigma_core::{classify_plan_delta, CompileOptions, Compiler, PlanDelta, StagePlan, Workbook};
use sigma_service::workload::Priority;
use sigma_service::{QueryRequest, ServedFrom, ServiceError, SigmaService};
use sigma_value::Batch;

use crate::cache::ResultCache;
use crate::local::LocalEngine;
use crate::prefetch::PrefetchPolicy;

/// Where an answer came from (experiment E4/E5 observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Browser result cache (undo / page switch).
    BrowserCache,
    /// Local evaluation over prefetched rows (no round trip).
    LocalEngine,
    /// Delta fast path: the edit re-ran only simple filter/projection
    /// stages through the kernels over cached stage results — no plan,
    /// no scan, no round trip.
    LocalDelta,
    /// Residual-suffix execution: cached stage results served the
    /// unchanged prefix; only the invalidated suffix recomputed locally
    /// (at least one stage through the embedded engine).
    LocalResidual,
    /// Service round trip, answered by the query directory.
    ServiceDirectory,
    /// Service round trip, executed on the warehouse.
    Warehouse,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    pub batch: Batch,
    pub source: Source,
    /// End-to-end latency as seen by the user (includes simulated network).
    pub elapsed: Duration,
    /// How this state's compiled plan relates to the element's previous
    /// plan (`None` when the client had no previous plan or could not
    /// compile locally). Purely observational — execution never depends
    /// on the classification.
    pub delta: Option<PlanDelta>,
}

/// A browser tab connected to the service.
pub struct BrowserSession {
    pub service: Arc<SigmaService>,
    pub token: String,
    pub connection: String,
    pub cache: ResultCache,
    pub local: LocalEngine,
    /// Simulated one-way network latency browser <-> service (applied
    /// twice per round trip).
    pub network_latency: Duration,
    /// Byte gates for prefetched tables and shipped stage results.
    pub prefetch_policy: crate::prefetch::PrefetchPolicy,
    /// Structural key → canonical root-fingerprint key, learned from
    /// `QueryOutcome.root_fingerprint` on each service round trip, so the
    /// cache key converges on the compile-derived fingerprint without the
    /// client ever compiling just to derive a key.
    fingerprint_memo: parking_lot::Mutex<std::collections::HashMap<String, String>>,
    /// Last compiled stage plan per element (lower-cased), diffed against
    /// each edit's plan to classify the delta.
    last_plan: parking_lot::Mutex<std::collections::HashMap<String, StagePlan>>,
    /// Warehouse table schemas learned from service outcomes
    /// (`QueryOutcome::table_schemas`), letting the client compile edits
    /// locally even for tables it never prefetched.
    schema_memo: parking_lot::Mutex<std::collections::HashMap<String, Arc<sigma_value::Schema>>>,
}

/// Schema provider for client-side compiles: prefetched tables first,
/// then schemas learned from service outcomes (a table's schema is
/// enough to compile — residual execution decides separately whether the
/// rows themselves are needed locally).
struct ClientSchemas<'a> {
    local: &'a LocalEngine,
    learned: &'a std::collections::HashMap<String, Arc<sigma_value::Schema>>,
}

impl SchemaProvider for ClientSchemas<'_> {
    fn table_schema(&self, table: &str) -> Option<Arc<sigma_value::Schema>> {
        self.local
            .table_schema(table)
            .or_else(|| self.learned.get(&table.to_ascii_lowercase()).cloned())
    }
}

impl BrowserSession {
    pub fn new(
        service: Arc<SigmaService>,
        token: impl Into<String>,
        connection: impl Into<String>,
    ) -> BrowserSession {
        BrowserSession {
            service,
            token: token.into(),
            connection: connection.into(),
            cache: ResultCache::new(64 << 20),
            local: LocalEngine::new(),
            network_latency: Duration::ZERO,
            prefetch_policy: crate::prefetch::PrefetchPolicy::default(),
            fingerprint_memo: parking_lot::Mutex::new(std::collections::HashMap::new()),
            last_plan: parking_lot::Mutex::new(std::collections::HashMap::new()),
            schema_memo: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    pub fn with_network_latency(mut self, latency: Duration) -> BrowserSession {
        self.network_latency = latency;
        self
    }

    /// Cache key: the element's compiled **root stage fingerprint** — the
    /// Merkle hash over its stage DAG — once the service has told us one
    /// (it rides back on every `QueryOutcome`); the cheap structural key
    /// (JSON-encoded spec closure) before that. Unrelated edits leave the
    /// fingerprint untouched (so entries survive), any semantic change
    /// moves it (so stale entries are simply never addressed again), and
    /// undo re-hits the old entry because the old state re-derives the old
    /// key. No compile runs client-side just to derive a key.
    pub fn fingerprint(&self, workbook: &Workbook, element: &str) -> String {
        let structural = self.structural_fingerprint(workbook, element);
        self.fingerprint_memo
            .lock()
            .get(&structural)
            .cloned()
            .unwrap_or(structural)
    }

    /// Remember the service-assigned canonical key for a structural state.
    fn learn_fingerprint(&self, structural: String, canonical: String) {
        let mut memo = self.fingerprint_memo.lock();
        if memo.len() >= 1024 {
            memo.clear();
        }
        memo.insert(structural, canonical);
    }

    /// The pre-stage-DAG key: the element plus the JSON specs of everything
    /// it depends on. Kept as the fallback for uncompilable states.
    fn structural_fingerprint(&self, workbook: &Workbook, element: &str) -> String {
        let mut key = String::new();
        let deps = sigma_core::graph::resolve_order(workbook, &[element])
            .unwrap_or_else(|_| vec![element.to_string()]);
        for name in &deps {
            if let Some(el) = workbook.element(name) {
                key.push_str(&el.name.to_ascii_lowercase());
                key.push('=');
                key.push_str(&serde_json::to_string(&el.kind).unwrap_or_default());
                key.push(';');
            }
        }
        // Controls feed compiled literals: include all control values.
        for el in workbook.elements() {
            if let sigma_core::ElementKind::Control(c) = &el.kind {
                key.push_str(&format!("@{}={};", el.name, c.value.render()));
            }
        }
        format!("{}:{}", element.to_ascii_lowercase(), key)
    }

    /// Run the prefetch policy against the connection's warehouse. (In the
    /// product this rides on the service API; the simulation reaches the
    /// warehouse through the service's connection registry.)
    pub fn prefetch(
        &self,
        warehouse: &sigma_cdw::Warehouse,
        policy: &PrefetchPolicy,
    ) -> Vec<String> {
        policy.prefetch_all(warehouse, &self.local)
    }

    /// Answer an element query from the cheapest source.
    pub fn query_element(
        &self,
        workbook: &Workbook,
        element: &str,
    ) -> Result<ClientOutcome, ServiceError> {
        let started = Instant::now();
        let structural = self.structural_fingerprint(workbook, element);
        let key = self
            .fingerprint_memo
            .lock()
            .get(&structural)
            .cloned()
            .unwrap_or_else(|| structural.clone());

        // 1. Browser cache.
        if let Some(batch) = self.cache.get(&key) {
            return Ok(ClientOutcome {
                batch,
                source: Source::BrowserCache,
                elapsed: started.elapsed(),
                delta: None,
            });
        }

        let deps = sigma_core::graph::resolve_order(workbook, &[element])
            .unwrap_or_else(|_| vec![element.to_string()]);
        let element_lower = element.to_ascii_lowercase();

        // 2. Local execution. Compile against prefetched tables plus
        // learned schemas, then try to serve the plan's residual suffix
        // from the stage cache + local kernels/engine. The reuse frontier
        // decides the tier: pure kernel recompute over cached parents is
        // the delta fast path; any engine stage makes it residual; no
        // reuse at all is a plain full local evaluation.
        let plan = {
            let learned = self.schema_memo.lock();
            let schemas = ClientSchemas {
                local: &self.local,
                learned: &learned,
            };
            let compiler = Compiler::new(workbook, &schemas, CompileOptions::default());
            compiler.compile_element(element).ok().map(|c| c.stages)
        };
        let mut delta: Option<PlanDelta> = None;
        if let Some(plan) = plan {
            delta = self
                .last_plan
                .lock()
                .get(&element_lower)
                .map(|old| classify_plan_delta(old, &plan));
            let eval = self
                .local
                .execute_plan(&plan)
                .map_err(|e| ServiceError::Warehouse(e.to_string()))?;
            if let Some(eval) = eval {
                // The client compiled this itself, so it knows the
                // canonical fingerprint key without a round trip.
                let canonical = format!("{element_lower}:{}", plan.root_fingerprint().hex());
                self.learn_fingerprint(structural, canonical.clone());
                self.last_plan.lock().insert(element_lower, plan);
                self.cache.put(&canonical, eval.batch.clone(), deps);
                // Tiers are reuse-driven: without a cached frontier this
                // is just a full local evaluation, however it executed.
                let source = if eval.stage_hits == 0 {
                    Source::LocalEngine
                } else if eval.engine_stages == 0 {
                    Source::LocalDelta
                } else {
                    Source::LocalResidual
                };
                return Ok(ClientOutcome {
                    batch: eval.batch,
                    source,
                    elapsed: started.elapsed(),
                    delta,
                });
            }
        }

        // 3. Service round trip (simulated network both ways).
        std::thread::sleep(self.network_latency);
        let json = workbook
            .to_json()
            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        let outcome = self.service.run_query(&QueryRequest {
            token: &self.token,
            connection: &self.connection,
            workbook_json: &json,
            element,
            priority: Priority::Interactive,
        })?;
        std::thread::sleep(self.network_latency);
        // Adopt the service's canonical key for this state: future repeats
        // (and undos back to it) address the entry by fingerprint even if
        // they arrive via a differently-encoded but equivalent spec.
        let canonical = format!(
            "{}:{}",
            element.to_ascii_lowercase(),
            outcome.root_fingerprint.hex()
        );
        self.learn_fingerprint(structural, canonical.clone());
        self.cache.put(&canonical, outcome.batch.clone(), deps);
        // Adopt everything the outcome shipped for next-edit locality:
        // the stage DAG (delta classification baseline), table schemas
        // (local compilation), and small interior stage results (the
        // reuse frontier for residual-suffix execution).
        if delta.is_none() {
            delta = self
                .last_plan
                .lock()
                .get(&element_lower)
                .map(|old| classify_plan_delta(old, &outcome.stages));
        }
        {
            let mut learned = self.schema_memo.lock();
            for (table, schema) in &outcome.table_schemas {
                learned.insert(table.to_ascii_lowercase(), schema.clone());
            }
        }
        for (fingerprint, batch) in &outcome.stage_results {
            if !self.prefetch_policy.wants_stage(batch.byte_size()) {
                continue;
            }
            let tables = outcome
                .stages
                .nodes
                .iter()
                .find(|n| n.fingerprint.hex() == *fingerprint)
                .map(|n| n.all_tables.clone())
                .unwrap_or_default();
            self.local.install_stage(fingerprint, batch.clone(), tables);
        }
        self.last_plan
            .lock()
            .insert(element_lower, outcome.stages.clone());
        Ok(ClientOutcome {
            batch: outcome.batch,
            source: match outcome.served_from {
                ServedFrom::QueryDirectory => Source::ServiceDirectory,
                // Partial stage reuse still executed a residual suffix on
                // the warehouse; the browser-side observable is the same.
                ServedFrom::Warehouse | ServedFrom::StageReuse => Source::Warehouse,
            },
            elapsed: started.elapsed(),
            delta,
        })
    }

    /// Edits to an element invalidate dependent cached results.
    pub fn on_element_edited(&self, element: &str) -> usize {
        self.cache.invalidate_element(element)
    }
}
