//! The browser session: ties the result cache, the local engine, and the
//! service round-trip together, choosing the cheapest source for each
//! query (cache → local evaluation → service).

use std::sync::Arc;
use std::time::{Duration, Instant};

use sigma_core::schema::SchemaProvider;
use sigma_core::{CompileOptions, Compiler, Workbook};
use sigma_service::workload::Priority;
use sigma_service::{QueryRequest, ServedFrom, ServiceError, SigmaService};
use sigma_value::Batch;

use crate::cache::ResultCache;
use crate::local::LocalEngine;
use crate::prefetch::PrefetchPolicy;

/// Where an answer came from (experiment E4/E5 observable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Browser result cache (undo / page switch).
    BrowserCache,
    /// Local evaluation over prefetched rows (no round trip).
    LocalEngine,
    /// Service round trip, answered by the query directory.
    ServiceDirectory,
    /// Service round trip, executed on the warehouse.
    Warehouse,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    pub batch: Batch,
    pub source: Source,
    /// End-to-end latency as seen by the user (includes simulated network).
    pub elapsed: Duration,
}

/// A browser tab connected to the service.
pub struct BrowserSession {
    pub service: Arc<SigmaService>,
    pub token: String,
    pub connection: String,
    pub cache: ResultCache,
    pub local: LocalEngine,
    /// Simulated one-way network latency browser <-> service (applied
    /// twice per round trip).
    pub network_latency: Duration,
    /// Structural key → canonical root-fingerprint key, learned from
    /// `QueryOutcome.root_fingerprint` on each service round trip, so the
    /// cache key converges on the compile-derived fingerprint without the
    /// client ever compiling just to derive a key.
    fingerprint_memo: parking_lot::Mutex<std::collections::HashMap<String, String>>,
}

/// Schema provider over the local engine's prefetched tables only.
struct LocalSchemas<'a>(&'a LocalEngine);

impl SchemaProvider for LocalSchemas<'_> {
    fn table_schema(&self, table: &str) -> Option<Arc<sigma_value::Schema>> {
        self.0.table_schema(table)
    }
}

impl BrowserSession {
    pub fn new(
        service: Arc<SigmaService>,
        token: impl Into<String>,
        connection: impl Into<String>,
    ) -> BrowserSession {
        BrowserSession {
            service,
            token: token.into(),
            connection: connection.into(),
            cache: ResultCache::new(64 << 20),
            local: LocalEngine::new(),
            network_latency: Duration::ZERO,
            fingerprint_memo: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    pub fn with_network_latency(mut self, latency: Duration) -> BrowserSession {
        self.network_latency = latency;
        self
    }

    /// Cache key: the element's compiled **root stage fingerprint** — the
    /// Merkle hash over its stage DAG — once the service has told us one
    /// (it rides back on every `QueryOutcome`); the cheap structural key
    /// (JSON-encoded spec closure) before that. Unrelated edits leave the
    /// fingerprint untouched (so entries survive), any semantic change
    /// moves it (so stale entries are simply never addressed again), and
    /// undo re-hits the old entry because the old state re-derives the old
    /// key. No compile runs client-side just to derive a key.
    pub fn fingerprint(&self, workbook: &Workbook, element: &str) -> String {
        let structural = self.structural_fingerprint(workbook, element);
        self.fingerprint_memo
            .lock()
            .get(&structural)
            .cloned()
            .unwrap_or(structural)
    }

    /// Remember the service-assigned canonical key for a structural state.
    fn learn_fingerprint(&self, structural: String, canonical: String) {
        let mut memo = self.fingerprint_memo.lock();
        if memo.len() >= 1024 {
            memo.clear();
        }
        memo.insert(structural, canonical);
    }

    /// The pre-stage-DAG key: the element plus the JSON specs of everything
    /// it depends on. Kept as the fallback for uncompilable states.
    fn structural_fingerprint(&self, workbook: &Workbook, element: &str) -> String {
        let mut key = String::new();
        let deps = sigma_core::graph::resolve_order(workbook, &[element])
            .unwrap_or_else(|_| vec![element.to_string()]);
        for name in &deps {
            if let Some(el) = workbook.element(name) {
                key.push_str(&el.name.to_ascii_lowercase());
                key.push('=');
                key.push_str(&serde_json::to_string(&el.kind).unwrap_or_default());
                key.push(';');
            }
        }
        // Controls feed compiled literals: include all control values.
        for el in workbook.elements() {
            if let sigma_core::ElementKind::Control(c) = &el.kind {
                key.push_str(&format!("@{}={};", el.name, c.value.render()));
            }
        }
        format!("{}:{}", element.to_ascii_lowercase(), key)
    }

    /// Run the prefetch policy against the connection's warehouse. (In the
    /// product this rides on the service API; the simulation reaches the
    /// warehouse through the service's connection registry.)
    pub fn prefetch(
        &self,
        warehouse: &sigma_cdw::Warehouse,
        policy: &PrefetchPolicy,
    ) -> Vec<String> {
        policy.prefetch_all(warehouse, &self.local)
    }

    /// Answer an element query from the cheapest source.
    pub fn query_element(
        &self,
        workbook: &Workbook,
        element: &str,
    ) -> Result<ClientOutcome, ServiceError> {
        let started = Instant::now();
        let structural = self.structural_fingerprint(workbook, element);
        let key = self
            .fingerprint_memo
            .lock()
            .get(&structural)
            .cloned()
            .unwrap_or_else(|| structural.clone());

        // 1. Browser cache.
        if let Some(batch) = self.cache.get(&key) {
            return Ok(ClientOutcome {
                batch,
                source: Source::BrowserCache,
                elapsed: started.elapsed(),
            });
        }

        let deps = sigma_core::graph::resolve_order(workbook, &[element])
            .unwrap_or_else(|_| vec![element.to_string()]);

        // 2. Local evaluation over prefetched tables: compile against the
        // local schemas; if that succeeds and every scanned table is
        // prefetched, evaluate without a round trip.
        let local_schemas = LocalSchemas(&self.local);
        let compiler = Compiler::new(workbook, &local_schemas, CompileOptions::default());
        if let Ok(compiled) = compiler.compile_element(element) {
            if self.local.can_answer(&compiled.query) {
                let batch = self
                    .local
                    .evaluate(&compiled.sql)
                    .map_err(|e| ServiceError::Warehouse(e.to_string()))?;
                self.cache.put(&key, batch.clone(), deps);
                return Ok(ClientOutcome {
                    batch,
                    source: Source::LocalEngine,
                    elapsed: started.elapsed(),
                });
            }
        }

        // 3. Service round trip (simulated network both ways).
        std::thread::sleep(self.network_latency);
        let json = workbook
            .to_json()
            .map_err(|e| ServiceError::BadRequest(e.to_string()))?;
        let outcome = self.service.run_query(&QueryRequest {
            token: &self.token,
            connection: &self.connection,
            workbook_json: &json,
            element,
            priority: Priority::Interactive,
        })?;
        std::thread::sleep(self.network_latency);
        // Adopt the service's canonical key for this state: future repeats
        // (and undos back to it) address the entry by fingerprint even if
        // they arrive via a differently-encoded but equivalent spec.
        let canonical = format!(
            "{}:{}",
            element.to_ascii_lowercase(),
            outcome.root_fingerprint.hex()
        );
        self.learn_fingerprint(structural, canonical.clone());
        self.cache.put(&canonical, outcome.batch.clone(), deps);
        Ok(ClientOutcome {
            batch: outcome.batch,
            source: match outcome.served_from {
                ServedFrom::QueryDirectory => Source::ServiceDirectory,
                // Partial stage reuse still executed a residual suffix on
                // the warehouse; the browser-side observable is the same.
                ServedFrom::Warehouse | ServedFrom::StageReuse => Source::Warehouse,
            },
            elapsed: started.elapsed(),
        })
    }

    /// Edits to an element invalidate dependent cached results.
    pub fn on_element_edited(&self, element: &str) -> usize {
        self.cache.invalidate_element(element)
    }
}
