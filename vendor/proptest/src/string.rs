//! Regex-subset string generation, covering the pattern shapes property
//! tests actually write: sequences of literal characters and character
//! classes (`[a-z0-9_]`, ranges and literals) with optional `{m}`,
//! `{m,n}`, `?`, `*`, `+` repetition.

use rand::rngs::StdRng;
use rand::RngExt;

struct Part {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

pub fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let parts = parse(pattern);
    let mut out = String::new();
    for part in &parts {
        let count = if part.min == part.max {
            part.min
        } else {
            rng.random_range(part.min..=part.max)
        };
        for _ in 0..count {
            let index = rng.random_range(0..part.choices.len());
            out.push(part.choices[index]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Part> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut parts = Vec::new();
    let mut pos = 0;
    while pos < chars.len() {
        let choices = match chars[pos] {
            '[' => {
                let close = chars[pos..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let class: Vec<char> = chars[pos + 1..pos + close].to_vec();
                pos += close + 1;
                expand_class(&class, pattern)
            }
            '\\' => {
                pos += 1;
                let escaped = *chars
                    .get(pos)
                    .unwrap_or_else(|| panic!("trailing '\\' in pattern {pattern:?}"));
                pos += 1;
                match escaped {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z')
                        .chain('A'..='Z')
                        .chain('0'..='9')
                        .chain(std::iter::once('_'))
                        .collect(),
                    's' => vec![' '],
                    other => vec![other],
                }
            }
            // Metacharacters of regex features the shim does not implement
            // must fail loudly: treating them as literals would silently
            // generate malformed inputs and void the property being tested.
            meta @ ('|' | '(' | ')' | '.' | '^' | '$') => {
                panic!(
                    "regex feature '{meta}' is not supported by the proptest shim \
                     (pattern {pattern:?}); escape it as '\\{meta}' for a literal, \
                     or extend vendor/proptest/src/string.rs"
                );
            }
            literal => {
                pos += 1;
                vec![literal]
            }
        };
        let (min, max) = parse_repetition(&chars, &mut pos, pattern);
        parts.push(Part { choices, min, max });
    }
    parts
}

fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
    let mut choices = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
            for c in lo..=hi {
                choices.push(c);
            }
            i += 3;
        } else {
            choices.push(class[i]);
            i += 1;
        }
    }
    assert!(
        !choices.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    choices
}

fn parse_repetition(chars: &[char], pos: &mut usize, pattern: &str) -> (usize, usize) {
    match chars.get(*pos) {
        Some('{') => {
            let close = chars[*pos..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
            let body: String = chars[*pos + 1..*pos + close].iter().collect();
            *pos += close + 1;
            let bounds = match body.split_once(',') {
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
            };
            assert!(
                bounds.0 <= bounds.1,
                "inverted repetition in pattern {pattern:?}"
            );
            bounds
        }
        Some('?') => {
            *pos += 1;
            (0, 1)
        }
        Some('*') => {
            *pos += 1;
            (0, 8)
        }
        Some('+') => {
            *pos += 1;
            (1, 8)
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn identifier_pattern() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad length: {s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_space() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = generate_from_pattern("[A-Za-z ]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
        }
    }

    #[test]
    #[should_panic(expected = "regex feature '(' is not supported")]
    fn unsupported_metacharacters_are_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        generate_from_pattern("(ab|cd)[0-9]", &mut rng);
    }

    #[test]
    fn escaped_metacharacters_are_literals() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(generate_from_pattern("a\\.b\\|c", &mut rng), "a.b|c");
    }

    #[test]
    fn literals_and_suffixes() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = generate_from_pattern("ab[0-9]{2}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with("ab"));
    }
}
