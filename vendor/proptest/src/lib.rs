//! Minimal property-testing shim, API-compatible with the subset of
//! `proptest` this workspace uses: the `proptest!` macro, strategy
//! combinators (`prop_map`, `prop_filter`, `prop_recursive`,
//! `prop_oneof!`, `Just`, `any`, ranges, simple regex-style string
//! strategies), `proptest::collection::vec`, `proptest::option::of`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real proptest, by design:
//!
//! * **Deterministic by default.** Each test's RNG stream is seeded from a
//!   hash of the test name, so every run — local or CI — exercises the
//!   identical case sequence. Set `PROPTEST_RNG_SEED=<u64>` to explore a
//!   different stream, and `PROPTEST_CASES=<n>` to scale the case count.
//! * **No shrinking.** On failure the harness prints the case number and
//!   seed; re-running reproduces it exactly, and the seed can be pinned in
//!   `proptest-regressions/<test>.seeds` so it is re-checked first on every
//!   future run (see `runner`).

pub mod collection;
pub mod config;
pub mod option;
pub mod runner;
pub mod strategy;
pub mod string;

pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each contained `#[test] fn` as a property: arguments are drawn from
/// their strategies for `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::runner::run(
                    stringify!($name),
                    env!("CARGO_MANIFEST_DIR"),
                    &__config,
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        $body
                    },
                );
            }
        )*
    };
}

/// `prop_assert!` and friends panic directly (no shrink phase to resume),
/// so they are thin wrappers over the std assertion macros.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
