//! Deterministic case runner with checked-in regression seeds.
//!
//! Seed derivation: the base seed is a hash of the test name (stable across
//! runs, platforms, and case-count changes), mixed with the case index.
//! When a case fails, the harness prints a `seed=0x…` line; pinning that
//! seed in `<crate>/proptest-regressions/<test_name>.seeds` (one
//! hexadecimal or decimal seed per line, `#` comments allowed) makes every
//! future run of that test re-check the failing input first.

use crate::config::ProptestConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;

pub fn run(
    test_name: &str,
    manifest_dir: &str,
    config: &ProptestConfig,
    body: impl Fn(&mut StdRng),
) {
    for seed in regression_seeds(manifest_dir, test_name) {
        run_case(test_name, "regression", seed, &body);
    }
    let base = base_seed(test_name);
    for case in 0..config.cases {
        let seed = mix(base, case as u64);
        run_case(
            test_name,
            &format!("case {case}/{}", config.cases),
            seed,
            &body,
        );
    }
}

fn run_case(test_name: &str, label: &str, seed: u64, body: &impl Fn(&mut StdRng)) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(seed);
        body(&mut rng);
    }));
    if let Err(payload) = result {
        eprintln!(
            "proptest failure: test={test_name} {label} seed={seed:#018x}\n\
             pin it by adding that seed to proptest-regressions/{test_name}.seeds"
        );
        panic::resume_unwind(payload);
    }
}

fn base_seed(test_name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
        return parse_seed(&seed)
            .unwrap_or_else(|| panic!("PROPTEST_RNG_SEED must be a u64, got {seed:?}"));
    }
    fnv1a(test_name.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn mix(base: u64, case: u64) -> u64 {
    // splitmix64 finalizer over base + golden-ratio stride.
    let mut z = base.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn regression_seeds(manifest_dir: &str, test_name: &str) -> Vec<u64> {
    let path = Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{test_name}.seeds"));
    let Ok(contents) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    contents
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| {
            parse_seed(line)
                .unwrap_or_else(|| panic!("bad seed line {line:?} in {}", path.display()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(base_seed("some_test"), base_seed("some_test"));
        assert_ne!(base_seed("a"), base_seed("b"));
        assert_ne!(mix(1, 0), mix(1, 1));
    }

    #[test]
    fn parse_seed_formats() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed(" 0X10 "), Some(16));
        assert_eq!(parse_seed("nope"), None);
    }
}
