//! Strategy trait and combinators.

use rand::rngs::StdRng;
use rand::RngExt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type. Unlike the real proptest
/// there is no value tree / shrinking: a strategy is just a deterministic
/// function of the RNG stream.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, map }
    }

    fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            predicate,
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// nested positions and returns the composite. `depth` bounds nesting;
    /// the size hints of the real API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            let leaf = self.clone().boxed();
            let branch = recurse(current).boxed();
            // At each level, sometimes bottom out early so generated trees
            // vary in depth rather than all saturating the bound.
            current = Union::new(vec![leaf, branch.clone(), branch]).boxed();
        }
        current
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut StdRng| self.generate(rng)))
    }
}

/// Type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

// ---------------------------------------------------------------------
// combinators
// ---------------------------------------------------------------------

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let index = rng.random_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Modest magnitudes; tests that need full-range floats should use
        // explicit range strategies.
        (rng.random::<f64>() - 0.5) * 2e6
    }
}

// ---------------------------------------------------------------------
// ranges as strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

// ---------------------------------------------------------------------
// tuples of strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// `&'static str` acts as a regex-subset string strategy (see `string`).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn ranges_and_map() {
        let strategy = (0i64..10).prop_map(|v| v * 2);
        let mut rng = rng();
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn filter_rejects() {
        let strategy = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = rng();
        for _ in 0..50 {
            assert!(strategy.generate(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn union_uses_all_options() {
        let strategy = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut rng = rng();
        let values: std::collections::BTreeSet<i64> =
            (0..100).map(|_| strategy.generate(&mut rng)).collect();
        assert_eq!(values.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn recursive_bounds_depth() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strategy = Just(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = rng();
        let mut saw_node = false;
        for _ in 0..100 {
            let tree = strategy.generate(&mut rng);
            assert!(depth(&tree) <= 3);
            saw_node |= matches!(tree, Tree::Node(..));
        }
        assert!(saw_node);
    }
}
