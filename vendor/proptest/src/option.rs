//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        // Match the real proptest's default weighting: None a quarter of
        // the time, so null paths stay exercised without dominating.
        if rng.random::<f64>() < 0.25 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn produces_both_arms() {
        let strategy = of(0i64..10);
        let mut rng = StdRng::seed_from_u64(8);
        let values: Vec<Option<i64>> = (0..200).map(|_| strategy.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
    }
}
