//! Run configuration. Defaults are fixed so CI is deterministic; the
//! `PROPTEST_CASES` environment variable scales the case count without a
//! code change.

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: scaled(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig::with_cases(256)
    }
}

/// Apply the optional `PROPTEST_CASES` override, interpreted as the new
/// default-count; explicit per-test counts scale proportionally so their
/// relative weighting (heavy oracle tests run fewer cases) is preserved.
fn scaled(cases: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(target) => ((cases as u64 * target) / 256).max(1) as u32,
        None => cases,
    }
}
