//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max_inclusive {
            self.size.min
        } else {
            rng.random_range(self.size.min..=self.size.max_inclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lengths_respect_range() {
        let strategy = vec(0i64..10, 2..5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }
}
