//! Minimal deterministic PRNG shim for the subset of `rand` this workspace
//! uses: `StdRng::seed_from_u64`, `random::<f64>()`, `random::<bool>()`,
//! and `random_range(..)` over integer ranges. The generator is
//! xoshiro256++ seeded via splitmix64, so identical seeds produce identical
//! streams on every platform — which is what the synthetic-data generators
//! rely on for reproducible workloads.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring the `rand` 0.9 `Rng` surface
/// (`random`, `random_range`, `random_bool`).
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> RngExt for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types usable with `random_range`.
pub trait SampleUniform: Copy {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi_inclusive: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: $t, hi_inclusive: $t) -> $t {
                assert!(lo <= hi_inclusive, "empty sampling range");
                let span = (hi_inclusive as i128 - lo as i128) as u128 + 1;
                // Multiply-shift bounded sampling; bias is < 2^-64 per draw,
                // irrelevant for synthetic data generation.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: f64, hi_inclusive: f64) -> f64 {
        lo + (hi_inclusive - lo) * f64::sample(rng)
    }
}

/// Range shapes accepted by `random_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + HasPredecessor> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty sampling range");
        T::sample_between(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end())
    }
}

/// Internal helper so half-open integer ranges can be closed at `end - 1`.
pub trait HasPredecessor {
    fn predecessor(self) -> Self;
}

macro_rules! impl_has_predecessor {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            fn predecessor(self) -> $t {
                self - 1
            }
        }
    )*};
}

impl_has_predecessor!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl HasPredecessor for f64 {
    fn predecessor(self) -> f64 {
        // Half-open float ranges already exclude `end` with probability 1.
        self
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.random_range(3i64..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }
}
