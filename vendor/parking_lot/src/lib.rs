//! Minimal API-compatible shim for the subset of `parking_lot` this
//! workspace uses, implemented over `std::sync`. The semantic difference
//! that matters here is the non-poisoning lock API: `lock()` / `read()` /
//! `write()` return guards directly instead of `Result`s, and `Condvar`
//! waits on a `MutexGuard` in place.

use std::sync;
use std::time::Duration;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Held in an Option so Condvar::wait can take it, run the std wait
    // (which consumes and returns the guard), and put it back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard present outside of Condvar::wait")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard present outside of Condvar::wait")
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner);
        RwLockWriteGuard { inner }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        handle.join().unwrap();
        assert!(*pair.0.lock());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let lock = RwLock::new(7);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 14);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 8);
    }
}
