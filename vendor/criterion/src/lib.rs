//! Minimal benchmark-harness shim, API-compatible with the subset of
//! `criterion` the bench suite uses: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `Throughput`, and
//! `black_box`.
//!
//! Measurement model: per benchmark, a short warm-up, then timed samples
//! until the measurement budget is spent; the median per-iteration time is
//! reported to stdout. When `CRITERION_JSON` names a file, one JSON line
//! per benchmark (`{"bench": ..., "median_ns": ..., ...}`) is appended so
//! a trajectory of baselines can be checked in.

pub use std::hint::black_box;

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// identifiers
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

// ---------------------------------------------------------------------
// measurement
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_count: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_count: 20,
            // Keep the default budget small: this harness is for tracking
            // relative trends, not publication-grade statistics.
            measurement_time: Duration::from_millis(300),
        }
    }
}

#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_benchmark(&id.into_benchmark_id().id, self.settings, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, count: usize) -> &mut Self {
        self.settings.sample_count = count.max(1);
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.settings.measurement_time = time;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&id, self.settings, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: Vec<Duration>,
    settings: Settings,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warmup_deadline = Instant::now() + self.settings.measurement_time / 10;
        loop {
            black_box(routine());
            if Instant::now() >= warmup_deadline {
                break;
            }
        }
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_count {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    pub fn iter_batched<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_benchmark(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        settings,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("bench {id:<50} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" {:.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Throughput::Bytes(n) => {
            format!(" {:.0} B/s", n as f64 / median.as_secs_f64())
        }
    });
    println!(
        "bench {id:<50} median {:>12} (n={}){}",
        format_duration(median),
        samples.len(),
        rate.unwrap_or_default(),
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"bench\": \"{id}\", \"median_ns\": {}, \"samples\": {}}}",
                median.as_nanos(),
                samples.len(),
            );
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

// ---------------------------------------------------------------------
// harness entry points
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        group.bench_function("noop", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
