//! Derive macros for the vendored `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline): a small hand parser extracts the type's shape —
//! struct/enum name, field names or arities, variant list — and codegen
//! builds the `impl` blocks as source text. Supports exactly what the
//! workspace needs: non-generic structs (named, tuple, unit) and enums
//! whose variants are unit, tuple, or struct-like, encoded with serde's
//! default externally-tagged conventions.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// parsing
// ---------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attrs_and_vis(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("expected attribute body after '#', got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &mut Tokens) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, got {other:?}"),
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = expect_ident(&mut tokens);
    let name = expect_ident(&mut tokens);
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type `{name}`");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_struct_shape(&mut tokens)),
        "enum" => Kind::Enum(parse_variants(&mut tokens)),
        other => panic!("cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

fn parse_struct_shape(tokens: &mut Tokens) -> Shape {
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("unexpected token after struct name: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            return fields;
        }
        fields.push(expect_ident(&mut tokens));
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        skip_type_until_comma(&mut tokens);
    }
}

/// Consume type tokens up to (and including) the next comma that is not
/// nested inside angle brackets. Parens/brackets/braces arrive as atomic
/// groups, so only `<`/`>` depth needs tracking.
fn skip_type_until_comma(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut count = 0usize;
    let mut in_segment = false;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    if in_segment {
                        count += 1;
                    }
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(tokens: &mut Tokens) -> Vec<(String, Shape)> {
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected enum body, got {other:?}"),
    };
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            return variants;
        }
        let name = expect_ident(&mut tokens);
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_type_until_comma(&mut tokens);
        variants.push((name, shape));
    }
}

// ---------------------------------------------------------------------
// codegen
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        Kind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Shape::Named(fields)) => gen_named_map(fields, "self."),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, shape)| match shape {
                    Shape::Unit => format!(
                        "{name}::{vname} => ::serde::Content::Str(String::from(\"{vname}\")),"
                    ),
                    Shape::Tuple(1) => format!(
                        "{name}::{vname}(__f0) => ::serde::Content::Map(vec![(String::from(\"{vname}\"), ::serde::Serialize::to_content(__f0))]),"
                    ),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(String::from(\"{vname}\"), ::serde::Content::Seq(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(String::from(\"{vname}\"), ::serde::Content::Map(vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_named_map(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), ::serde::Serialize::to_content(&{prefix}{f}))"))
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Shape::Unit) => format!(
            "match __c {{ ::serde::Content::Null => Ok({name}), _ => Err(::serde::Error::expected(\"{name}\", __c)) }}"
        ),
        Kind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Kind::Struct(Shape::Tuple(n)) => format!(
            "{{ let __seq = __c.as_seq().ok_or_else(|| ::serde::Error::expected(\"{name}\", __c))?;\n\
               if __seq.len() != {n} {{ return Err(::serde::Error::custom(format!(\"{name}: expected {n} elements, got {{}}\", __seq.len()))); }}\n\
               Ok({name}({})) }}",
            (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Kind::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| gen_field_init(name, f, "__c"))
                .collect();
            format!(
                "{{ if __c.as_map().is_none() {{ return Err(::serde::Error::expected(\"struct {name}\", __c)); }}\n\
                   Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_field_init(type_name: &str, field: &str, source: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_content({source}.field(\"{field}\"))\
             .map_err(|e| ::serde::Error::custom(format!(\"{type_name}.{field}: {{e}}\")))?"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Shape)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, shape)| matches!(shape, Shape::Unit))
        .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .map(|(vname, shape)| match shape {
            Shape::Unit => format!(
                "\"{vname}\" => match __payload {{ ::serde::Content::Null => Ok({name}::{vname}), _ => Err(::serde::Error::custom(\"{name}::{vname} takes no data\")) }},"
            ),
            Shape::Tuple(1) => format!(
                "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_content(__payload).map_err(|e| ::serde::Error::custom(format!(\"{name}::{vname}: {{e}}\")))?)),"
            ),
            Shape::Tuple(n) => format!(
                "\"{vname}\" => {{ let __seq = __payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"{name}::{vname} data\", __payload))?;\n\
                     if __seq.len() != {n} {{ return Err(::serde::Error::custom(format!(\"{name}::{vname}: expected {n} elements, got {{}}\", __seq.len()))); }}\n\
                     Ok({name}::{vname}({})) }},",
                (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| gen_field_init(name, f, "__payload"))
                    .collect();
                format!(
                    "\"{vname}\" => {{ if __payload.as_map().is_none() {{ return Err(::serde::Error::expected(\"{name}::{vname} data\", __payload)); }}\n\
                         Ok({name}::{vname} {{ {} }}) }},",
                    inits.join(", ")
                )
            }
        })
        .collect();
    format!(
        "match __c {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::Error::expected(\"{name} variant\", __other)),\n\
         }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
