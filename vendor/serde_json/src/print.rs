//! JSON text output (compact and pretty, 2-space indent) over the serde
//! shim's `Content` tree.

use serde::Content;
use std::fmt::Write;

pub(crate) fn print(content: &Content, pretty: bool) -> String {
    let mut out = String::new();
    write_content(&mut out, content, pretty, 0);
    out
}

fn write_content(out: &mut String, content: &Content, pretty: bool, indent: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, indent + 1);
                write_content(out, item, pretty, indent + 1);
            }
            newline_indent(out, pretty, indent);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, pretty, indent + 1);
                write_escaped(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_content(out, value, pretty, indent + 1);
            }
            newline_indent(out, pretty, indent);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, pretty: bool, indent: usize) {
    if pretty {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trippable repr; ensure a decimal point or
        // exponent survives so the value reads back as a float-typed token
        // only when precision matters (integral floats legally print bare).
        let _ = write!(out, "{v}");
    } else {
        // JSON has no NaN/Infinity; mirror the lossy convention of
        // serializers that substitute null.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
