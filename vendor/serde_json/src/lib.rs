//! Minimal JSON shim, API-compatible with the subset of `serde_json` this
//! workspace uses: `Value`/`Map`, `to_string`/`to_string_pretty`,
//! `from_str`, `to_value`, and the `json!` macro.
//!
//! Everything funnels through the serde shim's `Content` tree: printing
//! walks a `Content`, parsing produces one, and typed (de)serialization
//! delegates to the `Serialize`/`Deserialize` impls.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

mod parse;
mod print;

pub use parse::from_str;

/// Error for both parsing and (de)serialization failures.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e)
    }
}

// ---------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------

/// A parsed/constructed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

/// JSON object preserving insertion order, like `serde_json`'s
/// `preserve_order` map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing any previous value for the key; returns the old
    /// value if present.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v),
            Value::Number(Number::U64(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub(crate) fn from_content(content: &Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::I64(*v)),
            Content::U64(v) => Value::Number(Number::U64(*v)),
            Content::F64(v) => Value::Number(Number::F64(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => Value::Object(
                entries
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            ),
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object-key lookup; missing keys and non-objects index to `Null`,
    /// matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        const NULL: &Value = &Value::Null;
        self.get(key).unwrap_or(NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        const NULL: &Value = &Value::Null;
        self.as_array()
            .and_then(|items| items.get(index))
            .unwrap_or(NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::I64(v)) => Content::I64(*v),
            Value::Number(Number::U64(v)) => Content::U64(*v),
            Value::Number(Number::F64(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Serialize::to_content).collect()),
            Value::Object(map) => Content::Map(
                map.iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Value, serde::Error> {
        Ok(Value::from_content(content))
    }
}

impl Serialize for Map {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&print::print(&self.to_content(), false))
    }
}

// ---------------------------------------------------------------------
// entry points
// ---------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.to_content(), false))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::print(&value.to_content(), true))
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(&value.to_content())
}

pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_content(&value.to_content()).map_err(Error::from)
}

/// Build a [`Value`] with JSON-ish syntax. Object and array literals nest;
/// any other value position accepts a Rust expression implementing
/// `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_object_entries!(__map, $($body)+);
        $crate::Value::Object(__map)
    }};
    ([]) => { $crate::Value::Array(Vec::new()) };
    ([ $($body:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let __items = {
            let mut __items: Vec<$crate::Value> = Vec::new();
            $crate::json_array_items!(__items, $($body)+);
            __items
        };
        $crate::Value::Array(__items)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $($crate::json_object_entries!($map, $($rest)*);)?
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $($crate::json_object_entries!($map, $($rest)*);)?
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $($crate::json_object_entries!($map, $($rest)*);)?
    };
    ($map:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::to_value(&$value));
    };
    ($map:ident,) => {};
    ($map:ident) => {};
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($items:ident, null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $($crate::json_array_items!($items, $($rest)*);)?
    };
    ($items:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $($crate::json_array_items!($items, $($rest)*);)?
    };
    ($items:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $($crate::json_array_items!($items, $($rest)*);)?
    };
    ($items:ident, $value:expr , $($rest:tt)*) => {
        $items.push($crate::to_value(&$value));
        $crate::json_array_items!($items, $($rest)*);
    };
    ($items:ident, $value:expr) => {
        $items.push($crate::to_value(&$value));
    };
    ($items:ident,) => {};
    ($items:ident) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let flag = true;
        let v = json!({
            "title": "hello",
            "n": 3,
            "nested": {"url": "x", "deep": [1, 2, {"k": null}]},
            "cond": if flag { "yes" } else { "no" },
        });
        assert_eq!(v.get("title").unwrap().as_str(), Some("hello"));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("cond").unwrap().as_str(), Some("yes"));
        let deep = v
            .get("nested")
            .unwrap()
            .get("deep")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(deep.len(), 3);
        assert!(deep[2].get("k").unwrap().is_null());
    }

    #[test]
    fn string_round_trip() {
        let v = json!({"a": [1, 2.5, "x\n\"y\""], "b": null, "c": true});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(back_pretty, v);
    }

    #[test]
    fn map_insert_replaces() {
        let mut map = Map::new();
        map.insert("k".into(), json!(1));
        let old = map.insert("k".into(), json!(2));
        assert_eq!(old, Some(json!(1)));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get("k").unwrap().as_i64(), Some(2));
    }
}
