//! Recursive-descent JSON parser producing the serde shim's `Content`
//! tree, then handing it to a `Deserialize` impl.

use crate::Error;
use serde::{Content, Deserialize};

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    T::from_content(&content).map_err(Error::from)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl std::fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Content::Null),
            Some(b't') if self.consume_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require a following \uXXXX
                                // low surrogate.
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"a\\u00e9\\n\"").unwrap(), "aé\n");
    }

    #[test]
    fn parses_nested() {
        let v: crate::Value = from_str(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("c").unwrap().is_null());
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<crate::Value>("{").is_err());
        assert!(from_str::<crate::Value>("1 2").is_err());
        assert!(from_str::<crate::Value>("nul").is_err());
    }
}
