//! Minimal API-compatible shim for the subset of `crossbeam` this workspace
//! uses (`crossbeam::thread::scope` with spawned workers), implemented over
//! `std::thread::scope`.

pub mod thread {
    use std::any::Any;

    /// Handle passed to spawned closures. The real crossbeam passes the
    /// scope itself so workers can spawn nested threads; nothing in this
    /// workspace does, so this is a token that only exists to satisfy the
    /// `FnOnce(&Scope) -> T` closure shape.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Like `crossbeam::thread::scope`: runs `f` with a scope in which
    /// threads borrowing from the enclosing stack frame can be spawned, and
    /// returns `Err` (instead of resuming the unwind) if any unjoined
    /// spawned thread, or `f` itself, panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_workers() {
            let data = [1, 2, 3, 4];
            let total: i64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn scope_reports_panics_as_err() {
            let result = super::scope(|s| {
                s.spawn(|_| panic!("worker boom"));
            });
            assert!(result.is_err());
        }
    }
}
