//! Minimal serialization framework shim, API-compatible with the subset of
//! `serde` this workspace uses: the `Serialize`/`Deserialize` traits, their
//! derive macros, and enough std impls for the workbook document model.
//!
//! Instead of serde's visitor architecture, both traits go through a single
//! self-describing tree, [`Content`] — `Serialize` produces one,
//! `Deserialize` consumes one. Formats (`serde_json`) then only need to
//! print and parse `Content`. The encoding conventions match serde's
//! defaults (externally-tagged enums, structs as maps, unit as null) so
//! data written by the real serde would parse identically.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Self-describing data tree shared by serialization and deserialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-value pairs in insertion order (JSON objects, struct fields,
    /// enum payloads).
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Map lookup used by derived struct deserializers: a missing field
    /// reads as `Null`, which `Option<T>` accepts and everything else
    /// rejects with a clear error.
    pub fn field(&self, name: &str) -> &Content {
        const NULL: &Content = &Content::Null;
        match self {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(NULL),
            _ => NULL,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced by `Deserialize` implementations.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl fmt::Display) -> Error {
        Error {
            message: message.to_string(),
        }
    }

    pub fn expected(what: &str, got: &Content) -> Error {
        Error::custom(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// std impls: primitives
// ---------------------------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<$t, Error> {
                let wide: i128 = match *content {
                    Content::I64(v) => v as i128,
                    Content::U64(v) => v as i128,
                    // Accept integral floats: JSON readers may widen.
                    Content::F64(v) if v.fract() == 0.0 => v as i128,
                    ref other => return Err(Error::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t)
                    )))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        Content::U64(*self)
    }
}

impl Deserialize for u64 {
    fn from_content(content: &Content) -> Result<u64, Error> {
        match *content {
            Content::U64(v) => Ok(v),
            Content::I64(v) if v >= 0 => Ok(v as u64),
            Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as u64),
            ref other => Err(Error::expected("unsigned integer", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<f64, Error> {
        match *content {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            ref other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<f32, Error> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<bool, Error> {
        match *content {
            Content::Bool(v) => Ok(v),
            ref other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<char, Error> {
        let s = content
            .as_str()
            .ok_or_else(|| Error::expected("char", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<String, Error> {
        content
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("string", content))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<(), Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------
// std impls: containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Option<T>, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Vec<T>, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Box<T>, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Arc<T>, Error> {
        T::from_content(content).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(content: &Content) -> Result<Rc<T>, Error> {
        T::from_content(content).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<BTreeMap<String, V>, Error> {
        content
            .as_map()
            .ok_or_else(|| Error::expected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        // Sort for stable output; HashMap iteration order is arbitrary.
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_content(content: &Content) -> Result<HashMap<String, V, S>, Error> {
        content
            .as_map()
            .ok_or_else(|| Error::expected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let seq = content.as_seq().ok_or_else(|| Error::expected("tuple", content))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {} elements", seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_content(&42i64.to_content()).unwrap(), 42);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<i64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Vec::<bool>::from_content(&vec![true, false].to_content()).unwrap(),
            vec![true, false]
        );
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let map = Content::Map(vec![("a".into(), Content::I64(1))]);
        assert_eq!(map.field("a"), &Content::I64(1));
        assert_eq!(map.field("b"), &Content::Null);
        assert_eq!(Option::<i64>::from_content(map.field("b")).unwrap(), None);
        assert!(i64::from_content(map.field("b")).is_err());
    }

    #[test]
    fn integer_range_checked() {
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
        assert_eq!(u8::from_content(&Content::I64(255)).unwrap(), 255);
    }
}
