//! Property-based tests over the core invariants.

use proptest::prelude::*;
use sigma_workbook::cdw::Warehouse;
use sigma_workbook::expr::{parse_formula, Formula};
use sigma_workbook::sql::{parse_query, printer::print_query, Dialect};
use sigma_workbook::value::{calendar, Batch, Column, DataType, Field, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// calendar
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn calendar_civil_bijection(days in -1_000_000i32..1_000_000) {
        let (y, m, d) = calendar::civil_from_days(days);
        prop_assert_eq!(calendar::days_from_civil(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!(d >= 1 && d <= calendar::last_day_of_month(y, m));
    }

    #[test]
    fn calendar_format_parse_round_trip(days in -500_000i32..500_000) {
        let text = calendar::format_date(days);
        prop_assert_eq!(calendar::parse_date(&text), Some(days));
    }

    #[test]
    fn date_add_diff_consistent(days in -100_000i32..100_000, n in -500i64..500) {
        let added = calendar::date_add(days, calendar::DateUnit::Month, n);
        let diff = calendar::date_diff(days, added, calendar::DateUnit::Month);
        // Clamping can shorten but never overshoot.
        prop_assert!((diff - n).abs() <= 1, "add {n} months -> diff {diff}");
        prop_assert_eq!(calendar::date_add(days, calendar::DateUnit::Day, n as i64), days + n as i32);
    }
}

// ---------------------------------------------------------------------
// formula language: print . parse == identity
// ---------------------------------------------------------------------

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Formula::lit),
        (-100.0f64..100.0).prop_map(|f| Formula::lit((f * 4.0).round() / 4.0)),
        "[a-z][a-z0-9_]{0,6}".prop_map(Formula::col),
        "[A-Za-z ]{1,12}"
            .prop_filter("trimmed non-empty, no brackets", |s| {
                let t = s.trim();
                !t.is_empty() && !t.contains(['[', ']', '/'])
            })
            .prop_map(|s| Formula::col(s.trim().to_string())),
        Just(Formula::Literal(Value::Null)),
        Just(Formula::lit(true)),
        any::<bool>().prop_map(|_| Formula::lit("text \"quoted\"")),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Formula::binary(
                sigma_workbook::expr::BinaryOp::Add,
                l,
                r
            )),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Formula::binary(
                sigma_workbook::expr::BinaryOp::Mul,
                l,
                r
            )),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Formula::binary(
                sigma_workbook::expr::BinaryOp::Lt,
                l,
                r
            )),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Formula::binary(
                sigma_workbook::expr::BinaryOp::Pow,
                l,
                r
            )),
            inner.clone().prop_map(|e| Formula::call("Abs", vec![e])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::call("Coalesce", vec![a, b])),
            inner.clone().prop_map(|e| Formula::call("Sum", vec![e])),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| { Formula::call("If", vec![a, b, c]) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn formula_print_parse_round_trip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed:?}: {e}"));
        prop_assert_eq!(reparsed, f, "round trip failed for {}", printed);
    }
}

// ---------------------------------------------------------------------
// SQL printer/parser round trip (via random formula lowering is covered in
// unit tests; here: parse(print(parse(sql))) == parse(sql) over generated
// SELECTs)
// ---------------------------------------------------------------------

fn arb_select_sql() -> impl Strategy<Value = String> {
    let col = prop_oneof![Just("a"), Just("b"), Just("c")];
    (col, 0i64..100, any::<bool>(), any::<bool>()).prop_map(|(c, n, grouped, ordered)| {
        let mut sql = if grouped {
            format!("SELECT {c}, COUNT(*) AS n, SUM(b) AS s FROM t WHERE a > {n} GROUP BY {c}")
        } else {
            format!("SELECT {c}, a + b * 2 AS e FROM t WHERE a > {n} AND b IS NOT NULL")
        };
        if ordered {
            sql.push_str(&format!(" ORDER BY {c} DESC NULLS LAST LIMIT 10"));
        }
        sql
    })
}

proptest! {
    #[test]
    fn sql_round_trip(sql in arb_select_sql()) {
        let q1 = parse_query(&sql).unwrap();
        let printed = print_query(&q1, &Dialect::generic());
        let q2 = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{printed}\n{e}"));
        prop_assert_eq!(q1, q2);
    }
}

// ---------------------------------------------------------------------
// engine: group-by against a BTreeMap oracle
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn group_by_matches_oracle(
        rows in proptest::collection::vec((0i64..8, proptest::option::of(-100i64..100)), 0..200)
    ) {
        let wh = Warehouse::default();
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                Column::from_ints(rows.iter().map(|(k, _)| *k).collect()),
                Column::from_opt_ints(rows.iter().map(|(_, v)| *v).collect()),
            ],
        ).unwrap();
        wh.load_table("t", batch).unwrap();
        let got = wh
            .execute_sql("SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS lo FROM t GROUP BY k ORDER BY k")
            .unwrap()
            .batch;

        // Oracle.
        let mut oracle: BTreeMap<i64, (i64, Option<i64>, Option<i64>)> = BTreeMap::new();
        for (k, v) in &rows {
            let e = oracle.entry(*k).or_insert((0, None, None));
            e.0 += 1;
            if let Some(v) = v {
                e.1 = Some(e.1.unwrap_or(0) + v);
                e.2 = Some(e.2.map_or(*v, |lo: i64| lo.min(*v)));
            }
        }
        prop_assert_eq!(got.num_rows(), oracle.len());
        for (i, (k, (n, s, lo))) in oracle.into_iter().enumerate() {
            prop_assert_eq!(got.value(i, 0), Value::Int(k));
            prop_assert_eq!(got.value(i, 1), Value::Int(n));
            prop_assert_eq!(got.value(i, 2), s.map(Value::Int).unwrap_or(Value::Null));
            prop_assert_eq!(got.value(i, 3), lo.map(Value::Int).unwrap_or(Value::Null));
        }
    }

    #[test]
    fn running_sum_matches_oracle(
        values in proptest::collection::vec(proptest::option::of(-50i64..50), 1..100)
    ) {
        let wh = Warehouse::default();
        let schema = Arc::new(Schema::new(vec![
            Field::new("pos", DataType::Int),
            Field::new("v", DataType::Int),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                Column::from_ints((0..values.len() as i64).collect()),
                Column::from_opt_ints(values.clone()),
            ],
        ).unwrap();
        wh.load_table("t", batch).unwrap();
        let got = wh
            .execute_sql("SELECT pos, SUM(v) OVER (ORDER BY pos) AS rs FROM t ORDER BY pos")
            .unwrap()
            .batch;
        let mut acc: Option<i64> = None;
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                acc = Some(acc.unwrap_or(0) + v);
            }
            let expected = acc.map(Value::Int).unwrap_or(Value::Null);
            prop_assert_eq!(got.value(i, 1), expected, "at row {}", i);
        }
    }

    #[test]
    fn filter_pushdown_preserves_results(
        rows in proptest::collection::vec((0i64..20, -50i64..50), 0..150),
        threshold in -50i64..50
    ) {
        // The same query through the optimizer (plan_sql is optimized) must
        // match a pre-filtered oracle.
        let wh = Warehouse::default();
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                Column::from_ints(rows.iter().map(|(k, _)| *k).collect()),
                Column::from_ints(rows.iter().map(|(_, v)| *v).collect()),
            ],
        ).unwrap();
        wh.load_table("t", batch).unwrap();
        let sql = format!(
            "SELECT k, n FROM (SELECT k, COUNT(*) AS n FROM t WHERE v > {threshold} GROUP BY k) s \
             WHERE k > 5 ORDER BY k"
        );
        let got = wh.execute_sql(&sql).unwrap().batch;
        let mut oracle: BTreeMap<i64, i64> = BTreeMap::new();
        for (k, v) in &rows {
            if *v > threshold && *k > 5 {
                *oracle.entry(*k).or_default() += 1;
            }
        }
        prop_assert_eq!(got.num_rows(), oracle.len());
        for (i, (k, n)) in oracle.into_iter().enumerate() {
            prop_assert_eq!(got.value(i, 0), Value::Int(k));
            prop_assert_eq!(got.value(i, 1), Value::Int(n));
        }
    }
}

// ---------------------------------------------------------------------
// local engine ≡ warehouse on the same data + query
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn local_engine_matches_warehouse(
        rows in proptest::collection::vec((0i64..5, 0i64..100), 1..80)
    ) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ]));
        let batch = Batch::new(
            schema,
            vec![
                Column::from_ints(rows.iter().map(|(k, _)| *k).collect()),
                Column::from_ints(rows.iter().map(|(_, v)| *v).collect()),
            ],
        ).unwrap();
        let wh = Warehouse::default();
        wh.load_table("dim", batch.clone()).unwrap();
        let local = sigma_workbook::browser::LocalEngine::new();
        local.install_table("dim", batch).unwrap();
        let sql = "SELECT k, SUM(v) AS s, AVG(v) AS a FROM dim GROUP BY k ORDER BY k";
        let remote = wh.execute_sql(sql).unwrap().batch;
        let local_result = local.evaluate(sql).unwrap();
        prop_assert_eq!(remote, local_result);
    }
}
