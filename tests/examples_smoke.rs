//! Smoke tests mirroring the core path of each `examples/*.rs` program, so
//! the examples' API surface cannot silently rot between releases (CI also
//! builds the example binaries themselves via `cargo build --examples`).
//! Row counts are kept small: these check wiring, not performance.

use std::time::Duration;

use sigma_workbook::browser::{BrowserSession, PrefetchPolicy};
use sigma_workbook::core::document::ElementKind;
use sigma_workbook::core::table::{
    ColumnDef, DataSource, FilterPredicate, FilterSpec, Level, TableSpec,
};
use sigma_workbook::core::{CompileOptions, Compiler, Workbook};
use sigma_workbook::demo;
use sigma_workbook::service::workload::Priority;
use sigma_workbook::service::QueryRequest;

const ROWS: usize = 4_000;

#[test]
fn quickstart_compile_and_execute() {
    let warehouse = demo::demo_warehouse(ROWS);
    let mut wb = Workbook::new(Some("Quickstart"));
    let mut table = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    table
        .add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    table
        .add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    table
        .add_column(ColumnDef::formula("Is Late", "[Dep Delay] > 15", 0))
        .unwrap();
    table
        .add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    table
        .add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    table
        .add_column(ColumnDef::formula(
            "Late Share",
            "Avg(If([Is Late], 1.0, 0.0))",
            1,
        ))
        .unwrap();
    table.filters.push(FilterSpec {
        column: "Dep Delay".into(),
        predicate: FilterPredicate::IsNotNull,
    });
    table.detail_level = 1;
    wb.add_element(0, "Flights", ElementKind::Table(table))
        .unwrap();

    let schemas = demo::WarehouseSchemas(warehouse.clone());
    let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
    let compiled = compiler.compile_element("Flights").expect("compiles");
    assert!(
        compiled.sql.contains("GROUP BY"),
        "aggregate level lowers to GROUP BY"
    );

    let result = warehouse.execute_sql(&compiled.sql).expect("executes");
    assert!(result.batch.num_rows() > 0, "carriers grouped");
    assert!(result.rows_scanned > 0);
}

#[test]
fn cohort_analysis_service_run_and_vega_spec() {
    let warehouse = demo::demo_warehouse(ROWS);
    let (service, token) = demo::demo_service(warehouse);
    let wb = demo::cohort_workbook();
    let json = wb.to_json().unwrap();

    let outcome = service
        .run_query(&QueryRequest {
            token: &token,
            connection: "primary",
            workbook_json: &json,
            element: "Flights",
            priority: Priority::Interactive,
        })
        .expect("scenario 1 runs");
    assert!(!outcome.sql.is_empty());
    assert!(outcome.batch.num_rows() > 0);

    let ElementKind::Viz(viz) = &wb.element("Cohort Chart").expect("chart exists").kind else {
        panic!("Cohort Chart should be a viz element");
    };
    let spec = viz.to_vega_spec("/results/cohorts.json");
    assert_eq!(spec["data"]["url"], "/results/cohorts.json");
    assert!(!spec["mark"].is_null());
    assert!(spec["encoding"]
        .as_object()
        .is_some_and(|map| !map.is_empty()));
}

#[test]
fn sessionization_parent_and_child_elements() {
    let warehouse = demo::demo_warehouse(ROWS);
    let (service, token) = demo::demo_service(warehouse);
    let wb = demo::sessionization_workbook();
    let json = wb.to_json().unwrap();
    let run = |element: &str| {
        service
            .run_query(&QueryRequest {
                token: &token,
                connection: "primary",
                workbook_json: &json,
                element,
                priority: Priority::Interactive,
            })
            .expect("scenario 2 runs")
    };

    let flights = run("Flights");
    assert!(flights.batch.num_rows() > 0);
    let life = run("Service Life");
    assert!(life.batch.num_rows() > 0);
    assert!(!life.sql.is_empty());
}

#[test]
fn augmentation_projection_lookup_and_edits() {
    let warehouse = demo::demo_warehouse(ROWS);
    let (service, token) = demo::demo_service(warehouse);
    let mut wb = demo::augmentation_workbook();

    let table = service
        .project_input_table(&token, "primary", &mut wb, "Airport Info")
        .expect("projection");
    assert!(!table.is_empty());

    let run = |json: &str| {
        service
            .run_query(&QueryRequest {
                token: &token,
                connection: "primary",
                workbook_json: json,
                element: "Flights",
                priority: Priority::Interactive,
            })
            .expect("scenario 3 runs")
    };
    let before = run(&wb.to_json().unwrap());
    let misses_before = before
        .batch
        .column_by_name("Origin City")
        .expect("lookup column")
        .null_count();
    assert!(
        misses_before > 0,
        "dirty pasted codes should miss the lookup"
    );

    // Fix dirty codes via direct editing, as the example does.
    {
        let input = wb.input_table_mut("Airport Info").unwrap();
        let code_col = input.column_index("code").unwrap();
        let fixes: Vec<(u64, String)> = input
            .rows
            .iter()
            .filter_map(|(id, values)| {
                let code = values[code_col].render();
                let upper = code.to_uppercase();
                (code != upper).then_some((*id, upper))
            })
            .collect();
        assert!(!fixes.is_empty(), "demo data plants dirty codes");
        for (id, fixed) in fixes {
            input.set_cell(id, "code", fixed.into()).unwrap();
        }
    }
    let edits = service
        .propagate_edits(&token, "primary", &mut wb, "Airport Info")
        .expect("propagation");
    assert!(edits > 0, "cell edits propagate to the warehouse as DML");
    let after = run(&wb.to_json().unwrap());
    let misses_after = after
        .batch
        .column_by_name("Origin City")
        .expect("lookup column")
        .null_count();
    assert!(
        misses_after < misses_before,
        "edits should repair lookup misses"
    );
}

#[test]
fn dashboard_controls_parameterize_compiled_sql() {
    let warehouse = demo::demo_warehouse(ROWS);
    let mut wb = Workbook::new(Some("Delay Dashboard"));
    wb.add_element(
        0,
        "Delay Threshold",
        ElementKind::Control(sigma_workbook::core::controls::ControlSpec::slider(
            0.0, 180.0, 5.0, 15.0,
        )),
    )
    .unwrap();
    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_column(ColumnDef::source("Dep Delay", "dep_delay"))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Over",
        "[Dep Delay] > [Delay Threshold]",
        0,
    ))
    .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula(
        "Share Over",
        "Avg(If([Over], 1.0, 0.0))",
        1,
    ))
    .unwrap();
    t.detail_level = 1;
    wb.add_element(0, "Delays", ElementKind::Table(t)).unwrap();

    let schemas = demo::WarehouseSchemas(warehouse.clone());
    let mut sql_by_threshold = Vec::new();
    for params in ["?Delay+Threshold=15", "?Delay+Threshold=60"] {
        wb.apply_url_params(params).unwrap();
        let compiler = Compiler::new(&wb, &schemas, CompileOptions::default());
        let compiled = compiler.compile_element("Delays").unwrap();
        warehouse.execute_sql(&compiled.sql).unwrap();
        sql_by_threshold.push(compiled.sql);
    }
    assert_ne!(
        sql_by_threshold[0], sql_by_threshold[1],
        "control value must be inlined as a literal"
    );
    assert!(sql_by_threshold[1].contains("60"));
}

#[test]
fn architecture_tour_two_tabs_share_directory() {
    let warehouse = demo::demo_warehouse(ROWS);
    let (service, token) = demo::demo_service(warehouse.clone());
    let tab1 = BrowserSession::new(service.clone(), token.clone(), "primary")
        .with_network_latency(Duration::ZERO);
    let tab2 = BrowserSession::new(service.clone(), token.clone(), "primary")
        .with_network_latency(Duration::ZERO);

    let wb = demo::cohort_workbook();
    let cold = tab1.query_element(&wb, "Flights").unwrap();
    let warm = tab1.query_element(&wb, "Flights").unwrap();
    let shared = tab2.query_element(&wb, "Flights").unwrap();
    assert_eq!(cold.batch, warm.batch);
    assert_eq!(cold.batch, shared.batch);

    let dir = service.directory_stats("primary").unwrap();
    assert!(dir.hits > 0, "tab 2 should hit the query directory");

    // Prefetching low-cardinality tables lets later queries run locally.
    let prefetched = tab1.prefetch(&warehouse, &PrefetchPolicy::default());
    assert!(
        !prefetched.is_empty(),
        "demo warehouse has prefetchable dimension tables"
    );
    let wl = service.workload_stats("primary").unwrap();
    assert!(wl.admitted > 0);
    assert!(warehouse.queries_executed() > 0);
}

#[test]
fn server_roundtrip_session_lifecycle_over_tcp() {
    use sigma_protocol::WirePriority;
    use sigma_server::{serve, QueryReply, SigmaClient};

    let (service, token) = demo::demo_service(demo::demo_warehouse(ROWS));
    let handle = serve(service, "127.0.0.1:0").expect("bind");

    let mut client = SigmaClient::connect(handle.addr()).expect("connect");
    let user = client.auth(&token).expect("auth");
    assert_eq!(user.name, "analyst");
    client.open_session("primary").expect("open session");

    let mut t = TableSpec::new(DataSource::WarehouseTable {
        table: "flights".into(),
    });
    t.add_column(ColumnDef::source("Carrier", "carrier"))
        .unwrap();
    t.add_level(1, Level::keyed("By Carrier", vec!["Carrier".into()]))
        .unwrap();
    t.add_column(ColumnDef::formula("Flights", "Count()", 1))
        .unwrap();
    t.detail_level = 1;
    let mut wb = Workbook::new(Some("net"));
    wb.add_element(0, "ByCarrier", ElementKind::Table(t))
        .unwrap();
    let json = wb.to_json().unwrap();

    let sql = client.explain(&json, "ByCarrier").expect("explain");
    assert!(sql.to_ascii_lowercase().contains("select"));

    let QueryReply::Ok(outcome) = client
        .query_element(&json, "ByCarrier", WirePriority::Interactive, None)
        .expect("query")
    else {
        panic!("unexpected shed on an idle server");
    };
    assert_eq!(outcome.batch.num_rows(), 8); // 8 carriers

    let rows = client
        .upload_csv("regions", "region,code\nWest,W\nEast,E\n")
        .expect("upload");
    assert_eq!(rows, 2);

    client.close().expect("close");
    handle.shutdown();
}
