//! End-to-end reproduction of the paper's three demonstration scenarios
//! (§5), exercising the full stack: workbook model → JSON → service →
//! compiler → SQL → warehouse → results, and asserting the *shapes* the
//! demo claims.

use sigma_workbook::browser::{BrowserSession, Source};
use sigma_workbook::demo;
use sigma_workbook::service::workload::Priority;
use sigma_workbook::service::QueryRequest;
use sigma_workbook::value::Value;

#[test]
fn scenario_1_cohort_analysis() {
    let wh = demo::demo_warehouse(8_000);
    let (service, token) = demo::demo_service(wh);
    let wb = demo::cohort_workbook();
    let json = wb.to_json().unwrap();
    let out = service
        .run_query(&QueryRequest {
            token: &token,
            connection: "primary",
            workbook_json: &json,
            element: "Flights",
            priority: Priority::Interactive,
        })
        .unwrap();
    let b = &out.batch;
    assert!(b.num_rows() > 20, "expected many (cohort, quarter) rows");
    let cohort = b.column_by_name("Cohort").unwrap();
    let quarter = b.column_by_name("Quarter").unwrap();
    let active = b.column_by_name("Active Planes").unwrap();
    let population = b.column_by_name("Population").unwrap();
    let pct = b.column_by_name("Pct Active").unwrap();

    let mut cohorts = std::collections::HashSet::new();
    for i in 0..b.num_rows() {
        cohorts.insert(cohort.value(i).render());
        // A quarter can never be before its cohort's first flight.
        assert!(quarter.value(i).total_cmp(&cohort.value(i)) != std::cmp::Ordering::Less);
        // Percentages are in (0, 1] and consistent.
        let a = active.value(i).as_f64().unwrap();
        let p = population.value(i).as_f64().unwrap();
        let share = pct.value(i).as_f64().unwrap();
        assert!(a <= p, "active {a} exceeds population {p}");
        assert!(share > 0.0 && share <= 1.0, "share {share}");
        assert!((share - a / p).abs() < 1e-9);
    }
    assert!(
        cohorts.len() >= 5,
        "expected several cohorts: {}",
        cohorts.len()
    );

    // Cohort *retention decays*: the average share across each cohort's
    // first 4 quarters exceeds the average across quarters 8+.
    let mut early = Vec::new();
    let mut late = Vec::new();
    let mut per_cohort: std::collections::HashMap<String, Vec<(i64, f64)>> = Default::default();
    for i in 0..b.num_rows() {
        let c = cohort.value(i).render();
        let Value::Date(cd) = cohort.value(i) else {
            panic!()
        };
        let Value::Date(qd) = quarter.value(i) else {
            panic!()
        };
        let age_quarters = ((qd - cd) / 90) as i64;
        per_cohort
            .entry(c)
            .or_default()
            .push((age_quarters, pct.value(i).as_f64().unwrap()));
    }
    for (_, points) in per_cohort {
        for (age, share) in points {
            if age < 4 {
                early.push(share);
            } else if age >= 8 {
                late.push(share);
            }
        }
    }
    if !early.is_empty() && !late.is_empty() {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&early) > avg(&late),
            "retention should decay: early {} vs late {}",
            avg(&early),
            avg(&late)
        );
    }
}

#[test]
fn scenario_2_sessionization() {
    let wh = demo::demo_warehouse(12_000);
    let (service, token) = demo::demo_service(wh);
    let wb = demo::sessionization_workbook();
    let json = wb.to_json().unwrap();

    // The base element: sessions are well-formed.
    let flights = service
        .run_query(&QueryRequest {
            token: &token,
            connection: "primary",
            workbook_json: &json,
            element: "Flights",
            priority: Priority::Interactive,
        })
        .unwrap()
        .batch;
    let session = flights.column_by_name("Session").unwrap();
    let date = flights.column_by_name("Flight Date").unwrap();
    let hours = flights.column_by_name("Hours Since Service").unwrap();
    assert_eq!(session.null_count(), 0, "every flight belongs to a session");
    for i in 0..flights.num_rows() {
        // The session id is the service date: never after the flight.
        assert!(session.value(i).total_cmp(&date.value(i)) != std::cmp::Ordering::Greater);
        let h = hours.value(i).as_f64().unwrap();
        assert!(h >= 0.0, "wear cannot be negative: {h}");
    }

    // The child element: cancellation rate rises with wear (the line chart
    // the paper shows). Compare the first bucket against bucket 3+.
    let life = service
        .run_query(&QueryRequest {
            token: &token,
            connection: "primary",
            workbook_json: &json,
            element: "Service Life",
            priority: Priority::Interactive,
        })
        .unwrap()
        .batch;
    assert!(life.num_rows() >= 4, "expected several wear buckets");
    let bucket = life.column_by_name("Wear Bucket").unwrap();
    let rate = life.column_by_name("Cancel Rate").unwrap();
    let n = life.column_by_name("Flights").unwrap();
    let mut first_rate = None;
    let mut worn = Vec::new();
    for i in 0..life.num_rows() {
        let bk = bucket.value(i).as_i64().unwrap_or(0);
        let r = rate.value(i).as_f64().unwrap();
        let count = n.value(i).as_i64().unwrap();
        if count < 50 {
            continue; // skip noisy tiny buckets
        }
        if bk == 0 {
            first_rate = Some(r);
        } else if bk >= 3 {
            worn.push(r);
        }
    }
    let first = first_rate.expect("bucket 0 present");
    let avg_worn = worn.iter().sum::<f64>() / worn.len().max(1) as f64;
    assert!(
        avg_worn > first,
        "cancellations should rise with wear: fresh {first} vs worn {avg_worn}"
    );
}

#[test]
fn scenario_3_augmentation() {
    let wh = demo::demo_warehouse(4_000);
    let (service, token) = demo::demo_service(wh.clone());
    let mut wb = demo::augmentation_workbook();

    // "(1) we inspect the FLIGHTS records … missing some desired
    // dimensional data": the fact table has no city column.
    assert!(wh
        .table_schema("flights")
        .unwrap()
        .index_of("city")
        .is_none());

    // Project the pasted (dirty) editable table into the warehouse.
    service
        .project_input_table(&token, "primary", &mut wb, "Airport Info")
        .unwrap();

    // Join via Lookup: some cities come back NULL because the pasted codes
    // are dirty (lower-cased).
    let json = wb.to_json().unwrap();
    let run = |json: &str| {
        service
            .run_query(&QueryRequest {
                token: &token,
                connection: "primary",
                workbook_json: json,
                element: "Flights",
                priority: Priority::Interactive,
            })
            .unwrap()
            .batch
    };
    let before = run(&json);
    let city = before.column_by_name("Origin City").unwrap();
    let dirty_misses = city.null_count();
    assert!(dirty_misses > 0, "dirty codes should miss the lookup");

    // "(4) … correct it with direct editing. The edits propagate to
    // downstream queries automatically."
    {
        let input = wb.input_table_mut("Airport Info").unwrap();
        let code_col = input.column_index("code").unwrap();
        let fixes: Vec<(u64, String)> = input
            .rows
            .iter()
            .filter_map(|(id, values)| {
                let code = values[code_col].render();
                let upper = code.to_uppercase();
                (code != upper).then_some((*id, upper))
            })
            .collect();
        assert!(!fixes.is_empty(), "the dirty CSV lower-cases some codes");
        for (id, fixed) in fixes {
            input.set_cell(id, "code", fixed.into()).unwrap();
        }
    }
    service
        .propagate_edits(&token, "primary", &mut wb, "Airport Info")
        .unwrap();
    let after = run(&wb.to_json().unwrap());
    let city_after = after.column_by_name("Origin City").unwrap();
    assert!(
        city_after.null_count() < dirty_misses,
        "fixing codes must repair lookups: {} -> {}",
        dirty_misses,
        city_after.null_count()
    );
}

#[test]
fn browser_cache_hierarchy_over_scenarios() {
    let wh = demo::demo_warehouse(4_000);
    let (service, token) = demo::demo_service(wh);
    let session = BrowserSession::new(service, token, "primary");
    let wb = demo::cohort_workbook();
    let cold = session.query_element(&wb, "Flights").unwrap();
    assert_eq!(cold.source, Source::Warehouse);
    let warm = session.query_element(&wb, "Flights").unwrap();
    assert_eq!(warm.source, Source::BrowserCache);
    assert_eq!(cold.batch, warm.batch);
}

#[test]
fn generated_sql_is_shown_and_deterministic() {
    // "In each scenario, we also show the SQL queries generated by our
    // compiler" — the outcome carries the SQL, stable across runs.
    let wh = demo::demo_warehouse(2_000);
    let (service, token) = demo::demo_service(wh);
    let wb = demo::cohort_workbook();
    let json = wb.to_json().unwrap();
    let req = QueryRequest {
        token: &token,
        connection: "primary",
        workbook_json: &json,
        element: "Flights",
        priority: Priority::Interactive,
    };
    let a = service.run_query(&req).unwrap();
    let b = service.run_query(&req).unwrap();
    assert_eq!(a.sql, b.sql);
    assert!(a.sql.contains("WITH"), "CTE pipeline expected:\n{}", a.sql);
    assert!(a.sql.to_uppercase().contains("GROUP BY"));
    // Scenario 1's Rollup appears as a grouped LEFT JOIN.
    assert!(a.sql.to_uppercase().contains("LEFT JOIN"), "{}", a.sql);
}
